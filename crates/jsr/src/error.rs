use std::fmt;

/// Error type for JSR computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input matrix set is invalid (empty, non-square, or mixed sizes).
    InvalidSet(String),
    /// A configuration parameter is out of range.
    InvalidOptions(String),
    /// An underlying linear-algebra kernel failed.
    Linalg(overrun_linalg::Error),
    /// The iteration budget (`max_products` / `max_depth`) was exhausted
    /// before the requested gap was reached. Contains the best bounds found.
    BudgetExhausted {
        /// Best certified lower bound found so far.
        lower: f64,
        /// Best certified upper bound found so far.
        upper: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSet(msg) => write!(f, "invalid matrix set: {msg}"),
            Error::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            Error::BudgetExhausted { lower, upper } => write!(
                f,
                "budget exhausted before reaching the requested gap; best bounds [{lower}, {upper}]"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<overrun_linalg::Error> for Error {
    fn from(e: overrun_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}
