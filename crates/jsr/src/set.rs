use overrun_linalg::{norm_2, Matrix};

use crate::{Error, Result};

/// A validated, non-empty set of equally-sized square matrices — the input
/// alphabet of the switching system `ξ(k+1) = A_{σ(k)} ξ(k)`.
///
/// # Example
///
/// ```
/// use overrun_jsr::MatrixSet;
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::zeros(2, 2)])?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.dim(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSet {
    matrices: Vec<Matrix>,
    dim: usize,
    /// Spectral (2-)norms of the matrices, cached at construction — every
    /// product-tree search seeds from them, and sets are built once but
    /// searched many times.
    norms: Vec<f64>,
}

impl MatrixSet {
    /// Validates and wraps a set of matrices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSet`] if the vector is empty, any matrix is
    /// non-square or non-finite, or the sizes disagree.
    pub fn new(matrices: Vec<Matrix>) -> Result<Self> {
        let first = matrices
            .first()
            .ok_or_else(|| Error::InvalidSet("empty set".into()))?;
        if !first.is_square() {
            return Err(Error::InvalidSet(format!(
                "matrix 0 is {}x{}, not square",
                first.rows(),
                first.cols()
            )));
        }
        let dim = first.rows();
        for (i, m) in matrices.iter().enumerate() {
            if m.shape() != (dim, dim) {
                return Err(Error::InvalidSet(format!(
                    "matrix {i} is {}x{}, expected {dim}x{dim}",
                    m.rows(),
                    m.cols()
                )));
            }
            if !m.is_finite() {
                return Err(Error::InvalidSet(format!("matrix {i} has non-finite entries")));
            }
        }
        let norms = matrices.iter().map(norm_2).collect();
        Ok(MatrixSet {
            matrices,
            dim,
            norms,
        })
    }

    /// Number of matrices in the set.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Always `false` — construction rejects empty sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Common dimension of the (square) matrices.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The matrices, in insertion order.
    pub fn matrices(&self) -> &[Matrix] {
        &self.matrices
    }

    /// Cached spectral (2-)norms of the matrices, in insertion order
    /// (`norms()[i] == norm_2(&matrices()[i])`).
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Iterator over the matrices.
    pub fn iter(&self) -> std::slice::Iter<'_, Matrix> {
        self.matrices.iter()
    }

    /// Applies a common similarity transform `Aᵢ → D⁻¹ Aᵢ D` (which leaves
    /// the JSR unchanged) given the diagonal of `D`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidOptions`] if `diag` has the wrong length or a
    /// zero / non-finite entry.
    pub fn similarity_scaled(&self, diag: &[f64]) -> Result<MatrixSet> {
        if diag.len() != self.dim {
            return Err(Error::InvalidOptions(format!(
                "scaling vector has length {}, expected {}",
                diag.len(),
                self.dim
            )));
        }
        if diag.iter().any(|d| *d == 0.0 || !d.is_finite()) {
            return Err(Error::InvalidOptions(
                "scaling vector entries must be finite and non-zero".into(),
            ));
        }
        let scaled = self
            .matrices
            .iter()
            .map(|m| {
                Matrix::from_fn(self.dim, self.dim, |i, j| m[(i, j)] * diag[j] / diag[i])
            })
            .collect();
        MatrixSet::new(scaled)
    }
}

impl<'a> IntoIterator for &'a MatrixSet {
    type Item = &'a Matrix;
    type IntoIter = std::slice::Iter<'a, Matrix>;

    fn into_iter(self) -> Self::IntoIter {
        self.matrices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_mixed() {
        assert!(MatrixSet::new(vec![]).is_err());
        assert!(MatrixSet::new(vec![Matrix::zeros(2, 3)]).is_err());
        assert!(MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(3)]).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = Matrix::identity(2);
        m[(0, 0)] = f64::NAN;
        assert!(MatrixSet::new(vec![m]).is_err());
    }

    #[test]
    fn accessors() {
        let set = MatrixSet::new(vec![Matrix::identity(3), Matrix::zeros(3, 3)]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.dim(), 3);
        assert_eq!(set.matrices().len(), 2);
        assert_eq!(set.iter().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
    }

    #[test]
    fn norms_cached_at_construction() {
        let a = Matrix::from_rows(&[&[1.0, 100.0], &[0.0001, 2.0]]).unwrap();
        let b = Matrix::diag(&[3.0, 0.5]);
        let set = MatrixSet::new(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(set.norms().len(), 2);
        assert_eq!(set.norms()[0], norm_2(&a));
        assert_eq!(set.norms()[1], norm_2(&b));
    }

    #[test]
    fn similarity_scaling_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 100.0], &[0.0001, 2.0]]).unwrap();
        let set = MatrixSet::new(vec![a.clone()]).unwrap();
        let scaled = set.similarity_scaled(&[10.0, 0.1]).unwrap();
        let back = scaled.similarity_scaled(&[0.1, 10.0]).unwrap();
        assert!(back.matrices()[0].approx_eq(&a, 1e-12, 1e-12));
        // spectral radius invariant
        let r0 = overrun_linalg::spectral_radius(&a).unwrap();
        let r1 = overrun_linalg::spectral_radius(&scaled.matrices()[0]).unwrap();
        assert!((r0 - r1).abs() < 1e-9 * r0.max(1.0));
    }

    #[test]
    fn similarity_scaling_validation() {
        let set = MatrixSet::new(vec![Matrix::identity(2)]).unwrap();
        assert!(set.similarity_scaled(&[1.0]).is_err());
        assert!(set.similarity_scaled(&[1.0, 0.0]).is_err());
        assert!(set.similarity_scaled(&[1.0, f64::NAN]).is_err());
    }
}

/// Scales a matrix to unit norm, returning the matrix and the log of the
/// factored-out scale (zero or non-finite norms pass through unscaled).
/// Shared by the product-tree searches so deep products never overflow.
pub(crate) fn normalize_log(m: Matrix, nrm: f64) -> (Matrix, f64) {
    if nrm > 0.0 && nrm.is_finite() {
        (m.scale(1.0 / nrm), nrm.ln())
    } else {
        (m, 0.0)
    }
}

/// Borrowing variant of [`normalize_log`] for call sites that only hold a
/// reference (scratch buffers, set members) — avoids a clone on the common
/// positive-norm path.
pub(crate) fn normalize_log_ref(m: &Matrix, nrm: f64) -> (Matrix, f64) {
    if nrm > 0.0 && nrm.is_finite() {
        (m.scale(1.0 / nrm), nrm.ln())
    } else {
        (m.clone(), 0.0)
    }
}

#[cfg(test)]
mod normalize_tests {
    use super::*;

    #[test]
    fn normalize_log_roundtrip() {
        let m = Matrix::diag(&[4.0, 2.0]);
        let (scaled, log) = normalize_log(m.clone(), 4.0);
        assert!((scaled[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((log - 4.0_f64.ln()).abs() < 1e-15);
        let (same, zero) = normalize_log(m.clone(), 0.0);
        assert_eq!(same, m);
        assert_eq!(zero, 0.0);
    }
}
