//! Minimal std-only JSON reader used to validate and round-trip the JSONL
//! trace export. The workspace builds offline with no serde available, so
//! the exporter hand-writes its lines and this module parses them back.
//!
//! The parser accepts the full JSON grammar (objects, arrays, strings with
//! the standard escapes, numbers, booleans, null) but keeps object members
//! in insertion order and represents every number as `f64`, which is exact
//! for all values the exporter emits (ids and counts stay below 2^53 in
//! any realistic run).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced by the exporter for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; members keep their source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as a finite-or-NaN `f64` (`null` maps to NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a single JSON document, requiring it to consume the whole input.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at offset {start}: {e}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Advance over one UTF-8 scalar; the input is a &str so the
                // byte stream is valid UTF-8 by construction.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or_else(|| "empty char".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number, mapping non-finite values to `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() -> Result<(), String> {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#)?;
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(3));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        Ok(())
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} junk").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn u64_extraction_guards_fractions() -> Result<(), String> {
        let v = parse(r#"{"i":42,"f":1.5,"n":-1}"#)?;
        assert_eq!(v.get("i").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
        assert_eq!(v.get("n").and_then(Value::as_u64), None);
        Ok(())
    }

    #[test]
    fn escape_round_trips() -> Result<(), String> {
        let mut doc = String::from("\"");
        escape_into(&mut doc, "a\"b\\c\nd\te\u{1}f");
        doc.push('"');
        let v = parse(&doc)?;
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
        Ok(())
    }
}
