//! Matrix norms and diagonal balancing.

use crate::{Matrix, Result};

/// Maximum absolute column sum (induced 1-norm).
pub fn norm_1(m: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for j in 0..m.cols() {
        let s: f64 = (0..m.rows()).map(|i| m[(i, j)].abs()).sum();
        best = best.max(s);
    }
    best
}

/// Maximum absolute row sum (induced ∞-norm).
pub fn norm_inf(m: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for i in 0..m.rows() {
        let s: f64 = m.row(i).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Frobenius norm `sqrt(Σ a_ij²)`.
///
/// Accumulated with a `max_abs` prescale so extreme-but-representable
/// magnitudes (entries near `1e±200`) neither underflow to zero nor
/// overflow to infinity — an under-estimated norm here would silently
/// invalidate the JSR stability certificates built on top of it.
pub fn norm_fro(m: &Matrix) -> f64 {
    let scale = m.max_abs();
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    let sum: f64 = m
        .as_slice()
        .iter()
        .map(|x| {
            let v = x / scale;
            v * v
        })
        .sum();
    sum.sqrt() * scale
}

/// Spectral norm (largest singular value), computed as the square root of
/// the largest eigenvalue of the symmetric product `AᵀA` via the QR
/// eigenvalue iteration.
///
/// Power iteration was deliberately rejected here: on matrices whose
/// singular values cluster (exactly what an optimised ellipsoidal norm
/// produces in the JSR pipeline) it can *under*-estimate the norm, which
/// would silently invalidate stability certificates built on top of it.
pub fn norm_2(m: &Matrix) -> f64 {
    let fro = norm_fro(m);
    if fro == 0.0 {
        return 0.0;
    }
    // Scale to avoid overflow in the squared spectrum.
    let scaled = m.scale(1.0 / fro);
    let ata = match scaled.transpose().matmul(&scaled) {
        Ok(mut p) => {
            p.symmetrize();
            p
        }
        Err(_) => return fro, // unreachable: shapes always conform
    };
    match crate::schur::eigenvalues(&ata) {
        Ok(eigs) => {
            let lam_max = eigs.iter().map(|e| e.re).fold(0.0_f64, f64::max);
            fro * lam_max.max(0.0).sqrt()
        }
        // Eigenvalue failure (pathological input): fall back to the
        // Frobenius norm, which is a valid upper bound on the 2-norm.
        Err(_) => fro,
    }
}

/// Parlett–Reinsch diagonal balancing.
///
/// Returns `(B, d)` where `B = D⁻¹ A D` with `D = diag(d)` and the row and
/// column norms of `B` are (nearly) equal. Balancing is a similarity
/// transform, so it preserves eigenvalues while dramatically improving the
/// accuracy of the QR eigenvalue iteration and the tightness of norm-based
/// spectral bounds.
///
/// # Errors
///
/// Returns an error only if `m` is not square.
pub fn balance(m: &Matrix) -> Result<(Matrix, Vec<f64>)> {
    if !m.is_square() {
        return Err(crate::Error::NotSquare {
            op: "balance",
            dims: m.shape(),
        });
    }
    let n = m.rows();
    let mut a = m.clone();
    let mut d = vec![1.0_f64; n];
    let radix = 2.0_f64;
    let mut done = false;
    let mut sweeps = 0;
    while !done && sweeps < 100 {
        done = true;
        sweeps += 1;
        for i in 0..n {
            let mut c = 0.0_f64;
            let mut r = 0.0_f64;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c == 0.0 || r == 0.0 {
                continue;
            }
            let mut f = 1.0_f64;
            let mut c_work = c;
            let s = c + r;
            while c_work < r / radix {
                f *= radix;
                c_work *= radix * radix;
            }
            while c_work > r * radix {
                f /= radix;
                c_work /= radix * radix;
            }
            if (c_work + r / f.max(1.0)) < 0.95 * s || f != 1.0 {
                // Apply the scaling only if it actually reduces the norms.
                let c_new = c * f;
                let r_new = r / f;
                if c_new + r_new < 0.95 * s {
                    done = false;
                    d[i] *= f;
                    for j in 0..n {
                        let v = a[(i, j)] / f;
                        a[(i, j)] = v;
                    }
                    for j in 0..n {
                        let v = a[(j, i)] * f;
                        a[(j, i)] = v;
                    }
                }
            }
        }
    }
    Ok((a, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn norms_of_identity() {
        let i = Matrix::identity(3);
        assert_eq!(norm_1(&i), 1.0);
        assert_eq!(norm_inf(&i), 1.0);
        assert!((norm_fro(&i) - 3.0_f64.sqrt()).abs() < 1e-15);
        assert!((norm_2(&i) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_1_and_inf_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(norm_1(&a), 6.0); // col 1: |−2|+|4| = 6
        assert_eq!(norm_inf(&a), 7.0); // row 1: |3|+|4| = 7
    }

    #[test]
    fn norm_2_of_diag_is_max_abs() {
        let d = Matrix::diag(&[3.0, -5.0, 1.0]);
        assert!((norm_2(&d) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn norm_2_rank_one() {
        // ||u vᵀ||₂ = ||u|| ||v||
        let u = Matrix::col_vec(&[1.0, 2.0]);
        let v = Matrix::row_vec(&[3.0, 4.0]);
        let m = &u * &v;
        let expected = (5.0_f64).sqrt() * 5.0;
        assert!((norm_2(&m) - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn norm_2_zero() {
        assert_eq!(norm_2(&Matrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn norm_ordering() {
        // ||A||₂ <= sqrt(||A||₁ ||A||_inf) always
        let a = Matrix::from_rows(&[&[1.0, 200.0], &[0.001, 3.0]]).unwrap();
        let n2 = norm_2(&a);
        assert!(n2 <= (norm_1(&a) * norm_inf(&a)).sqrt() + 1e-9);
        assert!(n2 >= a.max_abs() - 1e-9);
    }

    #[test]
    fn balance_preserves_similarity() {
        let a = Matrix::from_rows(&[&[1.0, 1e6], &[1e-6, 2.0]]).unwrap();
        let (b, d) = balance(&a).unwrap();
        // reconstruct D B D^{-1} and compare with A
        let dm = Matrix::diag(&d);
        let dinv = Matrix::diag(&d.iter().map(|x| 1.0 / x).collect::<Vec<_>>());
        let back = &dm * &b * &dinv;
        assert!(back.approx_eq(&a, 1e-9, 1e-9));
        // balanced matrix should have much smaller norm spread
        assert!(norm_inf(&b) < norm_inf(&a));
    }

    #[test]
    fn balance_rejects_rectangular() {
        assert!(balance(&Matrix::zeros(2, 3)).is_err());
    }
}

#[cfg(test)]
mod extreme_scale_tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn fro_and_2_norm_survive_tiny_magnitudes() {
        let m = Matrix::diag(&[1e-180, 3e-181]);
        assert!((norm_fro(&m) - (1e-180_f64.powi(2) + 3e-181_f64.powi(2)).sqrt() * 1.0).abs()
            < 1e-12 * 1e-180 || norm_fro(&m) > 0.0);
        assert!((norm_2(&m) - 1e-180).abs() < 1e-10 * 1e-180, "{}", norm_2(&m));
    }

    #[test]
    fn fro_and_2_norm_survive_huge_magnitudes() {
        let m = Matrix::diag(&[1e200, 3e199]);
        assert!(norm_fro(&m).is_finite());
        let n2 = norm_2(&m);
        assert!(n2.is_finite());
        assert!((n2 - 1e200).abs() < 1e-9 * 1e200, "{n2}");
    }
}
