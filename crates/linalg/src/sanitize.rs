//! Runtime poison detection for the matrix kernels (the `sanitize`
//! feature).
//!
//! A NaN or Inf that slips into the JSR pipeline does not crash anything —
//! it flows through norms and eigenvalue solves and quietly corrupts a
//! certificate. With `--features sanitize`, every core kernel
//! ([`Matrix::matmul_add_into`](crate::Matrix::matmul_add_into),
//! [`Matrix::mul_vec_acc_into`](crate::Matrix::mul_vec_acc_into), the
//! entry-wise ops, [`Matrix::scale_in_place`](crate::Matrix::scale_in_place))
//! checks its inputs and its output and panics with a `[sanitize]` message
//! naming the op:
//!
//! * an *output* failure with clean inputs means **this op produced the
//!   poison** (overflow, 0·∞, …) — the exact site to debug;
//! * an *input* failure means the poison was produced upstream by an
//!   unchecked path (or injected from outside) and has just reached the
//!   checked kernels.
//!
//! Dimension mismatches are already typed errors on every kernel
//! ([`Error::DimensionMismatch`](crate::Error::DimensionMismatch)), so
//! this module only has to handle value poison.
//!
//! The feature is strictly a debugging tool: when it is off (the default)
//! this module is not compiled and the kernels carry no checks at all —
//! zero code, zero branches.

/// Index and value of the first non-finite entry, if any.
fn first_nonfinite(data: &[f64]) -> Option<(usize, f64)> {
    data.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Panics if `data` contains a non-finite entry: poison *reached* `op`
/// from upstream or from external input.
pub fn check_input(op: &str, role: &str, data: &[f64]) {
    if let Some((i, v)) = first_nonfinite(data) {
        panic!(
            "[sanitize] poison reached `{op}`: non-finite value {v} in {role}[{i}] \
             (produced upstream of the checked kernels, or injected from outside)"
        );
    }
}

/// Panics if `s` is non-finite: a poisoned scalar operand of `op`.
pub fn check_scalar(op: &str, role: &str, s: f64) {
    if !s.is_finite() {
        panic!("[sanitize] poison reached `{op}`: non-finite {role} {s}");
    }
}

/// Panics if `data` contains a non-finite entry *after* `op` ran on clean
/// inputs: this op produced the poison (overflow, invalid operation).
pub fn check_output(op: &str, data: &[f64]) {
    if let Some((i, v)) = first_nonfinite(data) {
        panic!(
            "[sanitize] `{op}` produced non-finite value {v} at output[{i}] \
             — overflow or invalid operation at this op"
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    fn message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn nan_input_reported_as_reached() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = f64::NAN;
        let b = Matrix::identity(2);
        let err = std::panic::catch_unwind(|| a.matmul(&b))
            .expect_err("NaN input must trip the input check");
        let msg = message(err);
        assert!(msg.contains("[sanitize]"), "{msg}");
        assert!(msg.contains("poison reached"), "{msg}");
        assert!(msg.contains("matmul_add_into"), "{msg}");
    }

    #[test]
    fn overflow_reported_as_produced() {
        let a = Matrix::from_rows(&[&[1e200]]).unwrap();
        let err = std::panic::catch_unwind(|| a.matmul(&a))
            .expect_err("1e400 overflows: output check must fire");
        let msg = message(err);
        assert!(msg.contains("produced non-finite"), "{msg}");
        assert!(msg.contains("matmul_add_into"), "{msg}");
    }

    #[test]
    fn clean_ops_stay_silent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = a.matmul(&a).unwrap();
        assert_eq!(b[(0, 0)], 7.0);
        let mut c = a.clone();
        c.scale_in_place(2.0);
        assert_eq!(c[(1, 1)], 8.0);
        assert!(a.add_mat(&a).is_ok());
    }
}
