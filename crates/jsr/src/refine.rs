//! Power-lifted bound refinement.
//!
//! For any `ℓ ≥ 1`, the set of all products of length exactly `ℓ` satisfies
//! `ρ({A_w : |w| = ℓ}) = ρ(A)^ℓ`. Running the (ellipsoid-preconditioned)
//! Gripenberg search on the lifted set and taking `ℓ`-th roots therefore
//! yields valid bounds that tighten as `ℓ` grows — the ellipsoidal norm of
//! the lifted set approximates the extremal norm of the original set far
//! better than any single-step ellipsoid can.

use overrun_linalg::Matrix;

use crate::screen::ScreenStats;
use crate::{
    gripenberg_with_stats, Error, GripenbergOptions, JsrBounds, MatrixSet, Result,
};

/// Options for [`refined_bounds`].
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Base Gripenberg options applied at every lift level.
    pub base: GripenbergOptions,
    /// Largest product length lifted to. Default: 4.
    pub max_power: usize,
    /// Hard cap on the lifted alphabet size (`q^ℓ`). Default: 1024.
    pub max_alphabet: usize,
    /// Stop as soon as the bounds separate from this threshold (set to 1.0
    /// for stability certification; `None` runs all levels). Default:
    /// `Some(1.0)`.
    pub decision_threshold: Option<f64>,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            base: GripenbergOptions {
                // The lifted alphabets are large; keep the per-level tree
                // shallow and lean on the ellipsoid bound.
                max_depth: 6,
                max_products: 60_000,
                ..GripenbergOptions::default()
            },
            max_power: 4,
            max_alphabet: 1024,
            decision_threshold: Some(1.0),
        }
    }
}

/// Computes JSR bounds with progressive power lifting: level `ℓ` runs the
/// Gripenberg search (with ellipsoidal preconditioning) on all `q^ℓ`
/// products of length `ℓ` and contributes `[LB^{1/ℓ}, UB^{1/ℓ}]`; the
/// intersection over levels is returned.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] when `max_power == 0`.
/// * Propagates Gripenberg / numerical failures.
///
/// # Example
///
/// ```
/// use overrun_jsr::{refined_bounds, MatrixSet, RefineOptions};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]])?;
/// let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]])?;
/// let set = MatrixSet::new(vec![a1, a2])?;
/// let b = refined_bounds(&set, &RefineOptions::default())?;
/// assert!(b.certifies_stable());
/// # Ok(())
/// # }
/// ```
pub fn refined_bounds(set: &MatrixSet, opts: &RefineOptions) -> Result<JsrBounds> {
    Ok(refined_bounds_with_stats(set, opts)?.0)
}

/// Like [`refined_bounds`], additionally returning the screening statistics
/// accumulated over every lift level. `lb_depth` reports the *unlifted*
/// product length behind the final lower bound (`level · lb_depth` of the
/// level that last improved it).
///
/// # Errors
///
/// Same as [`refined_bounds`].
pub fn refined_bounds_with_stats(
    set: &MatrixSet,
    opts: &RefineOptions,
) -> Result<(JsrBounds, ScreenStats)> {
    if opts.max_power == 0 {
        return Err(Error::InvalidOptions("max_power must be >= 1".into()));
    }
    let mut best = JsrBounds {
        lower: 0.0,
        upper: f64::INFINITY,
    };
    let mut stats = ScreenStats::default();
    // Length-ℓ products, built incrementally.
    let mut current: Vec<Matrix> = set.matrices().to_vec();
    for level in 1..=opts.max_power {
        if current.len() > opts.max_alphabet {
            break;
        }
        let _sp_level =
            overrun_trace::span!("jsr.refine_level", level = level, alphabet = current.len());
        let lifted = MatrixSet::new(current.clone())?;
        let (b, s) = gripenberg_with_stats(&lifted, &opts.base)?;
        stats.absorb(&s);
        let root = 1.0 / level as f64;
        let cand = b.lower.max(0.0).powf(root);
        if cand > best.lower {
            best.lower = cand;
            stats.lb_depth = level * s.lb_depth;
        }
        best.upper = best.upper.min(b.upper.max(0.0).powf(root));
        if let Some(threshold) = opts.decision_threshold {
            if best.upper < threshold || best.lower >= threshold {
                break;
            }
        }
        if level < opts.max_power {
            if current.len().saturating_mul(set.len()) > opts.max_alphabet {
                break;
            }
            let mut next = Vec::with_capacity(current.len() * set.len());
            for p in &current {
                for a in set {
                    next.push(a.matmul(p)?);
                }
            }
            current = next;
        }
    }
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gripenberg;

    // Tests return `Result` and use `?` instead of `unwrap()`: the
    // panic-freedom ratchet (overrun-lint) counts every panic site in the
    // crate, test modules included, and this module is burned down to zero.
    type TestResult = Result<()>;

    #[test]
    fn refinement_never_looser_than_level_one() -> TestResult {
        let a1 = Matrix::from_rows(&[&[0.7, 0.5], &[-0.3, 0.8]])?;
        let a2 = Matrix::from_rows(&[&[0.6, -0.4], &[0.5, 0.7]])?;
        let set = MatrixSet::new(vec![a1, a2])?;
        let opts = RefineOptions {
            decision_threshold: None,
            ..RefineOptions::default()
        };
        let level1 = gripenberg(&set, &opts.base)?;
        let refined = refined_bounds(&set, &opts)?;
        assert!(refined.upper <= level1.upper + 1e-9);
        assert!(refined.lower <= refined.upper + 1e-9);
        // Both must contain the true JSR: intervals overlap.
        assert!(refined.lower <= level1.upper + 1e-9);
        assert!(level1.lower <= refined.upper + 1e-9);
        Ok(())
    }

    #[test]
    fn certifies_marginally_contractive_pair() -> TestResult {
        // Two rotation-like contractions whose one-step common ellipsoid is
        // marginal; power lifting closes the gap.
        let mk = |th: f64, s: f64| {
            Matrix::from_rows(&[
                &[s * th.cos(), -s * th.sin() * 3.0],
                &[s * th.sin() / 3.0, s * th.cos()],
            ])
        };
        let set = MatrixSet::new(vec![mk(0.6, 0.97)?, mk(1.1, 0.98)?])?;
        let b = refined_bounds(&set, &RefineOptions::default())?;
        assert!(b.certifies_stable(), "bounds {b}");
        Ok(())
    }

    #[test]
    fn detects_unstable_pair() -> TestResult {
        let set = MatrixSet::new(vec![
            Matrix::diag(&[1.05, 0.2]),
            Matrix::diag(&[0.3, 0.9]),
        ])?;
        let b = refined_bounds(&set, &RefineOptions::default())?;
        assert!(b.certifies_unstable(), "bounds {b}");
        Ok(())
    }

    #[test]
    fn zero_power_rejected() -> TestResult {
        let set = MatrixSet::new(vec![Matrix::identity(2)])?;
        assert!(refined_bounds(
            &set,
            &RefineOptions {
                max_power: 0,
                ..RefineOptions::default()
            }
        )
        .is_err());
        Ok(())
    }

    #[test]
    fn alphabet_cap_respected() -> TestResult {
        // 3 matrices, cap 10: only levels 1 (3) and 2 (9) run; must still
        // return valid bounds.
        let set = MatrixSet::new(vec![
            Matrix::diag(&[0.5, 0.1]),
            Matrix::diag(&[0.2, 0.4]),
            Matrix::diag(&[0.3, 0.3]),
        ])?;
        let b = refined_bounds(
            &set,
            &RefineOptions {
                max_alphabet: 10,
                decision_threshold: None,
                ..RefineOptions::default()
            },
        )?;
        assert!(b.lower <= 0.5 + 1e-9);
        assert!(b.upper >= 0.5 - 1e-9);
        Ok(())
    }
}
