//! Error types of the sweep engine.
//!
//! Two layers, deliberately separate: [`SweepError`] is *infrastructure*
//! failure (I/O, corrupt state files, an unbuildable grid) and aborts the
//! sweep; [`ScenarioError`] is a *per-scenario* fault (a certification
//! that diverged, errored, or tripped the `sanitize` poison) and is
//! recorded in the report while the rest of the sweep proceeds.

use std::fmt;
use std::path::PathBuf;

use crate::hash::ContentHash;

/// Infrastructure failure that aborts a sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// A filesystem operation on cache or checkpoint state failed.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// Short verb describing the operation ("create", "read", ...).
        op: &'static str,
        /// Underlying error message.
        msg: String,
    },
    /// A cache record or checkpoint file does not parse.
    Parse {
        /// File that failed to parse.
        path: PathBuf,
        /// 1-based line number of the offending line (0 = whole file).
        line: usize,
        /// What was expected.
        msg: String,
    },
    /// The scenario grid itself is invalid (e.g. a design that cannot be
    /// materialized deterministically into keys).
    Grid(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, op, msg } => {
                write!(f, "cache i/o: {op} {}: {msg}", path.display())
            }
            SweepError::Parse { path, line, msg } => {
                write!(f, "corrupt record {}:{line}: {msg}", path.display())
            }
            SweepError::Grid(msg) => write!(f, "invalid sweep grid: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepError {
    pub(crate) fn io(path: &std::path::Path, op: &'static str, e: std::io::Error) -> Self {
        SweepError::Io {
            path: path.to_path_buf(),
            op,
            msg: e.to_string(),
        }
    }
}

/// How a single scenario failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioFault {
    /// The certification returned an error (design, lifting, or JSR
    /// machinery failure).
    Failed(String),
    /// The certification panicked — in practice the `sanitize` feature
    /// poisoning a NaN/Inf at the producing kernel, or an internal
    /// invariant breach.
    Panicked(String),
}

impl fmt::Display for ScenarioFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioFault::Failed(msg) => write!(f, "failed: {msg}"),
            ScenarioFault::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Structured record of a scenario that could not be certified, kept in
/// the [`crate::SweepReport`] instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Index of the scenario in the input grid.
    pub index: usize,
    /// Content key of the scenario (its would-be cache address).
    pub key: ContentHash,
    /// Human label of the scenario.
    pub label: String,
    /// Certification attempts made (1, or 2 when the tightened-budget
    /// retry also failed).
    pub attempts: u32,
    /// The fault of the **last** attempt.
    pub fault: ScenarioFault,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario #{} ({}) after {} attempt(s): {}",
            self.index, self.label, self.attempts, self.fault
        )
    }
}
