//! Gripenberg's branch-and-bound algorithm for the joint spectral radius.
//!
//! Reference: G. Gripenberg, *"Computing the joint spectral radius"*,
//! Linear Algebra Appl. 234 (1996).

use overrun_linalg::{norm_2, spectral_radius, spectral_radius_upper, Matrix};
use overrun_par::{max_threads, try_parallel_map, SharedMaxF64};

use crate::screen::{scale_pow, scaled_cheap_bounds, ScreenCounters, ScreenStats};
use crate::set::normalize_log_ref;
use crate::{precondition, Error, JsrBounds, MatrixSet, Result};

/// Options for [`gripenberg`].
#[derive(Debug, Clone)]
pub struct GripenbergOptions {
    /// Target gap `δ`: on clean termination `upper − lower ≤ δ`.
    /// Default: `1e-4`.
    pub delta: f64,
    /// Maximum explored product length. Default: 30.
    pub max_depth: usize,
    /// Hard cap on the number of matrix products formed. Default: 500_000.
    pub max_products: usize,
    /// Apply joint diagonal preconditioning first. Default: `true`.
    pub precondition: bool,
    /// Optimise an ellipsoidal norm and run the search in its coordinates
    /// (dramatically tighter upper bounds for non-normal sets; costs a few
    /// thousand small-matrix norm evaluations up front). Default: `true`.
    pub ellipsoid: bool,
    /// Screen product-tree nodes with O(n²) certified norm brackets and
    /// fall back to the exact Schur-based evaluations only when the bracket
    /// straddles a decision. Never changes a single bit of the returned
    /// bounds — see [`crate::ScreenStats`] for what it saves.
    /// Default: `true`.
    pub screen: bool,
}

impl Default for GripenbergOptions {
    fn default() -> Self {
        GripenbergOptions {
            delta: 1e-4,
            max_depth: 30,
            max_products: 500_000,
            precondition: true,
            ellipsoid: true,
            screen: true,
        }
    }
}

/// A node of the pruned product tree. Products are stored normalised
/// (`‖·‖₂ ≈ 1`) with the accumulated scale carried in log space, so deep
/// products of large- or small-norm matrices never overflow.
struct Node {
    /// Normalised product `A_{i_k} ⋯ A_{i_1} / exp(log_scale)`.
    product: Matrix,
    /// Log of the factored-out scale.
    log_scale: f64,
    /// Running minimum of `‖prefix‖^{1/len}` along the word — Gripenberg's
    /// per-branch upper bound on what the branch can still contribute.
    sigma: f64,
}

/// Computes certified JSR bounds with Gripenberg's branch-and-bound.
///
/// The algorithm maintains
///
/// * `lb = max` over all explored products `P` of `ρ(P)^{1/|P|}` (a valid
///   lower bound by Gel'fand), and
/// * a frontier of words whose branch bound
///   `σ(w) = min_prefix ‖P_prefix‖^{1/len}` exceeds `lb + δ` — branches
///   below that threshold can never push the JSR above `lb + δ` and are
///   pruned.
///
/// On termination with an empty frontier the JSR lies in `[lb, lb + δ]`.
/// If the depth or product budget runs out first, the returned upper bound
/// is `max(lb + δ, max_frontier σ)` — still certified, just looser.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] for non-positive `delta` or zero depth.
/// * [`Error::Linalg`] on numerical failure.
///
/// # Example
///
/// ```
/// use overrun_jsr::{gripenberg, GripenbergOptions, MatrixSet};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]])?;
/// let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]])?;
/// let set = MatrixSet::new(vec![a1, a2])?;
/// let b = gripenberg(&set, &GripenbergOptions::default())?;
/// let phi = (1.0 + 5.0_f64.sqrt()) / 2.0; // known JSR of this pair
/// assert!(b.lower <= phi + 1e-9 && phi <= b.upper + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn gripenberg(set: &MatrixSet, opts: &GripenbergOptions) -> Result<JsrBounds> {
    Ok(gripenberg_with_stats(set, opts)?.0)
}

/// Like [`gripenberg`], additionally returning the screening statistics of
/// the search: exact Schur evaluations performed vs. avoided, cache hits
/// and the product length at which the final lower bound was attained.
///
/// The bounds are identical (bitwise) to [`gripenberg`]'s for the same
/// options, at any thread count, with screening on or off.
///
/// # Errors
///
/// Same as [`gripenberg`].
pub fn gripenberg_with_stats(
    set: &MatrixSet,
    opts: &GripenbergOptions,
) -> Result<(JsrBounds, ScreenStats)> {
    if !(opts.delta > 0.0 && opts.delta.is_finite()) {
        return Err(Error::InvalidOptions(format!(
            "delta must be positive and finite, got {}",
            opts.delta
        )));
    }
    if opts.max_depth == 0 {
        return Err(Error::InvalidOptions("max_depth must be >= 1".into()));
    }
    let _sp_search = overrun_trace::span!(
        "jsr.gripenberg",
        matrices = set.len(),
        dim = set.dim(),
        max_depth = opts.max_depth
    );
    let pre_set;
    let mut set = if opts.precondition {
        let _sp = overrun_trace::span!("jsr.precondition");
        pre_set = precondition(set)?.0;
        &pre_set
    } else {
        set
    };
    // One-step ellipsoid upper bound (valid on its own) + coordinate change.
    let ell_set;
    let mut ellipsoid_bound = f64::INFINITY;
    if opts.ellipsoid {
        let _sp = overrun_trace::span!("jsr.ellipsoid");
        let ell = crate::ellipsoid::optimize_ellipsoid(set, &Default::default())?;
        ellipsoid_bound = ell.norm_bound;
        ell_set = ell.transform(set)?;
        set = &ell_set;
        // The one-step ellipsoid bound is the first certified upper bound
        // of the run; the search below can only tighten it.
        overrun_trace::progress!("jsr.ub", ellipsoid_bound);
    }

    let mut lb = 0.0_f64;
    let mut products = 0usize;
    let counters = ScreenCounters::default();

    // Depth-1 frontier, seeded from the cached base-matrix norms (no
    // recomputation — the cache is rebuilt by the preconditioning /
    // ellipsoid transforms above, so it always matches the working set).
    let mut frontier: Vec<Node> = Vec::with_capacity(set.len());
    for (a, &nrm) in set.iter().zip(set.norms()) {
        counters.node();
        counters.cached_norm();
        // The guarded cheap bound dominates the *computed* ρ(A): when it
        // already sits at or below lb, the eigenvalue solve could only
        // produce a value the max-fold ignores — skipping it is a bitwise
        // no-op. (The cached exact norm carries no such guard, so it takes
        // no part in this decision.)
        if opts.screen && spectral_radius_upper(a) <= lb {
            counters.skip_eig();
        } else {
            counters.exact_eig();
            let rho = spectral_radius(a)?;
            lb = lb.max(rho);
        }
        let (product, log_scale) = normalize_log_ref(a, nrm);
        frontier.push(Node {
            product,
            log_scale,
            sigma: nrm,
        });
        products += 1;
    }
    let mut lb_depth = if lb > 0.0 { 1 } else { 0 };
    if lb > 0.0 {
        overrun_trace::progress!("jsr.lb", lb);
    }
    // Prune depth-1 nodes that can already not beat lb + delta.
    frontier.retain(|n| n.sigma > lb + opts.delta);

    let mut depth = 1usize;
    let mut truncated = false;
    // Scratch product buffer for the serial path — reused across the whole
    // search so the per-product allocation only happens for surviving
    // children.
    let mut scratch = Matrix::zeros(set.dim(), set.dim());

    while !frontier.is_empty() {
        if depth >= opts.max_depth || products >= opts.max_products {
            truncated = true;
            break;
        }
        depth += 1;
        let _sp_depth = overrun_trace::span!("jsr.depth", depth = depth, frontier = frontier.len());
        let inv_depth = 1.0 / depth as f64;
        let lb_before = lb;
        // Children born at the depth cap are never expanded: past this
        // point they only feed the `search_upper` max-fold (the retain
        // below drops exactly the σ ≤ lb + δ values that fold is seeded
        // with, so membership is irrelevant to the result). That fold is
        // order-independent, so a terminal child whose cheap σ bound
        // cannot exceed the running maximum of *exact* σ values is a
        // provable no-op. The shared cell tracks that running maximum;
        // lagging views only make screening more conservative.
        let terminal = depth == opts.max_depth;
        let sigma_cell = SharedMaxF64::new(lb + opts.delta);

        // A depth is parallelised only when it provably completes within
        // the product budget — then every node contributes exactly
        // `set.len()` products, no mid-depth truncation can occur, and the
        // result is identical to the serial expansion (see below).
        let full_cost = frontier.len().saturating_mul(set.len());
        let fits_budget = products.saturating_add(full_cost) <= opts.max_products;
        let next = if fits_budget && frontier.len() > 1 && max_threads() > 1 {
            // Shared lower bound: workers read a possibly-lagging value,
            // which is always a valid lower bound, so (a) skipping the
            // eigenvalue solve when ‖P‖^{1/d} ≤ lb is sound (ρ ≤ ‖·‖ means
            // the skipped product cannot raise lb), and (b) pruning with a
            // lagging lb only keeps extra candidates — the settled-lb
            // retain below makes the final frontier exactly the serial one.
            let lb_cell = SharedMaxF64::new(lb);
            let per_node: Vec<Vec<Node>> = try_parallel_map(&frontier, |_, node| {
                let mut local = Matrix::zeros(set.dim(), set.dim());
                expand_node(
                    set,
                    node,
                    inv_depth,
                    opts.delta,
                    opts.screen,
                    terminal,
                    &lb_cell,
                    &sigma_cell,
                    &counters,
                    &mut local,
                )
            })?;
            products += full_cost;
            lb = lb_cell.get();
            // Children concatenated in parent order — same order the
            // serial loop would have pushed them.
            per_node.into_iter().flatten().collect()
        } else {
            let lb_cell = SharedMaxF64::new(lb);
            let mut next = Vec::with_capacity(full_cost);
            'expand: for (idx, node) in frontier.iter().enumerate() {
                if products.saturating_add(set.len()) > opts.max_products {
                    truncated = true;
                    // Soundness on truncation: the nodes not (fully)
                    // expanded must keep contributing their branch bounds —
                    // a parent's σ dominates all its children's, so carrying
                    // the remaining parents forward is conservative.
                    for rest in &frontier[idx..] {
                        next.push(Node {
                            product: rest.product.clone(),
                            log_scale: rest.log_scale,
                            sigma: rest.sigma,
                        });
                    }
                    break 'expand;
                }
                let children = expand_node(
                    set,
                    node,
                    inv_depth,
                    opts.delta,
                    opts.screen,
                    terminal,
                    &lb_cell,
                    &sigma_cell,
                    &counters,
                    &mut scratch,
                )?;
                products += set.len();
                next.extend(children);
            }
            lb = lb_cell.get();
            next
        };

        // The lower bound may have grown during expansion: re-prune with
        // the settled value. Nodes carried over by a truncation keep their
        // (conservative) σ and are only dropped when even that cannot beat
        // the bound.
        let mut next = next;
        let born = next.len();
        next.retain(|n| n.sigma > lb + opts.delta);
        overrun_trace::counter!("jsr.settled_pruned", (born - next.len()) as u64);
        frontier = next;
        // Per-depth settled lb is deterministic (scheduling and screening
        // only skip max-fold no-ops), so this provenance marker is too.
        if lb > lb_before {
            lb_depth = depth;
            overrun_trace::progress!("jsr.lb", lb);
        }
    }

    let search_upper = if truncated {
        frontier
            .iter()
            .map(|n| n.sigma)
            .fold(lb + opts.delta, f64::max)
    } else {
        lb + opts.delta
    };
    let upper = search_upper.min(ellipsoid_bound.max(lb));
    overrun_trace::progress!("jsr.ub", upper);
    Ok((
        JsrBounds { lower: lb, upper },
        counters.snapshot(lb_depth),
    ))
}

/// Expands one frontier node against every matrix of the set, improving the
/// shared lower bound and returning the children that survive pruning
/// against the bound *as currently visible* (final pruning against the
/// settled bound happens in the caller).
///
/// With `screen` enabled, each child is first bracketed by the O(n²)
/// certified bounds; the exact Schur evaluations run only when the bracket
/// straddles a decision. Every skip is a provable bitwise no-op:
///
/// * a child is dropped without its exact norm only when even the cheap
///   *upper* bound keeps `σ` at or below `lb + δ` (the exact σ, which can
///   only be smaller, would have been pruned too) *and* the eigenvalue
///   solve is provably a no-op — because the cheap radius bound sits at or
///   below `lb`, or because the cheap norm bound does (then `ρ ≤ ‖·‖ ≤ lb`
///   and the `nrm > lb` gate cannot fire);
/// * the eigenvalue solve is skipped only when the guarded cheap radius
///   bound sits at or below a value `lb` already reached — the max-fold
///   would have ignored the exact ρ.
///
/// On the **terminal** depth (the last expansion before the depth cap) the
/// pruning threshold is widened to the running maximum of exact σ values
/// seen this depth: terminal children are never expanded, so their only
/// effect is the order-independent `search_upper` max-fold, and a child
/// whose cheap σ bound cannot exceed that running maximum folds to nothing.
///
/// Skip thresholds use possibly-lagging views of the shared cells, which
/// only makes screening *more* conservative (a smaller threshold skips
/// less), so the parallel determinism argument of the unscreened path
/// carries over unchanged.
///
/// `scratch` holds the raw product; only surviving children allocate.
#[allow(clippy::too_many_arguments)]
fn expand_node(
    set: &MatrixSet,
    node: &Node,
    inv_depth: f64,
    delta: f64,
    screen: bool,
    terminal: bool,
    lb_cell: &SharedMaxF64,
    sigma_cell: &SharedMaxF64,
    counters: &ScreenCounters,
    scratch: &mut Matrix,
) -> Result<Vec<Node>> {
    // The surviving-children vector is the node's return value; it is the
    // one deliberate allocation in the frontier loop (amortised by the
    // pruning that keeps it short).
    // lint: allow(hotpath)
    let mut children = Vec::new();
    for a in set {
        a.matmul_into(&node.product, scratch)?;
        counters.node();
        // True quantities in log space: the full product is
        // exp(node.log_scale) · scratch.
        let (nrm_hi, rho_hi) = if screen {
            scaled_cheap_bounds(scratch, node.log_scale, inv_depth)
        } else {
            (f64::INFINITY, f64::INFINITY)
        };
        let lb_seen = lb_cell.get();
        // Full skip: the child provably folds to nothing (even the cheap
        // upper bound keeps σ at or below the pruning threshold — or, on
        // the terminal depth, below an exact σ already folded) AND the
        // eigenvalue solve is provably a no-op — either because the radius
        // bound already sits at or below lb, or because `nrm_hi ≤ lb`
        // makes the `nrm > lb` gate below provably false (the shared
        // bound only grows).
        let sigma_gate = if terminal {
            sigma_cell.get().max(lb_seen + delta)
        } else {
            lb_seen + delta
        };
        if node.sigma.min(nrm_hi) <= sigma_gate && (rho_hi <= lb_seen || nrm_hi <= lb_seen) {
            counters.skip_norm();
            counters.skip_eig();
            continue;
        }
        let nrm_p = norm_2(scratch);
        counters.exact_norm();
        let nrm = scale_pow(nrm_p, node.log_scale, inv_depth);
        // ρ(P) ≤ ‖P‖: the eigenvalue solve can only improve the lower
        // bound when the norm-based value exceeds it.
        if nrm > lb_cell.get() {
            if rho_hi <= lb_seen {
                counters.skip_eig();
            } else {
                counters.exact_eig();
                let rho_p = spectral_radius(scratch)?;
                let rho = scale_pow(rho_p, node.log_scale, inv_depth);
                lb_cell.update(rho);
            }
        }
        let sigma = node.sigma.min(nrm);
        if terminal {
            sigma_cell.update(sigma);
        }
        if sigma > lb_cell.get() + delta {
            let (product, extra) = normalize_log_ref(scratch, nrm_p);
            children.push(Node {
                product,
                log_scale: node.log_scale + extra,
                sigma,
            });
        }
    }
    Ok(children)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_tight() {
        let a = Matrix::from_rows(&[&[0.2, 0.9], &[-0.4, 0.1]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let b = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        assert!(b.lower <= rho + 1e-9 && rho <= b.upper + 1e-9);
        // For a singleton ‖Aᵏ‖^{1/k} converges to ρ only geometrically in
        // 1/k, so the gap at the default depth budget is small but larger
        // than δ.
        assert!(b.gap() <= 1e-2, "gap = {}", b.gap());
        assert!((b.lower - rho).abs() < 1e-9);
    }

    #[test]
    fn golden_ratio_pair() {
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b = gripenberg(
            &set,
            &GripenbergOptions {
                delta: 1e-3,
                ..GripenbergOptions::default()
            },
        )
        .unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((b.lower - phi).abs() < 1e-6, "lower {} vs {phi}", b.lower);
        assert!(b.upper >= phi - 1e-9);
        assert!(b.upper <= phi + 1e-3 + 1e-6);
    }

    #[test]
    fn commuting_diagonals() {
        let set = MatrixSet::new(vec![
            Matrix::diag(&[0.9, 0.3]),
            Matrix::diag(&[0.5, 0.8]),
        ])
        .unwrap();
        let b = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        assert!((b.lower - 0.9).abs() < 1e-9);
        assert!(b.upper <= 0.9 + 1e-4 + 1e-9);
    }

    #[test]
    fn scaling_property() {
        // JSR(c · A) = c · JSR(A)
        let a1 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.5]]).unwrap();
        let set1 = MatrixSet::new(vec![a1.clone(), a2.clone()]).unwrap();
        let set2 = MatrixSet::new(vec![a1.scale(2.0), a2.scale(2.0)]).unwrap();
        let b1 = gripenberg(&set1, &GripenbergOptions::default()).unwrap();
        let b2 = gripenberg(&set2, &GripenbergOptions::default()).unwrap();
        assert!((b2.lower - 2.0 * b1.lower).abs() < 1e-3);
    }

    #[test]
    fn stable_set_certifies_stable() {
        let a1 = Matrix::from_rows(&[&[0.5, 0.2], &[-0.1, 0.4]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.3, -0.3], &[0.2, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        assert!(b.certifies_stable(), "bounds {b}");
    }

    #[test]
    fn unstable_set_certifies_unstable() {
        let set = MatrixSet::new(vec![
            Matrix::diag(&[1.2, 0.1]),
            Matrix::diag(&[0.1, 0.2]),
        ])
        .unwrap();
        let b = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        assert!(b.certifies_unstable(), "bounds {b}");
    }

    #[test]
    fn options_validation() {
        let set = MatrixSet::new(vec![Matrix::identity(2)]).unwrap();
        assert!(gripenberg(
            &set,
            &GripenbergOptions {
                delta: 0.0,
                ..GripenbergOptions::default()
            }
        )
        .is_err());
        assert!(gripenberg(
            &set,
            &GripenbergOptions {
                max_depth: 0,
                ..GripenbergOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn truncated_budget_still_valid() {
        // With an extreme budget the bound is loose but must stay valid.
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b = gripenberg(
            &set,
            &GripenbergOptions {
                delta: 1e-8,
                max_depth: 3,
                max_products: 50,
                precondition: false,
                ellipsoid: false,
                screen: true,
            },
        )
        .unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!(b.lower <= phi + 1e-9);
        assert!(b.upper >= phi - 1e-3);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // The parallel depth expansion is designed to be exactly
        // reproducible: lagging views of the shared lower bound only
        // admit extra candidates, and the settled-lb retain recovers the
        // serial frontier. Verify the certified interval is bit-identical.
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let a3 = Matrix::from_rows(&[&[0.8, -0.4], &[0.3, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2, a3]).unwrap();
        let opts = GripenbergOptions {
            delta: 1e-3,
            ..GripenbergOptions::default()
        };
        overrun_par::set_thread_override(Some(1));
        let serial = gripenberg(&set, &opts).unwrap();
        overrun_par::set_thread_override(Some(4));
        let par = gripenberg(&set, &opts).unwrap();
        overrun_par::set_thread_override(None);
        assert_eq!(serial.lower.to_bits(), par.lower.to_bits());
        assert_eq!(serial.upper.to_bits(), par.upper.to_bits());
    }

    #[test]
    fn screening_is_bitwise_neutral_and_skips_work() {
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let a3 = Matrix::from_rows(&[&[0.8, -0.4], &[0.3, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2, a3]).unwrap();
        let on = GripenbergOptions {
            delta: 1e-3,
            ..GripenbergOptions::default()
        };
        let off = GripenbergOptions {
            screen: false,
            ..on.clone()
        };
        let (b_on, s_on) = gripenberg_with_stats(&set, &on).unwrap();
        let (b_off, s_off) = gripenberg_with_stats(&set, &off).unwrap();
        assert_eq!(b_on.lower.to_bits(), b_off.lower.to_bits());
        assert_eq!(b_on.upper.to_bits(), b_off.upper.to_bits());
        assert_eq!(s_on.lb_depth, s_off.lb_depth);
        assert_eq!(s_off.schur_skipped(), 0);
        assert!(
            s_on.schur_evals() < s_off.schur_evals(),
            "screening saved nothing: on={s_on} off={s_off}"
        );
    }

    #[test]
    fn agrees_with_bruteforce() {
        let a1 = Matrix::from_rows(&[&[0.7, 0.3], &[-0.2, 0.6]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.4, -0.5], &[0.5, 0.2]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let g = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        let bf = crate::bruteforce_bounds(
            &set,
            &crate::BruteforceOptions {
                max_depth: 10,
                ..crate::BruteforceOptions::default()
            },
        )
        .unwrap();
        // Intervals must overlap (both contain the true JSR).
        assert!(g.lower <= bf.upper + 1e-9, "g={g:?} bf={bf:?}");
        assert!(bf.lower <= g.upper + 1e-9, "g={g:?} bf={bf:?}");
    }
}
