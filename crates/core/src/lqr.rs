//! Adaptive delayed LQR design (paper Sec. IV-B, LQG case).
//!
//! For each interval `h ∈ H` the plant is discretised at `h` and augmented
//! with the in-flight command (the input–output delay of the paper's
//! computational model is one full interval):
//!
//! ```text
//! ⎡x[k+1]⎤   ⎡Φ(h)  Γ(h)⎤ ⎡x[k]⎤   ⎡0⎤
//! ⎢      ⎥ = ⎢          ⎥ ⎢    ⎥ + ⎢ ⎥ u[k+1]
//! ⎣u[k+1]⎦   ⎣ 0     0  ⎦ ⎣u[k]⎦   ⎣I⎦
//! ```
//!
//! One discrete Riccati equation per interval yields the gain
//! `K(h) = [K_x(h), K_u(h)]` and the optimal delayed state feedback
//! `u[k+1] = −K_x(h) x[k] − K_u(h) u[k]`, realised as a controller mode
//! whose internal state is the previously issued command.

use overrun_linalg::{dlqr_solution, Matrix};

use crate::{ContinuousSs, ControllerMode, ControllerTable, Error, IntervalSet, Result};

/// Weights of the quadratic cost `Σ xᵀQx + uᵀRu`.
#[derive(Debug, Clone, PartialEq)]
pub struct LqrWeights {
    /// State weight `Q ⪰ 0` (`n × n`).
    pub q: Matrix,
    /// Input weight `R ≻ 0` (`r × r`).
    pub r: Matrix,
}

impl LqrWeights {
    /// Identity state weight, `ρ·I` input weight.
    pub fn identity(state_dim: usize, input_dim: usize, input_scale: f64) -> Self {
        LqrWeights {
            q: Matrix::identity(state_dim),
            r: Matrix::identity(input_dim) * input_scale,
        }
    }
}

/// Designs the delayed-LQR gain for a single interval; returns the
/// controller mode realising `u[k+1] = −K_x x[k] − K_u u[k]` with
/// `e[k] = −x[k]` as its input (full-state feedback, `C_m = I`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for shape mismatches and propagates
/// Riccati failures as [`Error::Design`].
///
/// # Example
///
/// ```
/// use overrun_control::{lqr, plants};
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::pmsm();
/// let w = lqr::LqrWeights::identity(3, 2, 0.1);
/// let mode = lqr::mode_for_interval(&plant, 50e-6, &w)?;
/// assert_eq!(mode.state_dim(), 2); // holds the in-flight command
/// # Ok(())
/// # }
/// ```
pub fn mode_for_interval(
    plant: &ContinuousSs,
    h: f64,
    weights: &LqrWeights,
) -> Result<ControllerMode> {
    let n = plant.state_dim();
    let r = plant.input_dim();
    if weights.q.shape() != (n, n) {
        return Err(Error::InvalidConfig(format!(
            "Q must be {n}x{n}, got {}x{}",
            weights.q.rows(),
            weights.q.cols()
        )));
    }
    if weights.r.shape() != (r, r) {
        return Err(Error::InvalidConfig(format!(
            "R must be {r}x{r}, got {}x{}",
            weights.r.rows(),
            weights.r.cols()
        )));
    }
    let d = plant.discretize(h)?;

    // Augmented plant [x; u_prev] with decision v = u[k+1].
    let mut a_aug = Matrix::zeros(n + r, n + r);
    a_aug.set_block(0, 0, &d.phi).map_err(Error::Linalg)?;
    a_aug.set_block(0, n, &d.gamma).map_err(Error::Linalg)?;
    let mut b_aug = Matrix::zeros(n + r, r);
    b_aug
        .set_block(n, 0, &Matrix::identity(r))
        .map_err(Error::Linalg)?;
    let mut q_aug = Matrix::zeros(n + r, n + r);
    q_aug.set_block(0, 0, &weights.q).map_err(Error::Linalg)?;
    // Small regularisation on the held command keeps (A_aug, Q_aug^{1/2})
    // detectable even when Q only weighs part of the state.
    q_aug
        .set_block(n, n, &(weights.r.clone() * 1e-9))
        .map_err(Error::Linalg)?;

    let _sp = overrun_trace::span!("lqr.mode", h_us = h * 1e6);
    let (k_gain, sol) = dlqr_solution(&a_aug, &b_aug, &q_aug, &weights.r).map_err(|e| {
        Error::Design(format!("delayed LQR Riccati failed at h = {h}: {e}"))
    })?;
    overrun_trace::counter!("lqr.riccati_iters", sol.iterations as u64);
    overrun_trace::histogram!("lqr.riccati_residual", sol.residual);
    let kx = k_gain.submatrix(0, 0, r, n).map_err(Error::Linalg)?;
    let ku = k_gain.submatrix(0, n, r, r).map_err(Error::Linalg)?;

    // e[k] = −x[k] ⇒ u[k+1] = Cc z[k] + Dc e[k] with z[k] = u[k]:
    //   Cc = −K_u, Dc = +K_x, Ac = Cc, Bc = Dc.
    let cc = ku.scale(-1.0);
    let dc = kx;
    ControllerMode::new(cc.clone(), dc.clone(), cc, dc)
}

/// Designs the **adaptive** LQR table: one optimal delayed gain per
/// interval in `H` (the paper's "collection of optimal linear quadratic
/// regulators, designed for each interval in H").
///
/// # Errors
///
/// Propagates [`mode_for_interval`] failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_control::lqr::LqrWeights;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::pmsm();
/// let hset = IntervalSet::from_timing(50e-6, 65e-6, 2)?;
/// let table = lqr::design_adaptive(&plant, &hset, &LqrWeights::identity(3, 2, 0.1))?;
/// assert_eq!(table.len(), hset.len());
/// # Ok(())
/// # }
/// ```
pub fn design_adaptive(
    plant: &ContinuousSs,
    hset: &IntervalSet,
    weights: &LqrWeights,
) -> Result<ControllerTable> {
    let _sp = overrun_trace::span!("table.lqr", modes = hset.len());
    // Each interval's Riccati solve is independent, so the table is built
    // with one task per h (serial when only one thread is available).
    let modes = overrun_par::try_parallel_map(hset.intervals(), |_, &h| {
        mode_for_interval(plant, h, weights)
    })?;
    ControllerTable::new(modes, hset.clone())
}

/// Designs a **fixed** LQR table: the gain optimal for `h_design` replicated
/// over every interval — the paper's fixed-control baselines (optimal for
/// `T` or for `Rmax`, executed under the adaptive release pattern).
///
/// # Errors
///
/// Propagates [`mode_for_interval`] failures.
pub fn design_fixed(
    plant: &ContinuousSs,
    hset: &IntervalSet,
    weights: &LqrWeights,
    h_design: f64,
) -> Result<ControllerTable> {
    let mode = mode_for_interval(plant, h_design, weights)?;
    ControllerTable::fixed(mode, hset.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lifted, plants, IntervalSet};
    use overrun_linalg::spectral_radius;

    fn weights3() -> LqrWeights {
        LqrWeights::identity(3, 2, 0.1)
    }

    #[test]
    fn mode_stabilizes_its_own_interval() {
        let plant = plants::pmsm();
        let h = 50e-6;
        let mode = mode_for_interval(&plant, h, &weights3()).unwrap();
        let omega =
            lifted::build_omega(&plant, &mode, h, &Matrix::identity(3)).unwrap();
        let rho = spectral_radius(&omega).unwrap();
        assert!(rho < 1.0, "ρ = {rho}");
    }

    #[test]
    fn mode_structure_is_delayed_state_feedback() {
        let plant = plants::pmsm();
        let mode = mode_for_interval(&plant, 50e-6, &weights3()).unwrap();
        // z = u_prev (2 states), e = −x (3 entries), u (2 commands).
        assert_eq!(mode.state_dim(), 2);
        assert_eq!(mode.error_dim(), 3);
        assert_eq!(mode.output_dim(), 2);
        // Ac = Cc and Bc = Dc by construction (z tracks u).
        assert_eq!(mode.ac, mode.cc);
        assert_eq!(mode.bc, mode.dc);
    }

    #[test]
    fn adaptive_table_gains_vary_with_interval() {
        let plant = plants::pmsm();
        let hset = IntervalSet::from_timing(50e-6, 80e-6, 2).unwrap(); // {50,75,100} µs
        let table = design_adaptive(&plant, &hset, &weights3()).unwrap();
        assert_eq!(table.len(), 3);
        assert_ne!(table.mode(0).dc, table.mode(2).dc);
    }

    #[test]
    fn fixed_table_replicates() {
        let plant = plants::pmsm();
        let hset = IntervalSet::from_timing(50e-6, 80e-6, 2).unwrap();
        let table = design_fixed(&plant, &hset, &weights3(), 50e-6).unwrap();
        assert_eq!(table.mode(0), table.mode(2));
    }

    #[test]
    fn weight_shape_validation() {
        let plant = plants::pmsm();
        let bad_q = LqrWeights {
            q: Matrix::identity(2),
            r: Matrix::identity(2),
        };
        assert!(mode_for_interval(&plant, 50e-6, &bad_q).is_err());
        let bad_r = LqrWeights {
            q: Matrix::identity(3),
            r: Matrix::identity(3),
        };
        assert!(mode_for_interval(&plant, 50e-6, &bad_r).is_err());
    }

    #[test]
    fn works_on_unstable_siso_plant() {
        let plant = plants::unstable_second_order();
        let w = LqrWeights::identity(2, 1, 1.0);
        let mode = mode_for_interval(&plant, 0.010, &w).unwrap();
        let omega =
            lifted::build_omega(&plant, &mode, 0.010, &Matrix::identity(2)).unwrap();
        assert!(spectral_radius(&omega).unwrap() < 1.0);
    }

    #[test]
    fn longer_interval_gives_different_gain() {
        let plant = plants::unstable_second_order();
        let w = LqrWeights::identity(2, 1, 1.0);
        let m1 = mode_for_interval(&plant, 0.010, &w).unwrap();
        let m2 = mode_for_interval(&plant, 0.020, &w).unwrap();
        assert!((m1.dc[(0, 0)] - m2.dc[(0, 0)]).abs() > 1e-6);
    }
}
