//! Adaptive real-time control design under sporadic overruns.
//!
//! This crate is a from-scratch Rust reproduction of
//! *"Adaptive Design of Real-Time Control Systems subject to Sporadic
//! Overruns"* (P. Pazzaglia, A. Hamann, D. Ziegenbein, M. Maggio — DATE
//! 2021). It implements the paper's primary contribution end-to-end:
//!
//! 1. **System model** (paper Sec. III) — continuous LTI plants
//!    ([`ContinuousSs`]) sampled with zero-order hold over the admissible
//!    inter-release intervals `h ∈ H` ([`IntervalSet`], paper Eq. 3/5).
//! 2. **Adaptive control design** (Sec. IV) — one controller mode per
//!    interval in `H` ([`ControllerTable`]): an adaptive [`pi`] controller
//!    whose integrator advances by the *actual* elapsed interval (Eq. 7),
//!    and an adaptive delayed-[`lqr`] design solving one Riccati equation
//!    per interval.
//! 3. **Exact stability analysis** (Sec. V) — the lifted closed loop
//!    `ξ(k+1) = Ω(h_k) ξ(k)` ([`lifted::build_omega`]) and a joint-spectral-
//!    radius certificate ([`stability::certify`]) via `overrun-jsr`.
//! 4. **Evaluation machinery** (Sec. VI) — a closed-loop simulator driven by
//!    response-time sequences ([`sim::ClosedLoopSim`]), worst-case cost
//!    metrics ([`metrics`]), and the full Table I / Table II scenario
//!    drivers ([`scenarios`]).
//!
//! # Quickstart
//!
//! ```
//! use overrun_control::prelude::*;
//!
//! # fn main() -> Result<(), overrun_control::Error> {
//! // An unstable plant controlled with T = 10 ms, overruns up to 1.3 T,
//! // sensor oversampling Ts = T/2.
//! let plant = plants::unstable_second_order();
//! let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
//! let table = pi::design_adaptive(&plant, &hset)?;
//! let report = stability::certify(&plant, &table, &Default::default())?;
//! assert!(report.bounds.certifies_stable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod hset;
mod lti;

pub mod analysis;
pub mod lifted;
pub mod lqg;
pub mod lqr;
pub mod metrics;
pub mod pi;
pub mod plants;
pub mod scenarios;
pub mod sim;
pub mod stability;
pub mod tuning;

pub use controller::{ControllerMode, ControllerTable};
pub use error::Error;
pub use hset::IntervalSet;
pub use lti::{ContinuousSs, DiscreteSs};

/// Convenience alias for `Result<T, overrun_control::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        analysis, lifted, lqg, lqr, metrics, pi, plants, scenarios, sim, stability,
        ContinuousSs, ControllerMode, ControllerTable, DiscreteSs, IntervalSet,
    };
}
