//! Cross-crate equivalence tests for the lazy-exact norm screening: on the
//! Table-II lifted matrix sets, every search must return a certified
//! `[LB, UB]` interval (and lower-bound provenance) that is bit-identical
//! with screening on and off, serially and in parallel — while actually
//! skipping a substantial share of the exact Schur evaluations.
//!
//! The thread override is process-global, so all tests share one lock and
//! always restore the default before releasing it.

use std::sync::Mutex;

use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_jsr::{
    bruteforce_bounds_with_stats, refined_bounds_with_stats, BruteforceOptions,
    GripenbergOptions, MatrixSet, RefineOptions,
};
use overrun_par::set_thread_override;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at each thread count in `counts` and returns the results,
/// restoring the default thread selection afterwards.
fn at_thread_counts<R>(counts: &[usize], mut f: impl FnMut() -> R) -> Vec<R> {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let out = counts
        .iter()
        .map(|&t| {
            set_thread_override(Some(t));
            f()
        })
        .collect();
    set_thread_override(None);
    out
}

/// The Table-II lifted matrix set for one `(Rmax factor, Ns)` cell.
fn table2_set(factor: f64, ns: u32) -> MatrixSet {
    let plant = plants::pmsm();
    let t = 50e-6;
    let hset = IntervalSet::from_timing(t, factor * t, ns).unwrap();
    let table = lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).unwrap();
    let meas = lifted::measurement_matrix(&plant, &table).unwrap();
    MatrixSet::new(lifted::build_omega_set(&plant, &table, &meas).unwrap()).unwrap()
}

/// The power-lifted Gripenberg searches behind `stability::certify` return
/// bitwise-identical bounds and lb provenance with screening on and off, at
/// 1 and 4 worker threads, on Table-II sets — and screening saves well over
/// half of the exact Schur evaluations.
#[test]
fn gripenberg_screening_bitwise_identical_on_table2_sets() {
    for (factor, ns) in [(1.3, 2u32), (1.6, 2)] {
        let set = table2_set(factor, ns);
        // Production configuration: exactly what `stability::certify`
        // passes down for a Table-II cell, so the measured savings are the
        // ones the adaptive-design certification pipeline sees.
        let mk = |screen: bool| RefineOptions {
            base: GripenbergOptions {
                delta: 1e-5,
                max_depth: 8,
                max_products: 100_000,
                precondition: true,
                ellipsoid: true,
                screen,
            },
            max_power: 6,
            max_alphabet: 1024,
            decision_threshold: Some(1.0),
        };
        let runs = at_thread_counts(&[1, 4], || {
            let on = refined_bounds_with_stats(&set, &mk(true)).unwrap();
            let off = refined_bounds_with_stats(&set, &mk(false)).unwrap();
            (on, off)
        });
        let serial_bounds = runs[0].0 .0;
        for (threads, ((b_on, s_on), (b_off, s_off))) in [1usize, 4].iter().zip(&runs) {
            let ctx = format!("Rmax = {factor}T, Ns = {ns}, {threads} threads");
            assert_eq!(
                b_on.lower.to_bits(),
                b_off.lower.to_bits(),
                "LB differs: {ctx}"
            );
            assert_eq!(
                b_on.upper.to_bits(),
                b_off.upper.to_bits(),
                "UB differs: {ctx}"
            );
            assert_eq!(
                b_on.lower.to_bits(),
                serial_bounds.lower.to_bits(),
                "LB differs from serial: {ctx}"
            );
            assert_eq!(
                b_on.upper.to_bits(),
                serial_bounds.upper.to_bits(),
                "UB differs from serial: {ctx}"
            );
            assert_eq!(s_on.lb_depth, s_off.lb_depth, "lb provenance differs: {ctx}");
            assert_eq!(s_off.schur_skipped(), 0, "screen=false must not skip: {ctx}");
            assert!(
                s_on.schur_evals() * 5 < s_off.schur_evals() * 2,
                "screening saved less than 60% of exact evals: {ctx}, on={s_on} off={s_off}"
            );
        }
    }
}

/// The Eq.-12 brute-force enumeration is bitwise-invariant under screening
/// on the Table-II sets, with the depth-1 norms answered from the set cache.
#[test]
fn bruteforce_screening_bitwise_identical_on_table2_sets() {
    let set = table2_set(1.3, 2);
    let mk = |screen: bool| BruteforceOptions {
        max_depth: 7,
        screen,
        ..Default::default()
    };
    let (b_on, s_on) = bruteforce_bounds_with_stats(&set, &mk(true)).unwrap();
    let (b_off, s_off) = bruteforce_bounds_with_stats(&set, &mk(false)).unwrap();
    assert_eq!(b_on.lower.to_bits(), b_off.lower.to_bits());
    assert_eq!(b_on.upper.to_bits(), b_off.upper.to_bits());
    assert_eq!(s_on.lb_depth, s_off.lb_depth);
    assert_eq!(s_on.nodes, s_off.nodes, "screening must not prune nodes");
    assert_eq!(s_on.cached_norms, set.len() as u64);
    assert_eq!(s_off.cached_norms, set.len() as u64);
    assert!(
        s_on.schur_evals() < s_off.schur_evals(),
        "screening saved nothing: on={s_on} off={s_off}"
    );
    assert!(b_on.lower <= b_on.upper);
}
