//! Integration tests for the extension paths: output-feedback LQG,
//! weakly-hard constrained certification, closed-form cost analysis and
//! bursty workloads — everything working together across crates.

use overrun_control::analysis::{constant_mode_cost, per_mode_costs};
use overrun_control::lqg::NoiseModel;
use overrun_control::lqr::LqrWeights;
use overrun_control::metrics::{evaluate_worst_case_with_model, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_jsr::StabilityVerdict;
use overrun_linalg::Matrix;
use overrun_rtsim::{ResponseTimeModel, Span, WeaklyHard};

/// Output-feedback LQG (observer-based) certifies and simulates end-to-end
/// on an unstable plant where only the position is measured.
#[test]
fn lqg_output_feedback_end_to_end() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
    let weights = LqrWeights::identity(2, 1, 0.1);
    let noise = NoiseModel::isotropic(2, 1, 1e-3, 1e-2);
    let table = lqg::design_adaptive(&plant, &hset, &weights, &noise).unwrap();
    // Observer-based modes consume outputs, not states.
    assert_eq!(table.error_dim(), 1);
    assert_eq!(table.state_dim(), 3); // x̂ (2) + u_prev (1)

    let report = stability::certify(&plant, &table, &Default::default()).unwrap();
    assert_eq!(report.verdict, StabilityVerdict::Stable, "{:?}", report.bounds);

    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
    // Random switching incl. worst intervals.
    let modes: Vec<usize> = (0..600).map(|k| if k % 9 == 0 { 1 } else { 0 }).collect();
    let traj = sim.run(&scenario, &modes).unwrap();
    assert!(!traj.diverged);
    let first = traj.errors[0].max_abs();
    let last = traj.errors.last().unwrap().max_abs();
    assert!(last < 0.1 * first, "first {first}, last {last}");
}

/// The weakly-hard rescue demonstrated end-to-end: arbitrary switching
/// unstable, constrained switching stable, and the constrained bounds
/// sandwich correctly under the unconstrained ones.
#[test]
fn weakly_hard_rescue_of_fixed_gain_design() {
    let plant = plants::pmsm();
    let t = 50e-6;
    let hset = IntervalSet::from_timing(t, 1.6 * t, 2).unwrap();
    let fixed_t = lqr::design_fixed(&plant, &hset, &pmsm_table2_weights(), t).unwrap();

    let free = stability::certify(&plant, &fixed_t, &Default::default()).unwrap();
    assert_eq!(free.verdict, StabilityVerdict::Unstable);

    let constrained = stability::certify_constrained(
        &plant,
        &fixed_t,
        &|prev, next| !(prev > 0 && next > 0),
        14,
    )
    .unwrap();
    assert_eq!(
        constrained.verdict,
        StabilityVerdict::Stable,
        "{:?}",
        constrained.bounds
    );
    // ρ_C ≤ ρ.
    assert!(constrained.bounds.lower <= free.bounds.upper + 1e-9);
    // The weakly-hard helper agrees with the predicate used.
    let wh = WeaklyHard::new(1, 2);
    assert!(wh.is_satisfied_by(&[true, false, true, false]));
    assert!(!wh.is_satisfied_by(&[true, true]));
}

/// Closed-form Lyapunov costs must dominate simulated finite-horizon costs
/// and be consistent across the mode table.
#[test]
fn closed_form_costs_consistent_with_simulation() {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 2).unwrap();
    let table = lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).unwrap();
    let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);

    let exact = per_mode_costs(&plant, &table, &x0).unwrap();
    assert_eq!(exact.len(), hset.len());

    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::regulation(x0.clone(), 3);
    for (i, &cost) in exact.iter().enumerate() {
        // Constant-mode loop: the virtual pre-first interval is mode i too.
        let traj = sim
            .run_with_initial_mode(&scenario, &vec![i; 600], i)
            .unwrap();
        assert!(!traj.diverged);
        let rel = (cost - traj.cost).abs() / cost.max(1e-12);
        assert!(
            rel < 1e-3,
            "mode {i}: closed form {cost} vs simulated {}",
            traj.cost
        );
    }
    // Sanity versus the single-mode helper.
    let single =
        constant_mode_cost(&plant, table.mode(0), hset.intervals()[0], &x0).unwrap();
    assert!((single - exact[0]).abs() < 1e-9 * single.max(1.0));
}

/// Bursty (Markov) workloads stress the adaptive design harder than
/// independent overruns of the same marginal rate, but it must remain
/// stable and bounded as long as the certificate holds.
#[test]
fn bursty_workload_respects_certificate() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let report = stability::certify(&plant, &table, &Default::default()).unwrap();
    assert_eq!(report.verdict, StabilityVerdict::Stable);

    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    let bursty = ResponseTimeModel::Markov {
        min: Span::from_millis(1),
        period: Span::from_millis(10),
        max: Span::from_millis(16),
        enter_prob: 0.08,
        leave_prob: 0.3,
    };
    let report = evaluate_worst_case_with_model(
        &sim,
        &scenario,
        &bursty,
        &WorstCaseOptions {
            num_sequences: 200,
            jobs_per_sequence: 100,
            seed: 17,
            rmin_fraction: 0.05,
        },
    )
    .unwrap();
    assert!(report.all_stable());
    assert!(report.worst_cost.is_finite());
}
