//! `overrun-lint` CLI.
//!
//! ```text
//! overrun-lint [--config <lint.toml>] [--deny] [--json] [--update-baseline]
//! ```
//!
//! * default: print violations + ratchet summary, exit 0 (warn mode);
//! * `--deny`: exit 1 on any violation or ratchet regression (CI gate);
//! * `--json`: machine-readable report on stdout;
//! * `--update-baseline`: rewrite the baseline file with the current
//!   counts (only do this after burning sites *down* — review the diff);
//! * `--config`: path to `lint.toml` (default: `./lint.toml`, so running
//!   from the workspace root just works).

// The CLI's one job is printing the report; the workspace-wide
// print_stdout deny is for library crates.
#![allow(clippy::print_stdout)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use overrun_lint::{baseline::Baseline, config, run};

struct Args {
    config: PathBuf,
    deny: bool,
    json: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: PathBuf::from("lint.toml"),
        deny: false,
        json: false,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--config" => {
                args.config = PathBuf::from(
                    it.next().ok_or("--config requires a path argument")?,
                );
            }
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: overrun-lint [--config <lint.toml>] [--deny] [--json] [--update-baseline]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("overrun-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match config::load(&args.config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("overrun-lint: config error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("overrun-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let mut baseline = Baseline::default();
        for (name, counts) in &report.counts {
            let ratcheted = cfg.crates.iter().any(|c| &c.name == name && c.ratchet);
            if ratcheted {
                baseline.crates.insert(name.clone(), *counts);
            }
        }
        let path = cfg.root.join(&cfg.baseline);
        if let Err(e) = baseline.store(&path) {
            eprintln!("overrun-lint: {e}");
            return ExitCode::from(2);
        }
        eprintln!("overrun-lint: baseline rewritten at {}", path.display());
    }

    if args.json {
        println!("{}", report.to_json());
    } else {
        for d in &report.violations {
            eprintln!("{d}");
        }
        for d in &report.suppressed {
            eprintln!("suppressed: {d}");
        }
        for note in &report.improvements {
            eprintln!("note: {note}");
        }
        eprintln!(
            "overrun-lint: {} files, {} violation(s), {} suppressed",
            report.files_scanned,
            report.violations.len(),
            report.suppressed.len()
        );
    }

    if args.deny && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
