//! Weakly-hard characterisation of overrun traces.
//!
//! The weakly-hard model (Bernat et al., paper ref. \[16\]) bounds how many
//! deadline misses — here: overruns — may occur in any window of `K`
//! consecutive jobs. The paper positions its approach against
//! weakly-hard-based stability tests (refs. \[17\], \[18\]); this module
//! extracts the empirical weakly-hard contract from a simulated trace and
//! builds the matching transition constraint for
//! `overrun_jsr::constrained_bounds`-style analyses.

use crate::ReleaseTrace;

/// An `(m, K)` weakly-hard constraint: at most `m` overruns in any window
/// of `K` consecutive jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeaklyHard {
    /// Maximum number of overruns tolerated per window.
    pub m: u32,
    /// Window length in jobs.
    pub k: u32,
}

impl WeaklyHard {
    /// Creates an `(m, K)` constraint.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m > k`.
    pub fn new(m: u32, k: u32) -> Self {
        assert!(k > 0, "window length K must be positive");
        assert!(m <= k, "m = {m} overruns cannot exceed the window K = {k}");
        WeaklyHard { m, k }
    }

    /// Checks whether a boolean overrun pattern satisfies the constraint.
    pub fn is_satisfied_by(&self, overruns: &[bool]) -> bool {
        let k = self.k as usize;
        if overruns.len() < k {
            return overruns.iter().filter(|&&o| o).count() <= self.m as usize;
        }
        let mut in_window = overruns[..k].iter().filter(|&&o| o).count();
        if in_window > self.m as usize {
            return false;
        }
        for i in k..overruns.len() {
            in_window += usize::from(overruns[i]);
            in_window -= usize::from(overruns[i - k]);
            if in_window > self.m as usize {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Display for WeaklyHard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.m, self.k)
    }
}

/// The tightest `m` such that the trace satisfies `(m, K)` for the given
/// window `K` (i.e. the maximum number of overruns observed in any window
/// of `K` consecutive jobs).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn max_overruns_in_window(trace: &ReleaseTrace, k: u32) -> u32 {
    assert!(k > 0, "window length K must be positive");
    let flags: Vec<bool> = trace.jobs.iter().map(|j| j.overran).collect();
    let k = (k as usize).min(flags.len().max(1));
    if flags.is_empty() {
        return 0;
    }
    let mut in_window = flags[..k.min(flags.len())]
        .iter()
        .filter(|&&o| o)
        .count();
    let mut worst = in_window;
    for i in k..flags.len() {
        in_window += usize::from(flags[i]);
        in_window -= usize::from(flags[i - k]);
        worst = worst.max(in_window);
    }
    worst as u32
}

/// Extracts the empirical weakly-hard contract of a trace for a window `K`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn empirical_contract(trace: &ReleaseTrace, k: u32) -> WeaklyHard {
    WeaklyHard::new(max_overruns_in_window(trace, k).min(k), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OverrunPolicy, Span};

    fn trace_from_pattern(pattern: &[bool]) -> ReleaseTrace {
        let policy = OverrunPolicy::new(Span::from_millis(10), 5).unwrap();
        let responses: Vec<Span> = pattern
            .iter()
            .map(|&over| {
                if over {
                    Span::from_millis(12)
                } else {
                    Span::from_millis(5)
                }
            })
            .collect();
        policy.apply(&responses).unwrap()
    }

    #[test]
    fn constraint_checking() {
        let wh = WeaklyHard::new(1, 3);
        assert!(wh.is_satisfied_by(&[false, true, false, false, true, false]));
        assert!(!wh.is_satisfied_by(&[true, false, true, false]));
        assert!(wh.is_satisfied_by(&[true])); // short pattern
        assert!(!WeaklyHard::new(0, 2).is_satisfied_by(&[false, true]));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn invalid_constraint_panics() {
        let _ = WeaklyHard::new(4, 3);
    }

    #[test]
    fn window_maximum() {
        let t = trace_from_pattern(&[false, true, true, false, false, true, false]);
        assert_eq!(max_overruns_in_window(&t, 2), 2); // the adjacent pair
        assert_eq!(max_overruns_in_window(&t, 7), 3);
        assert_eq!(max_overruns_in_window(&t, 1), 1);
    }

    #[test]
    fn empirical_contract_is_tight() {
        let t = trace_from_pattern(&[false, true, false, true, false, true]);
        let wh = empirical_contract(&t, 3);
        assert_eq!(wh, WeaklyHard::new(2, 3));
        let flags: Vec<bool> = t.jobs.iter().map(|j| j.overran).collect();
        assert!(wh.is_satisfied_by(&flags));
        // One tighter must fail.
        assert!(!WeaklyHard::new(1, 3).is_satisfied_by(&flags));
    }

    #[test]
    fn no_overruns_gives_zero_contract() {
        let t = trace_from_pattern(&[false; 10]);
        assert_eq!(empirical_contract(&t, 4), WeaklyHard::new(0, 4));
        assert_eq!(max_overruns_in_window(&t, 20), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(WeaklyHard::new(1, 5).to_string(), "(1, 5)");
    }
}
