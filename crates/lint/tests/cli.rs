//! End-to-end tests of the `overrun-lint` binary: exit codes per fixture,
//! JSON output, suppression handling, and the baseline-ratchet round trip.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_overrun-lint")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .join("lint.toml")
}

fn run_lint(config: &Path, extra: &[&str]) -> Output {
    Command::new(bin())
        .arg("--config")
        .arg(config)
        .args(extra)
        .output()
        .expect("spawn overrun-lint")
}

/// Exit code, asserting the process was not killed by a signal.
fn code(out: &Output) -> i32 {
    out.status.code().expect("terminated by signal")
}

fn json_of(config: &Path) -> String {
    let out = run_lint(config, &["--json"]);
    String::from_utf8(out.stdout).expect("JSON output is UTF-8")
}

#[test]
fn every_violation_fixture_fails_deny_with_exactly_one_finding() {
    for (name, rule) in [
        ("determinism", "determinism"),
        ("panic_freedom", "panic-freedom"),
        ("unsafe_hygiene", "unsafe-hygiene"),
        ("hotpath", "hotpath"),
    ] {
        let cfg = fixture(name);
        let deny = run_lint(&cfg, &["--deny"]);
        assert_eq!(code(&deny), 1, "fixture {name} must fail --deny");

        let warn = run_lint(&cfg, &[]);
        assert_eq!(code(&warn), 0, "fixture {name} must pass in warn mode");

        let json = json_of(&cfg);
        assert!(json.contains("\"clean\":false"), "{name}: {json}");
        let hits = json.matches(&format!("\"rule\":\"{rule}\"")).count();
        assert_eq!(hits, 1, "fixture {name} must fire `{rule}` exactly once: {json}");
    }
}

#[test]
fn suppressed_fixture_passes_deny_and_reports_suppressions() {
    let cfg = fixture("suppressed");
    let deny = run_lint(&cfg, &["--deny"]);
    assert_eq!(code(&deny), 0, "suppressed finding must not fail --deny");

    let json = json_of(&cfg);
    assert!(json.contains("\"clean\":true"), "{json}");
    // Both placements (line above, trailing on the same line) suppress.
    assert_eq!(json.matches("\"rule\":\"determinism\"").count(), 2, "{json}");
    assert!(json.contains("\"suppressed\":[{"), "{json}");
    assert!(json.contains("\"violations\":[]"), "{json}");
}

#[test]
fn trace_macro_call_sites_are_lint_clean() {
    // span!/counter!/histogram!/progress! call sites must not trip the
    // determinism rule (no clock ident leaks into instrumented crates) nor
    // the hot-path allocation rule (the macros allocate nothing at the
    // call site), even inside a registered hot-path function.
    let cfg = fixture("trace_macros");
    let deny = run_lint(&cfg, &["--deny"]);
    let stderr = String::from_utf8_lossy(&deny.stderr).to_string();
    assert_eq!(code(&deny), 0, "trace macros must be lint-clean:\n{stderr}");

    let json = json_of(&cfg);
    assert!(json.contains("\"clean\":true"), "{json}");
    assert!(json.contains("\"violations\":[]"), "{json}");
}

#[test]
fn workspace_config_is_clean_under_deny() {
    // The acceptance criterion: the committed lint.toml + baseline pass
    // --deny against the current tree.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_lint(&root.join("lint.toml"), &["--deny"]);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(code(&out), 0, "workspace lint must be clean:\n{stderr}");
}

#[test]
fn unknown_flag_and_missing_config_are_usage_errors() {
    let out = run_lint(&fixture("determinism"), &["--bogus"]);
    assert_eq!(code(&out), 2);
    let out = run_lint(Path::new("/nonexistent/lint.toml"), &[]);
    assert_eq!(code(&out), 2);
}

#[test]
fn baseline_ratchet_round_trip() {
    // Copy the panic_freedom fixture into a temp dir so --update-baseline
    // can write without touching the checked-in fixture.
    let dir = std::env::temp_dir().join(format!("overrun-lint-ratchet-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    let fixture_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/panic_freedom");
    std::fs::copy(fixture_dir.join("lint.toml"), dir.join("lint.toml")).expect("copy config");
    std::fs::copy(fixture_dir.join("src/lib.rs"), src_dir.join("lib.rs")).expect("copy source");
    let cfg = dir.join("lint.toml");

    // 1. No baseline: one unwrap ratchets against zero and fails.
    assert_eq!(code(&run_lint(&cfg, &["--deny"])), 1);

    // 2. Record the baseline: the same count now passes.
    assert_eq!(code(&run_lint(&cfg, &["--update-baseline", "--deny"])), 1,
        "the updating run itself still reports the pre-update regression");
    assert_eq!(code(&run_lint(&cfg, &["--deny"])), 0, "baseline recorded");

    // 3. Regression: a new panic site exceeds the baseline and fails.
    let mut source = std::fs::read_to_string(src_dir.join("lib.rs")).expect("read");
    source.push_str("\npub fn regression(y: Option<u32>) -> u32 { y.expect(\"boom\") }\n");
    std::fs::write(src_dir.join("lib.rs"), &source).expect("write");
    assert_eq!(code(&run_lint(&cfg, &["--deny"])), 1, "new site must regress");

    // 4. Burn-down: removing every panic site passes and the improvement
    //    can be locked in; the old (higher) baseline stays valid.
    std::fs::write(src_dir.join("lib.rs"), "pub fn clean() -> u32 { 0 }\n").expect("write");
    assert_eq!(code(&run_lint(&cfg, &["--deny"])), 0, "burn-down passes against old baseline");
    assert_eq!(code(&run_lint(&cfg, &["--update-baseline", "--deny"])), 0);
    let baseline =
        std::fs::read_to_string(dir.join("lint-baseline.toml")).expect("baseline written");
    assert!(baseline.contains("panic_sites = 0"), "{baseline}");

    std::fs::remove_dir_all(&dir).ok();
}
