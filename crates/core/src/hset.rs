//! The admissible inter-release interval set `H` (paper Eq. 3).

use overrun_rtsim::{OverrunPolicy, Span};

use crate::{Error, Result};

/// The finite set `H = {T + i·Ts : 0 ≤ i ≤ ⌈(Rmax − T)/Ts⌉}` of
/// inter-release intervals the overrun policy can produce, in seconds.
///
/// `IntervalSet` is the bridge between the exact integer-time world of
/// [`overrun_rtsim`] and the floating-point world of control design: it is
/// constructed from exact nanosecond timing and exposes the `h` values as
/// `f64` seconds for discretisation and gain design.
///
/// # Example
///
/// ```
/// use overrun_control::IntervalSet;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// // T = 10 ms, Rmax = 1.3 T, Ns = 5 (Ts = 2 ms) ⇒ H = {10, 12, 14} ms.
/// let hset = IntervalSet::from_timing(0.010, 0.013, 5)?;
/// assert_eq!(hset.len(), 3);
/// assert!((hset.intervals()[1] - 0.012).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSet {
    period: f64,
    sensor_period: f64,
    rmax: f64,
    intervals: Vec<f64>,
}

impl IntervalSet {
    /// Builds `H` from the control period `t` (seconds), worst-case response
    /// time `rmax` (seconds) and oversampling factor `ns`.
    ///
    /// Times are rounded to whole nanoseconds, so `t` must be a multiple of
    /// `ns` nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for non-positive values or an
    /// inexact sensor grid, and propagates [`overrun_rtsim`] errors.
    pub fn from_timing(t: f64, rmax: f64, ns: u32) -> Result<Self> {
        if !(t.is_finite() && t > 0.0) {
            return Err(Error::InvalidConfig(format!("period must be positive, got {t}")));
        }
        if !(rmax.is_finite() && rmax > 0.0) {
            return Err(Error::InvalidConfig(format!("Rmax must be positive, got {rmax}")));
        }
        let policy = OverrunPolicy::new(Span::from_secs_f64(t), ns)?;
        Self::from_policy(&policy, Span::from_secs_f64(rmax))
    }

    /// Builds `H` from an existing [`OverrunPolicy`] and a worst-case
    /// response time.
    ///
    /// # Errors
    ///
    /// Propagates [`overrun_rtsim`] validation errors.
    pub fn from_policy(policy: &OverrunPolicy, rmax: Span) -> Result<Self> {
        let intervals = policy
            .interval_set(rmax)?
            .iter()
            .map(|s| s.as_secs_f64())
            .collect();
        Ok(IntervalSet {
            period: policy.period().as_secs_f64(),
            sensor_period: policy.sensor_period().as_secs_f64(),
            rmax: rmax.as_secs_f64(),
            intervals,
        })
    }

    /// Nominal control period `T` in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Sensor period `Ts = T / Ns` in seconds.
    pub fn sensor_period(&self) -> f64 {
        self.sensor_period
    }

    /// The worst-case response time this set was built for, in seconds.
    pub fn rmax(&self) -> f64 {
        self.rmax
    }

    /// The interval values `h ∈ H` in increasing order, in seconds.
    pub fn intervals(&self) -> &[f64] {
        &self.intervals
    }

    /// Number of intervals (`#H`).
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Always `false`: `H` contains at least `T`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The largest interval `T + Δmax`.
    pub fn max_interval(&self) -> f64 {
        *self.intervals.last().expect("H is never empty")
    }

    /// Index of the mode whose interval matches `h` (to within half a
    /// sensor period), or `None` when `h` is off-grid.
    pub fn index_of(&self, h: f64) -> Option<usize> {
        let tol = self.sensor_period * 0.5;
        self.intervals
            .iter()
            .position(|&v| (v - h).abs() < tol)
    }

    /// Maps a response time (seconds) to the index of the induced interval
    /// `h_k` — the paper's release rule in the `f64` domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a non-positive response or one
    /// exceeding `Rmax` (the design contract `R̃max ≤ Rmax` is violated).
    pub fn mode_for_response(&self, response: f64) -> Result<usize> {
        if !(response.is_finite() && response > 0.0) {
            return Err(Error::InvalidConfig(format!(
                "response time must be positive, got {response}"
            )));
        }
        if response <= self.period {
            return Ok(0);
        }
        if response > self.rmax + 1e-12 {
            return Err(Error::InvalidConfig(format!(
                "response time {response} exceeds the design Rmax {}",
                self.rmax
            )));
        }
        let excess = response - self.period;
        // Relative tolerance: a response lying exactly on the sensor grid
        // must not be pushed to the next-longer interval by one ulp of
        // floating-point noise (the integer-time rule in
        // `overrun_rtsim::OverrunPolicy::next_interval` is exact).
        let ratio = excess / self.sensor_period;
        let i = ((ratio - 1e-9 * ratio.max(1.0)).ceil().max(1.0)) as usize;
        Ok(i.min(self.intervals.len() - 1))
    }

    /// The deployment check of paper Sec. V-B: every interval this set can
    /// produce must be covered by the designed set `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.intervals
            .iter()
            .all(|&h| other.index_of(h).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_configurations_match_paper() {
        // Table I / II grid: T = 10 ms.
        // Rmax = 1.1T, Ts = T/2 ⇒ i_max = ⌈1/5⌉ = 1 ⇒ {10, 15} ms.
        let h = IntervalSet::from_timing(0.010, 0.011, 2).unwrap();
        assert_eq!(h.len(), 2);
        assert!((h.intervals()[1] - 0.015).abs() < 1e-12);
        // Rmax = 1.3T, Ts = T/5 ⇒ i_max = ⌈3/2⌉ = 2 ⇒ {10, 12, 14} ms.
        let h = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
        assert_eq!(h.len(), 3);
        // Rmax = 1.6T, Ts = T/2 ⇒ i_max = ⌈6/5⌉ = 2 ⇒ {10, 15, 20} ms.
        let h = IntervalSet::from_timing(0.010, 0.016, 2).unwrap();
        assert_eq!(h.len(), 3);
        assert!((h.max_interval() - 0.020).abs() < 1e-12);
        // Rmax = 1.6T, Ts = T/5 ⇒ i_max = 3 ⇒ {10, 12, 14, 16} ms.
        let h = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn accessors() {
        let h = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
        assert!((h.period() - 0.010).abs() < 1e-12);
        assert!((h.sensor_period() - 0.002).abs() < 1e-12);
        assert!((h.rmax() - 0.013).abs() < 1e-12);
        assert!(!h.is_empty());
    }

    #[test]
    fn index_of_tolerant_matching() {
        let h = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
        assert_eq!(h.index_of(0.012), Some(1));
        assert_eq!(h.index_of(0.0121), Some(1)); // within Ts/2
        assert_eq!(h.index_of(0.0131), Some(2)); // closer to 14 ms
        assert_eq!(h.index_of(0.5), None);
        assert_eq!(h.index_of(0.005), None);
    }

    #[test]
    fn mode_for_response_rule() {
        let h = IntervalSet::from_timing(0.010, 0.013, 5).unwrap(); // {10,12,14} ms
        assert_eq!(h.mode_for_response(0.004).unwrap(), 0);
        assert_eq!(h.mode_for_response(0.010).unwrap(), 0);
        assert_eq!(h.mode_for_response(0.0105).unwrap(), 1); // → 12 ms
        assert_eq!(h.mode_for_response(0.012).unwrap(), 1);
        assert_eq!(h.mode_for_response(0.0125).unwrap(), 2); // → 14 ms
        assert!(h.mode_for_response(0.014).is_err()); // beyond Rmax
        assert!(h.mode_for_response(0.0).is_err());
    }

    #[test]
    fn subset_deployment_check() {
        let designed = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
        let actual = IntervalSet::from_timing(0.010, 0.013, 5).unwrap();
        assert!(actual.is_subset_of(&designed));
        assert!(!designed.is_subset_of(&actual));
        // Different grids are incompatible.
        let coarse = IntervalSet::from_timing(0.010, 0.016, 2).unwrap();
        assert!(!coarse.is_subset_of(&designed));
    }

    #[test]
    fn invalid_inputs() {
        assert!(IntervalSet::from_timing(0.0, 0.01, 2).is_err());
        assert!(IntervalSet::from_timing(0.01, -1.0, 2).is_err());
        assert!(IntervalSet::from_timing(0.01, 0.013, 0).is_err());
        assert!(IntervalSet::from_timing(f64::NAN, 0.013, 2).is_err());
    }

    #[test]
    fn rmax_below_period_gives_singleton() {
        let h = IntervalSet::from_timing(0.010, 0.005, 2).unwrap();
        assert_eq!(h.len(), 1);
        assert!((h.max_interval() - 0.010).abs() < 1e-12);
    }
}
