//! Discrete-time Lyapunov equation solvers.

use crate::schur::spectral_radius;
use crate::{Error, Matrix, Result};

/// Solves the discrete Lyapunov equation `Aᵀ X A − X + Q = 0` by the
/// squared Smith (doubling) iteration.
///
/// Requires `ρ(A) < 1`; the iteration
/// `X_{k+1} = X_k + A_kᵀ X_k A_k`, `A_{k+1} = A_k²` converges quadratically
/// under that assumption. The result is symmetrised before returning.
///
/// # Errors
///
/// * [`Error::NotSquare`] / [`Error::DimensionMismatch`] on bad shapes.
/// * [`Error::NoConvergence`] when `ρ(A) ≥ 1` (the iterates diverge).
///
/// # Example
///
/// ```
/// use overrun_linalg::{solve_discrete_lyapunov, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::diag(&[0.5, -0.3]);
/// let q = Matrix::identity(2);
/// let x = solve_discrete_lyapunov(&a, &q)?;
/// // residual AᵀXA − X + Q ≈ 0
/// let res = a.transpose() * &x * &a - &x + &q;
/// assert!(res.max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_discrete_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix> {
    check_lyap_shapes(a, q)?;
    let mut x = q.clone();
    let mut ak = a.clone();
    let tol = 1e-15 * q.max_abs().max(1.0);
    for _ in 0..120 {
        let step = ak.transpose().matmul(&x)?.matmul(&ak)?;
        let step_norm = step.max_abs();
        x = x.add_mat(&step)?;
        if !x.is_finite() {
            return Err(Error::NoConvergence {
                algorithm: "smith_lyapunov",
                iterations: 120,
            });
        }
        ak = ak.matmul(&ak)?;
        if step_norm <= tol {
            x.symmetrize();
            return Ok(x);
        }
    }
    Err(Error::NoConvergence {
        algorithm: "smith_lyapunov",
        iterations: 120,
    })
}

/// Solves `Aᵀ X A − X + Q = 0` directly via the Kronecker vectorisation
/// `(I − Aᵀ ⊗ Aᵀ) vec(X) = vec(Q)`.
///
/// Exact (up to the linear solve) for any `A` with no reciprocal eigenvalue
/// pairs, but costs `O(n⁶)` — intended for small matrices and as an oracle
/// to cross-check the Smith iteration in tests.
///
/// # Errors
///
/// * [`Error::NotSquare`] / [`Error::DimensionMismatch`] on bad shapes.
/// * [`Error::Singular`] when `λᵢ λⱼ = 1` for some eigenvalue pair.
pub fn solve_discrete_lyapunov_direct(a: &Matrix, q: &Matrix) -> Result<Matrix> {
    check_lyap_shapes(a, q)?;
    let n = a.rows();
    let at = a.transpose();
    // vec(Aᵀ X A) = (Aᵀ ⊗ Aᵀ) vec(X).
    let kron = at.kron(&at);
    let sys = Matrix::identity(n * n).sub_mat(&kron)?;
    let x_vec = sys.solve(&q.vectorize())?;
    let mut x = Matrix::from_vectorized(&x_vec, n, n)?;
    x.symmetrize();
    Ok(x)
}

fn check_lyap_shapes(a: &Matrix, q: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "lyapunov",
            dims: a.shape(),
        });
    }
    if q.shape() != a.shape() {
        return Err(Error::DimensionMismatch {
            op: "lyapunov",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    Ok(())
}

/// Returns `true` when `a` is Schur stable (`ρ(A) < 1`).
///
/// # Errors
///
/// Propagates eigenvalue-computation errors.
pub fn is_schur_stable(a: &Matrix) -> Result<bool> {
    Ok(spectral_radius(a)? < 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, q: &Matrix, x: &Matrix) -> f64 {
        (a.transpose() * x * a - x + q).max_abs()
    }

    #[test]
    fn smith_scalar_closed_form() {
        // aᵀxa − x + q = 0 ⇒ x = q / (1 − a²)
        let a = Matrix::from_rows(&[&[0.8]]).unwrap();
        let q = Matrix::from_rows(&[&[1.0]]).unwrap();
        let x = solve_discrete_lyapunov(&a, &q).unwrap();
        assert!((x[(0, 0)] - 1.0 / (1.0 - 0.64)).abs() < 1e-12);
    }

    #[test]
    fn smith_matches_direct() {
        let a = Matrix::from_rows(&[&[0.5, 0.2, 0.0], &[-0.1, 0.4, 0.3], &[0.0, -0.2, 0.6]])
            .unwrap();
        let q = Matrix::identity(3);
        let x1 = solve_discrete_lyapunov(&a, &q).unwrap();
        let x2 = solve_discrete_lyapunov_direct(&a, &q).unwrap();
        assert!(x1.approx_eq(&x2, 1e-10, 1e-10));
        assert!(residual(&a, &q, &x1) < 1e-11);
    }

    #[test]
    // This test drives a deliberate overflow to assert the graceful
    // NoConvergence error; under `sanitize` that overflow is (correctly)
    // a poison panic at the producing op, so the test does not apply.
    #[cfg_attr(feature = "sanitize", ignore = "deliberate overflow panics under sanitize")]
    fn smith_diverges_for_unstable() {
        let a = Matrix::diag(&[1.5, 0.5]);
        assert!(matches!(
            solve_discrete_lyapunov(&a, &Matrix::identity(2)),
            Err(Error::NoConvergence { .. })
        ));
    }

    #[test]
    fn direct_solver_singular_case() {
        // a has eigenvalues 2 and 0.5 ⇒ λ₁λ₂ = 1 ⇒ singular Lyapunov operator
        let a = Matrix::diag(&[2.0, 0.5]);
        assert!(matches!(
            solve_discrete_lyapunov_direct(&a, &Matrix::identity(2)),
            Err(Error::Singular)
        ));
    }

    #[test]
    fn solution_is_spd_for_spd_q() {
        let a = Matrix::from_rows(&[&[0.3, 0.5], &[-0.5, 0.3]]).unwrap();
        let q = Matrix::identity(2);
        let x = solve_discrete_lyapunov(&a, &q).unwrap();
        assert!(crate::cholesky::is_spd(&x));
        // Lyapunov solution dominates Q for a stable A: X ≥ Q
        assert!(crate::cholesky::is_spd(&(&x - &q + Matrix::identity(2) * 1e-12)));
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::identity(2);
        assert!(solve_discrete_lyapunov(&a, &Matrix::identity(3)).is_err());
        assert!(solve_discrete_lyapunov(&Matrix::zeros(2, 3), &a).is_err());
        assert!(solve_discrete_lyapunov_direct(&Matrix::zeros(2, 3), &a).is_err());
    }

    #[test]
    fn is_schur_stable_works() {
        assert!(is_schur_stable(&Matrix::diag(&[0.9, -0.9])).unwrap());
        assert!(!is_schur_stable(&Matrix::diag(&[1.1, 0.0])).unwrap());
    }
}
