//! Criterion benchmarks for the parallel execution layer (`overrun-par`):
//! Monte Carlo `J_w` evaluation and the Gripenberg JSR certificate at
//! 1, 2 and 4 worker threads.
//!
//! Results are bit-identical across thread counts by construction (see the
//! `par_determinism` integration test); this bench measures only the
//! wall-clock scaling. On a single-core container all thread counts
//! collapse to roughly the serial time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_jsr::{gripenberg, GripenbergOptions, MatrixSet};
use overrun_linalg::Matrix;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_monte_carlo(c: &mut Criterion) {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).expect("grid");
    let table = pi::design_adaptive(&plant, &hset).expect("design");
    let sim = ClosedLoopSim::new(&plant, &table).expect("sim");
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    let opts = WorstCaseOptions {
        num_sequences: 500,
        jobs_per_sequence: 50,
        seed: 2021,
        rmin_fraction: 0.05,
    };
    let mut group = c.benchmark_group("monte_carlo_jw");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &t| {
                overrun_par::set_thread_override(Some(t));
                b.iter(|| evaluate_worst_case(&sim, &scenario, &opts).expect("report"));
            },
        );
    }
    overrun_par::set_thread_override(None);
    group.finish();
}

fn bench_gripenberg_scaling(c: &mut Criterion) {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 2).expect("grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    let meas = lifted::measurement_matrix(&plant, &table).expect("measurement");
    let set = MatrixSet::new(lifted::build_omega_set(&plant, &table, &meas).expect("omegas"))
        .expect("matrix set");
    let opts = GripenbergOptions {
        max_depth: 10,
        ..Default::default()
    };
    let mut group = c.benchmark_group("gripenberg_jsr");
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &t| {
                overrun_par::set_thread_override(Some(t));
                b.iter(|| gripenberg(&set, &opts).expect("bounds"));
            },
        );
    }
    overrun_par::set_thread_override(None);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_monte_carlo, bench_gripenberg_scaling
}
criterion_main!(benches);
