//! Stochastic execution-time models.

use rand::Rng;

use crate::{Error, Result, Span};

/// Per-job execution-time model of a task.
///
/// The paper deliberately avoids assuming a stochastic characterisation of
/// the *response* time; these models live one level below — they describe
/// the *execution demand* a job places on the processor, from which the
/// scheduler derives response times. The [`ExecutionModel::Bimodal`] variant
/// captures the paper's motivating scenario: a nominal mode that fits the
/// period comfortably, plus a rare heavy mode (data-dependent path, cache
/// storm, interrupt burst) that triggers an overrun.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecutionModel {
    /// Every job takes exactly this long.
    Constant(Span),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Best-case execution time.
        min: Span,
        /// Worst-case execution time.
        max: Span,
    },
    /// With probability `heavy_prob` the job takes a value uniform in
    /// `[heavy_min, heavy_max]`, otherwise uniform in `[min, max]` — the
    /// "sporadic overrun" demand profile.
    Bimodal {
        /// Nominal best case.
        min: Span,
        /// Nominal worst case.
        max: Span,
        /// Heavy-mode best case.
        heavy_min: Span,
        /// Heavy-mode worst case (the true WCET).
        heavy_max: Span,
        /// Probability of the heavy mode, in `[0, 1]`.
        heavy_prob: f64,
    },
}

impl ExecutionModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for empty ranges, a zero WCET, an
    /// out-of-range probability, or a heavy range below the nominal range.
    pub fn validate(&self) -> Result<()> {
        match self {
            ExecutionModel::Constant(c) => {
                if c.is_zero() {
                    return Err(Error::InvalidConfig("constant execution time is zero".into()));
                }
            }
            ExecutionModel::Uniform { min, max } => {
                if min > max {
                    return Err(Error::InvalidConfig(format!(
                        "uniform range inverted: {min} > {max}"
                    )));
                }
                if min.is_zero() {
                    // A zero-demand job would complete with response time
                    // zero, which the overrun release policy rejects.
                    return Err(Error::InvalidConfig("uniform BCET is zero".into()));
                }
            }
            ExecutionModel::Bimodal {
                min,
                max,
                heavy_min,
                heavy_max,
                heavy_prob,
            } => {
                if min > max || heavy_min > heavy_max {
                    return Err(Error::InvalidConfig("bimodal range inverted".into()));
                }
                if min.is_zero() {
                    return Err(Error::InvalidConfig("bimodal BCET is zero".into()));
                }
                if max > heavy_min {
                    return Err(Error::InvalidConfig(
                        "bimodal heavy range must lie above the nominal range".into(),
                    ));
                }
                if !(0.0..=1.0).contains(heavy_prob) {
                    return Err(Error::InvalidConfig(format!(
                        "heavy probability {heavy_prob} outside [0, 1]"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Worst-case execution time implied by the model.
    pub fn wcet(&self) -> Span {
        match self {
            ExecutionModel::Constant(c) => *c,
            ExecutionModel::Uniform { max, .. } => *max,
            ExecutionModel::Bimodal { heavy_max, .. } => *heavy_max,
        }
    }

    /// Best-case execution time implied by the model.
    pub fn bcet(&self) -> Span {
        match self {
            ExecutionModel::Constant(c) => *c,
            ExecutionModel::Uniform { min, .. } => *min,
            ExecutionModel::Bimodal { min, .. } => *min,
        }
    }

    /// Draws one job's execution time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Span {
        match self {
            ExecutionModel::Constant(c) => *c,
            ExecutionModel::Uniform { min, max } => sample_uniform(rng, *min, *max),
            ExecutionModel::Bimodal {
                min,
                max,
                heavy_min,
                heavy_max,
                heavy_prob,
            } => {
                if rng.gen_bool(*heavy_prob) {
                    sample_uniform(rng, *heavy_min, *heavy_max)
                } else {
                    sample_uniform(rng, *min, *max)
                }
            }
        }
    }
}

fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, min: Span, max: Span) -> Span {
    if min == max {
        return min;
    }
    Span::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn constant_model() {
        let m = ExecutionModel::Constant(Span::from_millis(3));
        m.validate().unwrap();
        assert_eq!(m.wcet(), Span::from_millis(3));
        assert_eq!(m.bcet(), Span::from_millis(3));
        assert_eq!(m.sample(&mut rng()), Span::from_millis(3));
    }

    #[test]
    fn uniform_model_within_range() {
        let m = ExecutionModel::Uniform {
            min: Span::from_millis(2),
            max: Span::from_millis(5),
        };
        m.validate().unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= Span::from_millis(2) && s <= Span::from_millis(5));
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let m = ExecutionModel::Bimodal {
            min: Span::from_millis(1),
            max: Span::from_millis(2),
            heavy_min: Span::from_millis(8),
            heavy_max: Span::from_millis(9),
            heavy_prob: 0.3,
        };
        m.validate().unwrap();
        assert_eq!(m.wcet(), Span::from_millis(9));
        assert_eq!(m.bcet(), Span::from_millis(1));
        let mut r = rng();
        let mut heavy = 0usize;
        let n = 5000;
        for _ in 0..n {
            let s = m.sample(&mut r);
            if s >= Span::from_millis(8) {
                heavy += 1;
            } else {
                assert!(s <= Span::from_millis(2));
            }
        }
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "heavy fraction {frac}");
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(ExecutionModel::Constant(Span::ZERO).validate().is_err());
        assert!(ExecutionModel::Uniform {
            min: Span::from_millis(5),
            max: Span::from_millis(2),
        }
        .validate()
        .is_err());
        assert!(ExecutionModel::Bimodal {
            min: Span::from_millis(1),
            max: Span::from_millis(4),
            heavy_min: Span::from_millis(3), // overlaps nominal
            heavy_max: Span::from_millis(9),
            heavy_prob: 0.1,
        }
        .validate()
        .is_err());
        assert!(ExecutionModel::Bimodal {
            min: Span::from_millis(1),
            max: Span::from_millis(2),
            heavy_min: Span::from_millis(3),
            heavy_max: Span::from_millis(9),
            heavy_prob: 1.5,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let m = ExecutionModel::Uniform {
            min: Span::from_millis(1),
            max: Span::from_millis(9),
        };
        let a: Vec<Span> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut r)).collect()
        };
        let b: Vec<Span> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..50).map(|_| m.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
