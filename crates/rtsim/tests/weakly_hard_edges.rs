//! Degenerate-window coverage for the weakly-hard machinery: `m = 0`,
//! `m = K`, `K = 1`, windows longer than the observed sequence, and empty
//! patterns — plus a property oracle pinning `empirical_contract` to its
//! definition ("the tightest satisfiable `m`") on random overrun patterns.

use overrun_rtsim::{
    empirical_contract, max_overruns_in_window, OverrunPolicy, ReleaseTrace, Span, WeaklyHard,
};
use proptest::prelude::*;

/// Builds a release trace whose per-job overrun flags equal `pattern`
/// (response 12 ms > T = 10 ms overruns; 5 ms does not).
fn trace_from_pattern(pattern: &[bool]) -> ReleaseTrace {
    let policy = OverrunPolicy::new(Span::from_millis(10), 5).unwrap();
    let responses: Vec<Span> = pattern
        .iter()
        .map(|&over| {
            if over {
                Span::from_millis(12)
            } else {
                Span::from_millis(5)
            }
        })
        .collect();
    let trace = policy.apply(&responses).unwrap();
    let flags: Vec<bool> = trace.jobs.iter().map(|j| j.overran).collect();
    assert_eq!(flags, pattern, "pattern must survive the policy round-trip");
    trace
}

/// `(K, K)` tolerates anything: every window of `K` jobs holds at most `K`
/// overruns by counting alone.
#[test]
fn m_equals_k_is_always_satisfied() {
    for k in 1..=4u32 {
        let wh = WeaklyHard::new(k, k);
        assert!(wh.is_satisfied_by(&[true; 8]));
        assert!(wh.is_satisfied_by(&[false; 8]));
        assert!(wh.is_satisfied_by(&[]));
    }
}

/// `(0, K)` forbids *any* overrun, anywhere — including in a pattern
/// shorter than the window.
#[test]
fn m_zero_forbids_every_overrun() {
    let wh = WeaklyHard::new(0, 3);
    assert!(wh.is_satisfied_by(&[false; 10]));
    assert!(!wh.is_satisfied_by(&[false, false, false, false, true]));
    // Shorter than the window: a single overrun still violates (0, 3).
    assert!(!wh.is_satisfied_by(&[true]));
    assert!(wh.is_satisfied_by(&[]));
}

/// `K = 1` windows degenerate to per-job checks: `(0, 1)` forbids all
/// overruns, `(1, 1)` allows all.
#[test]
fn window_of_one() {
    assert!(!WeaklyHard::new(0, 1).is_satisfied_by(&[false, true]));
    assert!(WeaklyHard::new(1, 1).is_satisfied_by(&[true, true, true]));
    let t = trace_from_pattern(&[true, false, true]);
    assert_eq!(max_overruns_in_window(&t, 1), 1);
}

/// A window longer than the observed sequence counts the whole sequence:
/// the partial window is the only evidence there is, and any completion of
/// it can only add overruns.
#[test]
fn window_longer_than_sequence() {
    let t = trace_from_pattern(&[true, false, true]);
    // Window of 10 over 3 jobs: both overruns land in one window.
    assert_eq!(max_overruns_in_window(&t, 10), 2);
    assert_eq!(empirical_contract(&t, 10), WeaklyHard::new(2, 10));
    // Satisfaction agrees on the short pattern.
    assert!(WeaklyHard::new(2, 10).is_satisfied_by(&[true, false, true]));
    assert!(!WeaklyHard::new(1, 10).is_satisfied_by(&[true, false, true]));
}

/// The empty trace satisfies everything and yields the zero contract.
#[test]
fn empty_trace() {
    let t = trace_from_pattern(&[]);
    assert_eq!(max_overruns_in_window(&t, 5), 0);
    assert_eq!(empirical_contract(&t, 5), WeaklyHard::new(0, 5));
    assert!(WeaklyHard::new(0, 5).is_satisfied_by(&[]));
}

/// An all-overrun trace shorter than the window produces a contract whose
/// `m` stays below the sequence length, not the window length.
#[test]
fn saturated_short_trace() {
    let t = trace_from_pattern(&[true, true, true]);
    assert_eq!(max_overruns_in_window(&t, 7), 3);
    let wh = empirical_contract(&t, 7);
    assert_eq!(wh, WeaklyHard::new(3, 7));
    assert!(wh.is_satisfied_by(&[true, true, true]));
}

/// Random overrun patterns as bit vectors (the vendored proptest has no
/// `bool` strategy; a 0/1 integer vector maps onto one).
fn overrun_pattern() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(0u32..2, 0..24).prop_map(|v| v.into_iter().map(|x| x == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `empirical_contract` really is the *tightest* satisfiable contract:
    /// the trace satisfies `(m, K)` and, whenever `m > 0`, violates
    /// `(m - 1, K)` — for any window, including degenerate ones.
    #[test]
    fn empirical_contract_is_tight_oracle(
        pattern in overrun_pattern(),
        k in 1..12u32,
    ) {
        let t = trace_from_pattern(&pattern);
        let wh = empirical_contract(&t, k);
        prop_assert_eq!(wh.k, k);
        prop_assert!(wh.is_satisfied_by(&pattern),
            "contract {} not satisfied by its own trace", wh);
        if wh.m > 0 {
            prop_assert!(
                !WeaklyHard::new(wh.m - 1, k).is_satisfied_by(&pattern),
                "contract {} is not tight", wh
            );
        }
    }

    /// Shrinking the window only relaxes the constraint: every window of
    /// `k' ≤ k` jobs sits inside a window of `k` jobs, so satisfaction at
    /// `(m, k)` implies satisfaction at `(m, k')`.
    #[test]
    fn satisfaction_is_monotone_in_window(
        pattern in overrun_pattern(),
        m in 0..4u32,
        k in 1..12u32,
    ) {
        let m = m.min(k);
        if WeaklyHard::new(m, k).is_satisfied_by(&pattern) {
            for smaller in 1..k {
                if m <= smaller {
                    prop_assert!(
                        WeaklyHard::new(m, smaller).is_satisfied_by(&pattern),
                        "satisfied at K = {k} but not at K = {smaller}"
                    );
                }
            }
        }
    }

    /// The window maximum is consistent with brute-force window counting.
    #[test]
    fn window_maximum_matches_bruteforce(
        pattern in overrun_pattern(),
        k in 1..12u32,
    ) {
        let t = trace_from_pattern(&pattern);
        let got = max_overruns_in_window(&t, k);
        let ku = (k as usize).min(pattern.len());
        let brute = if pattern.is_empty() || ku == 0 {
            0
        } else {
            pattern
                .windows(ku)
                .map(|w| w.iter().filter(|&&o| o).count())
                .max()
                .unwrap_or(0)
        };
        prop_assert_eq!(got as usize, brute,
            "window max mismatch for pattern {:?}, k = {}", pattern, k);
    }
}
