//! Task model for the fixed-priority platform.

use rand::Rng;

use crate::{Error, ExecutionModel, Result, Span};

/// Opaque identifier of a task inside a [`crate::Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Index of the task in its task set (creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Release pattern of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrivalModel {
    /// Strictly periodic releases.
    Periodic,
    /// Periodic releases delayed by a per-job random jitter uniform in
    /// `[0, jitter]` (release jitter never moves a release earlier, so the
    /// RTA bound with the jitter term stays valid).
    Jittered {
        /// Maximum release jitter.
        jitter: Span,
    },
    /// Sporadic releases: consecutive releases separated by the *minimum*
    /// inter-arrival time (the task period) plus a random slack uniform in
    /// `[0, max_slack]`. The period acts as the minimum inter-arrival time
    /// of the classic sporadic model, so periodic RTA remains a safe bound.
    Sporadic {
        /// Maximum extra separation beyond the minimum inter-arrival time.
        max_slack: Span,
    },
}

/// A recurrent task on the shared platform.
///
/// Priorities follow the usual real-time convention: **lower number = higher
/// priority**. The control task under study is typically *not* the highest
/// priority task — that is precisely how it accumulates interference and
/// sporadically overruns.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Human-readable name (used in error messages and traces).
    pub name: String,
    /// Activation period (minimum inter-arrival time for sporadic tasks).
    pub period: Span,
    /// Release offset of the first job.
    pub offset: Span,
    /// Fixed priority; lower value preempts higher value.
    pub priority: u32,
    /// Execution-time model sampled per job.
    pub execution: ExecutionModel,
    /// Release pattern.
    pub arrival: ArrivalModel,
}

impl Task {
    /// Creates a periodic task with zero offset.
    pub fn new(
        name: impl Into<String>,
        period: Span,
        priority: u32,
        execution: ExecutionModel,
    ) -> Self {
        Task {
            name: name.into(),
            period,
            offset: Span::ZERO,
            priority,
            execution,
            arrival: ArrivalModel::Periodic,
        }
    }

    /// Builder-style setter for the release offset.
    #[must_use]
    pub fn with_offset(mut self, offset: Span) -> Self {
        self.offset = offset;
        self
    }

    /// Builder-style setter for the arrival model.
    #[must_use]
    pub fn with_arrival(mut self, arrival: ArrivalModel) -> Self {
        self.arrival = arrival;
        self
    }

    /// Draws the separation between one nominal release and the next
    /// according to the arrival model.
    pub(crate) fn next_separation<R: Rng + ?Sized>(&self, rng: &mut R) -> Span {
        match self.arrival {
            ArrivalModel::Periodic | ArrivalModel::Jittered { .. } => self.period,
            ArrivalModel::Sporadic { max_slack } => {
                if max_slack.is_zero() {
                    self.period
                } else {
                    self.period
                        + Span::from_nanos(rng.gen_range(0..=max_slack.as_nanos()))
                }
            }
        }
    }

    /// Draws the release jitter added on top of the nominal release.
    pub(crate) fn release_jitter<R: Rng + ?Sized>(&self, rng: &mut R) -> Span {
        match self.arrival {
            ArrivalModel::Jittered { jitter } if !jitter.is_zero() => {
                Span::from_nanos(rng.gen_range(0..=jitter.as_nanos()))
            }
            _ => Span::ZERO,
        }
    }

    /// Validates the task parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero period or an invalid
    /// execution model.
    pub fn validate(&self) -> Result<()> {
        if self.period.is_zero() {
            return Err(Error::InvalidConfig(format!(
                "task `{}` has zero period",
                self.name
            )));
        }
        self.execution.validate()
    }

    /// Worst-case utilisation `C_max / T`.
    pub fn utilization(&self) -> f64 {
        self.execution.wcet().as_secs_f64() / self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let t = Task::new(
            "ctl",
            Span::from_millis(10),
            2,
            ExecutionModel::Constant(Span::from_millis(4)),
        )
        .with_offset(Span::from_millis(1));
        t.validate().unwrap();
        assert_eq!(t.offset, Span::from_millis(1));
        assert!((t.utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_period_rejected() {
        let t = Task::new(
            "bad",
            Span::ZERO,
            1,
            ExecutionModel::Constant(Span::from_millis(1)),
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "task#3");
        assert_eq!(TaskId(3).index(), 3);
    }
}
