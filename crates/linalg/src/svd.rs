//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi is slower than Golub–Kahan bidiagonalisation but
//! simpler and exceptionally accurate (it computes small singular values to
//! high relative accuracy), which matters for the rank decisions behind
//! controllability / observability tests.

use crate::{Error, Matrix, Result};

/// A thin singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m × n` input with `m ≥ n`: `U` is `m × n` with orthonormal
/// columns, `Σ = diag(σ₁ ≥ … ≥ σₙ ≥ 0)` and `V` is `n × n` orthogonal.
/// Wide matrices are handled by transposition.
///
/// # Example
///
/// ```
/// use overrun_linalg::{Matrix, Svd};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]])?;
/// let svd = Svd::new(&a)?;
/// assert!((svd.singular_values()[0] - 4.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
    /// `true` when the factorisation was computed on `Aᵀ` (wide input).
    transposed: bool,
}

impl Svd {
    /// Computes the SVD of any real matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] for an empty matrix and
    /// [`Error::NoConvergence`] if the Jacobi sweeps fail to converge
    /// (does not occur for finite input within the generous sweep budget).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(Error::InvalidData("svd of an empty matrix".into()));
        }
        if !a.is_finite() {
            return Err(Error::InvalidData(
                "svd of a matrix with non-finite entries".into(),
            ));
        }
        let transposed = a.rows() < a.cols();
        let work = if transposed { a.transpose() } else { a.clone() };
        // Prescale so the Jacobi sums of squares stay in range for entries
        // near the representable extremes; singular values scale linearly.
        let scale = work.max_abs();
        if scale == 0.0 {
            let n = work.cols();
            return Ok(Svd {
                u: Matrix::zeros(work.rows(), n),
                sigma: vec![0.0; n],
                v: Matrix::identity(n),
                transposed,
            });
        }
        let (u, mut sigma, v) = one_sided_jacobi(work.scale(1.0 / scale))?;
        for s in &mut sigma {
            *s *= scale;
        }
        Ok(Svd {
            u,
            sigma,
            v,
            transposed,
        })
    }

    /// Singular values in non-increasing order.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// The left factor of the *original* matrix (accounting for internal
    /// transposition).
    pub fn u(&self) -> &Matrix {
        if self.transposed {
            &self.v
        } else {
            &self.u
        }
    }

    /// The right factor of the *original* matrix.
    pub fn v(&self) -> &Matrix {
        if self.transposed {
            &self.u
        } else {
            &self.v
        }
    }

    /// Numerical rank with tolerance `max(m, n) · ε · σ₁` (the LAPACK
    /// convention), or with an explicit tolerance.
    pub fn rank(&self, tol: Option<f64>) -> usize {
        let sigma_max = self.sigma.first().copied().unwrap_or(0.0);
        let dims = self.u.rows().max(self.v.rows());
        let tol = tol.unwrap_or(dims as f64 * f64::EPSILON * sigma_max);
        self.sigma.iter().filter(|s| **s > tol).count()
    }

    /// 2-norm condition number `σ₁ / σₙ` (`∞` for singular matrices).
    pub fn condition_number(&self) -> f64 {
        let first = self.sigma.first().copied().unwrap_or(0.0);
        let last = self.sigma.last().copied().unwrap_or(0.0);
        if last == 0.0 {
            f64::INFINITY
        } else {
            first / last
        }
    }

    /// Moore–Penrose pseudo-inverse `A⁺ = V Σ⁺ Uᵀ` (singular values below
    /// the rank tolerance are dropped).
    ///
    /// # Errors
    ///
    /// Propagates matrix-multiplication failures.
    pub fn pseudo_inverse(&self) -> Result<Matrix> {
        let rank = self.rank(None);
        let u = self.u();
        let v = self.v();
        // A⁺ = Σ over the first `rank` triples of v_j σ_j⁻¹ u_jᵀ.
        let mut out = Matrix::zeros(v.rows(), u.rows());
        for j in 0..rank {
            let inv_s = 1.0 / self.sigma[j];
            for i in 0..v.rows() {
                let vij = v[(i, j)] * inv_s;
                if vij == 0.0 {
                    continue;
                }
                for k in 0..u.rows() {
                    out[(i, k)] += vij * u[(k, j)];
                }
            }
        }
        Ok(out)
    }
}

/// One-sided Jacobi on a tall matrix (`m ≥ n`): returns `(U, σ, V)` with
/// singular values sorted in non-increasing order.
fn one_sided_jacobi(mut u: Matrix) -> Result<(Matrix, Vec<f64>, Matrix)> {
    let m = u.rows();
    let n = u.cols();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    let max_sweeps = 60;
    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0_f64;
                let mut beta = 0.0_f64;
                let mut gamma = 0.0_f64;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    alpha += up * up;
                    beta += uq * uq;
                    gamma += up * uq;
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence {
            algorithm: "one_sided_jacobi_svd",
            iterations: max_sweeps,
        });
    }

    // Column norms are the singular values; normalise U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0_f64; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        let norm: f64 = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
        *s = norm;
    }
    order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).unwrap_or(std::cmp::Ordering::Equal));

    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut sigma_sorted = vec![0.0_f64; n];
    for (dst, &src) in order.iter().enumerate() {
        sigma_sorted[dst] = sigma[src];
        let inv = if sigma[src] > 0.0 { 1.0 / sigma[src] } else { 0.0 };
        for i in 0..m {
            u_sorted[(i, dst)] = u[(i, src)] * inv;
        }
        for i in 0..n {
            v_sorted[(i, dst)] = v[(i, src)];
        }
    }
    Ok((u_sorted, sigma_sorted, v_sorted))
}

/// Numerical rank of any matrix via SVD with the LAPACK-style tolerance.
///
/// # Errors
///
/// Propagates [`Svd::new`] failures.
pub fn rank(a: &Matrix) -> Result<usize> {
    Ok(Svd::new(a)?.rank(None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{norm_2, norm_fro};

    fn reconstruct(svd: &Svd, m: usize, n: usize) -> Matrix {
        let u = svd.u();
        let v = svd.v();
        let mut out = Matrix::zeros(m, n);
        for j in 0..svd.singular_values().len() {
            let s = svd.singular_values()[j];
            for i in 0..m {
                for k in 0..n {
                    out[(i, k)] += s * u[(i, j)] * v[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::diag(&[3.0, -5.0, 1.0]);
        let svd = Svd::new(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 5.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[5.0, 6.0],
        ])
        .unwrap();
        let svd = Svd::new(&a).unwrap();
        let back = reconstruct(&svd, 3, 2);
        assert!(back.approx_eq(&a, 1e-10, 1e-10), "{back:?}");
    }

    #[test]
    fn reconstruction_wide() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        let back = reconstruct(&svd, 2, 3);
        assert!(back.approx_eq(&a, 1e-10, 1e-10));
    }

    #[test]
    fn orthonormal_factors() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 5) % 11) as f64 - 5.0);
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u().transpose() * svd.u();
        assert!(utu.approx_eq(&Matrix::identity(3), 1e-10, 1e-10));
        let vtv = svd.v().transpose() * svd.v();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10, 1e-10));
    }

    #[test]
    fn largest_singular_value_is_2_norm() {
        let a = Matrix::from_rows(&[&[0.9, 5.0], &[0.0, 0.8]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values()[0] - norm_2(&a)).abs() < 1e-9);
    }

    #[test]
    fn rank_detection() {
        // Rank-1 outer product.
        let u = Matrix::col_vec(&[1.0, 2.0, 3.0]);
        let v = Matrix::row_vec(&[4.0, 5.0]);
        let a = &u * &v;
        assert_eq!(rank(&a).unwrap(), 1);
        assert_eq!(rank(&Matrix::identity(4)).unwrap(), 4);
        assert_eq!(rank(&Matrix::zeros(3, 3)).unwrap(), 0);
    }

    #[test]
    fn condition_number() {
        let a = Matrix::diag(&[10.0, 0.1]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.condition_number() - 100.0).abs() < 1e-9);
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(Svd::new(&singular).unwrap().condition_number() > 1e12);
    }

    #[test]
    fn pseudo_inverse_properties() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let pinv = Svd::new(&a).unwrap().pseudo_inverse().unwrap();
        assert_eq!(pinv.shape(), (2, 3));
        // A A⁺ A = A
        let back = &a * &pinv * &a;
        assert!(back.approx_eq(&a, 1e-9, 1e-9));
        // A⁺ A = I (full column rank)
        let ata = &pinv * &a;
        assert!(ata.approx_eq(&Matrix::identity(2), 1e-9, 1e-9));
    }

    #[test]
    fn pseudo_inverse_of_invertible_matches_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let pinv = Svd::new(&a).unwrap().pseudo_inverse().unwrap();
        let inv = a.inverse().unwrap();
        assert!(pinv.approx_eq(&inv, 1e-10, 1e-10));
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(Svd::new(&Matrix::zeros(0, 0)).is_err());
        let mut bad = Matrix::identity(2);
        bad[(0, 0)] = f64::NAN;
        assert!(Svd::new(&bad).is_err());
    }

    #[test]
    fn tiny_singular_values_resolved() {
        // Relative accuracy on a graded matrix.
        let a = Matrix::diag(&[1.0, 1e-8, 1e-15]);
        let svd = Svd::new(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[1] - 1e-8).abs() < 1e-20_f64.max(1e-14 * 1e-8));
        assert!((s[2] - 1e-15).abs() < 1e-22);
        // Norm check: Frobenius norm equals sqrt of sum of squares.
        let fro: f64 = s.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((fro - norm_fro(&a)).abs() < 1e-12);
    }
}

#[cfg(test)]
mod extreme_scale_tests {
    use super::*;

    #[test]
    fn tiny_magnitude_full_rank_detected() {
        let svd = Svd::new(&Matrix::diag(&[3e-180, 1e-180])).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 3e-180).abs() < 1e-10 * 3e-180, "{s:?}");
        assert!((s[1] - 1e-180).abs() < 1e-10 * 1e-180, "{s:?}");
        assert_eq!(svd.rank(None), 2);
    }

    #[test]
    fn huge_magnitude_finite_singular_values() {
        let svd = Svd::new(&Matrix::diag(&[3e160, 1e160])).unwrap();
        let s = svd.singular_values();
        assert!(s.iter().all(|v| v.is_finite()), "{s:?}");
        assert!((s[0] - 3e160).abs() < 1e-9 * 3e160);
        assert_eq!(svd.rank(None), 2);
    }
}
