//! Sanitizer integration test: poison injected through the JSR pipeline
//! must be reported **at the op that produced it**, not downstream.
//!
//! The injection vector is overflow in the power-lift of
//! [`overrun_jsr::refined_bounds`]: lifted products are built
//! *unnormalised* (`a.matmul(p)`), so a set whose entries are finite but
//! huge (`1e100`) overflows to `Inf` at lift level 4 inside that matmul.
//! Every other stage is overflow-safe by construction — `MatrixSet::new`
//! rejects non-finite inputs, the Gripenberg search normalises products
//! in log space, and `norm_2` prescales by the Frobenius norm — which is
//! exactly why a poisoned *intermediate* is so easy to miss without the
//! sanitizer: without `--features sanitize` the `Inf` surfaces one full
//! stage later, as an `InvalidSet` error from the next `MatrixSet::new`.

#![cfg(feature = "sanitize")]

use overrun_jsr::{refined_bounds, MatrixSet, RefineOptions};
use overrun_linalg::Matrix;

/// Huge-but-finite singleton set: `A = [1e100]`, so `A^4 = 1e400 = Inf`.
fn huge_singleton() -> MatrixSet {
    let a = Matrix::from_rows(&[&[1e100]]).expect("1x1 matrix");
    MatrixSet::new(vec![a]).expect("finite set is valid")
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[test]
fn poison_reported_at_the_producing_op() {
    let set = huge_singleton();
    let opts = RefineOptions {
        max_power: 4,
        decision_threshold: None, // run all levels; don't stop at LB >= 1
        ..RefineOptions::default()
    };
    let result = std::panic::catch_unwind(|| refined_bounds(&set, &opts));
    let err = result.expect_err("the lift to level 4 overflows: sanitize must panic");
    let msg = panic_message(err);
    assert!(msg.contains("[sanitize]"), "not a sanitizer report: {msg}");
    // The overflow happens inside the lift's matrix product, and the
    // report must blame that op as the *producer* (inputs were clean),
    // not merely observe poison arriving somewhere downstream.
    assert!(msg.contains("matmul_add_into"), "wrong op blamed: {msg}");
    assert!(msg.contains("produced"), "must be a producer report: {msg}");
}

#[test]
fn clean_early_decision_does_not_trip_the_sanitizer() {
    // Same poisonous input, but the default decision threshold stops the
    // refinement at level 1 (LB = 1e100 >= 1 certifies instability), so
    // the overflowing lift never runs and the sanitizer stays silent.
    let set = huge_singleton();
    let opts = RefineOptions {
        max_power: 4,
        ..RefineOptions::default()
    };
    let bounds = refined_bounds(&set, &opts).expect("level-1 decision is finite");
    assert!(bounds.lower >= 1.0);
}
