//! Timeline rendering (reproduces Figure 1 of the paper).

use crate::{ReleaseTrace, Result, ScheduleTrace, Task};

/// Options for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Characters per sensor period `Ts` (horizontal resolution).
    pub cols_per_sensor_tick: usize,
    /// Maximum number of jobs rendered.
    pub max_jobs: usize,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            cols_per_sensor_tick: 3,
            max_jobs: 12,
        }
    }
}

/// Renders an ASCII timeline of a control-job trace in the style of the
/// paper's Figure 1: a `sensing` row with the oversampled grid, a
/// `computing` row with job executions (`#` = running, `.` = waiting past an
/// overrun), and a `releases` row marking the release instants.
///
/// # Errors
///
/// Propagates invariant violations from [`ReleaseTrace::check_invariants`].
///
/// # Example
///
/// ```
/// use overrun_rtsim::{render_timeline, OverrunPolicy, Span, TimelineOptions};
///
/// # fn main() -> Result<(), overrun_rtsim::Error> {
/// let policy = OverrunPolicy::new(Span::from_millis(8), 8)?;
/// let trace = policy.apply(&[
///     Span::from_millis(6),
///     Span::from_micros(9_500), // overrun
///     Span::from_millis(7),
/// ])?;
/// let art = render_timeline(&trace, &TimelineOptions::default())?;
/// assert!(art.contains("sensing"));
/// assert!(art.contains("computing"));
/// # Ok(())
/// # }
/// ```
pub fn render_timeline(trace: &ReleaseTrace, opts: &TimelineOptions) -> Result<String> {
    trace.check_invariants()?;
    let jobs = &trace.jobs[..trace.jobs.len().min(opts.max_jobs)];
    if jobs.is_empty() {
        return Ok(String::from("(empty trace)\n"));
    }
    let ts: crate::Span = trace.sensor_period;
    let cols_per_tick = opts.cols_per_sensor_tick.max(1);
    let end = jobs
        .iter()
        .map(|j| (j.release + j.interval).as_nanos().max(j.finish.as_nanos()))
        .max()
        .expect("non-empty");
    let total_ticks = (end.div_ceil(ts.as_nanos())) as usize + 1;
    let width = total_ticks * cols_per_tick + 1;

    let col_of = |ns: u64| -> usize {
        ((ns as u128 * cols_per_tick as u128) / ts.as_nanos() as u128) as usize
    };

    let mut sensing = vec![b' '; width];
    for t in 0..total_ticks {
        sensing[t * cols_per_tick] = b'|';
    }

    let mut computing = vec![b' '; width];
    let mut releases = vec![b' '; width];
    for job in jobs {
        let rel = col_of(job.release.as_nanos());
        let fin = col_of(job.finish.as_nanos());
        releases[rel.min(width - 1)] = b'^';
        for c in computing.iter_mut().take(fin.min(width - 1) + 1).skip(rel) {
            *c = b'#';
        }
        // Waiting gap after an overrun: finish .. next release.
        if job.overran {
            let next_rel = col_of((job.release + job.interval).as_nanos());
            for c in computing
                .iter_mut()
                .take(next_rel.min(width - 1))
                .skip(fin + 1)
            {
                *c = b'.';
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "T = {}, Ts = {} (Ns = {}), {} jobs, {} overruns\n",
        trace.period,
        ts,
        trace
            .period
            .checked_div_exact(ts)
            .unwrap_or_default(),
        jobs.len(),
        jobs.iter().filter(|j| j.overran).count(),
    ));
    out.push_str("sensing   ");
    out.push_str(std::str::from_utf8(&sensing).expect("ascii"));
    out.push('\n');
    out.push_str("computing ");
    out.push_str(std::str::from_utf8(&computing).expect("ascii"));
    out.push('\n');
    out.push_str("releases  ");
    out.push_str(std::str::from_utf8(&releases).expect("ascii"));
    out.push('\n');
    Ok(out)
}

/// Serialises a trace as CSV (`job,release_s,finish_s,response_s,h_s,delta_s,overrun`).
pub fn trace_to_csv(trace: &ReleaseTrace) -> String {
    let mut out = String::from("job,release_s,finish_s,response_s,h_s,delta_s,overrun\n");
    for j in &trace.jobs {
        out.push_str(&format!(
            "{},{:.9},{:.9},{:.9},{:.9},{:.9},{}\n",
            j.index,
            j.release.as_secs_f64(),
            j.finish.as_secs_f64(),
            j.response.as_secs_f64(),
            j.interval.as_secs_f64(),
            j.delta.as_secs_f64(),
            j.overran as u8,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OverrunPolicy, Span};

    fn example_trace() -> ReleaseTrace {
        let policy = OverrunPolicy::new(Span::from_millis(8), 8).unwrap();
        policy
            .apply(&[
                Span::from_millis(6),
                Span::from_micros(9_500),
                Span::from_millis(7),
            ])
            .unwrap()
    }

    #[test]
    fn renders_rows() {
        let art = render_timeline(&example_trace(), &TimelineOptions::default()).unwrap();
        assert!(art.contains("sensing"));
        assert!(art.contains("computing"));
        assert!(art.contains("releases"));
        assert!(art.contains("1 overruns"));
        assert!(art.contains('#'));
        assert!(art.contains('^'));
    }

    #[test]
    fn overrun_gap_marked() {
        let art = render_timeline(&example_trace(), &TimelineOptions::default()).unwrap();
        // The deferred-release wait appears as dots.
        assert!(art.contains('.'), "timeline missing wait marker:\n{art}");
    }

    #[test]
    fn respects_max_jobs() {
        let policy = OverrunPolicy::new(Span::from_millis(10), 2).unwrap();
        let responses = vec![Span::from_millis(5); 100];
        let trace = policy.apply(&responses).unwrap();
        let art = render_timeline(
            &trace,
            &TimelineOptions {
                cols_per_sensor_tick: 2,
                max_jobs: 4,
            },
        )
        .unwrap();
        assert!(art.contains("4 jobs"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace_to_csv(&example_trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("job,"));
        assert!(lines[2].contains(",1")); // the overrun flag on job 1
    }
}

/// Renders a multi-task Gantt chart of a scheduler run: one row per task,
/// `#` where the task's jobs are executing-or-pending (release to finish),
/// aligned on a shared millisecond-scale grid. Intended for eyeballing
/// preemption patterns; precision is one column per `cols_ns` nanoseconds.
///
/// # Example
///
/// ```
/// use overrun_rtsim::{gantt, ExecutionModel, Scheduler, SchedulerConfig, Span, Task};
///
/// # fn main() -> Result<(), overrun_rtsim::Error> {
/// let tasks = vec![
///     Task::new("hp", Span::from_millis(5), 0, ExecutionModel::Constant(Span::from_millis(1))),
///     Task::new("lp", Span::from_millis(10), 1, ExecutionModel::Constant(Span::from_millis(4))),
/// ];
/// let sched = Scheduler::new(tasks.clone())?;
/// let trace = sched.run(&SchedulerConfig { horizon: Span::from_millis(40), seed: 0 })?;
/// let art = gantt(&trace, &tasks, 1_000_000, 60);
/// assert!(art.contains("hp"));
/// # Ok(())
/// # }
/// ```
pub fn gantt(trace: &ScheduleTrace, tasks: &[Task], cols_ns: u64, max_cols: usize) -> String {
    let cols_ns = cols_ns.max(1);
    let mut out = String::new();
    let end = trace
        .jobs
        .iter()
        .map(|j| j.finish.as_nanos())
        .max()
        .unwrap_or(0);
    let width = ((end / cols_ns) as usize + 1).min(max_cols.max(1));
    let name_width = tasks.iter().map(|t| t.name.len()).max().unwrap_or(4).max(4);
    for (i, task) in tasks.iter().enumerate() {
        let mut row = vec![b'.'; width];
        for job in trace.jobs.iter().filter(|j| j.task.index() == i) {
            let start = (job.release.as_nanos() / cols_ns) as usize;
            let stop = (job.finish.as_nanos() / cols_ns) as usize;
            for c in row.iter_mut().take(stop.min(width - 1) + 1).skip(start.min(width - 1)) {
                *c = b'#';
            }
        }
        out.push_str(&format!("{:>name_width$} ", task.name));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod gantt_tests {
    use super::*;
    use crate::{ExecutionModel, Scheduler, SchedulerConfig, Span};

    #[test]
    fn gantt_renders_all_tasks() {
        let tasks = vec![
            Task::new(
                "hp",
                Span::from_millis(5),
                0,
                ExecutionModel::Constant(Span::from_millis(1)),
            ),
            Task::new(
                "lp",
                Span::from_millis(10),
                1,
                ExecutionModel::Constant(Span::from_millis(4)),
            ),
        ];
        let sched = Scheduler::new(tasks.clone()).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(50),
                seed: 0,
            })
            .unwrap();
        let art = gantt(&trace, &tasks, 1_000_000, 80);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("hp"));
        assert!(lines[1].contains("lp"));
        assert!(lines[0].contains('#'));
        // The hp row must show activity at t = 0.
        let hp_row = lines[0].split_whitespace().nth(1).unwrap();
        assert!(hp_row.starts_with('#'));
    }

    #[test]
    fn gantt_caps_width() {
        let tasks = vec![Task::new(
            "t",
            Span::from_millis(1),
            0,
            ExecutionModel::Constant(Span::from_micros(100)),
        )];
        let sched = Scheduler::new(tasks.clone()).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_secs(1),
                seed: 0,
            })
            .unwrap();
        let art = gantt(&trace, &tasks, 1_000_000, 40);
        assert!(art.lines().next().unwrap().len() <= 40 + 8);
    }
}
