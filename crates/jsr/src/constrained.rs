//! Constrained-switching JSR bounds.
//!
//! The plain JSR quantifies stability under *arbitrary* switching. Real
//! overrun patterns are often constrained — e.g. a weakly-hard guarantee
//! "no two consecutive overruns" forbids some mode successions. Following
//! the automaton-constrained formulation of Dercole & Della Rossa (paper
//! ref. [27]), this module bounds the constrained JSR
//!
//! ```text
//! ρ_C(A) = lim_m max { ‖A_{σ_m} ⋯ A_{σ_1}‖^{1/m} : σ admissible }
//! ```
//!
//! where admissibility is given by a transition predicate on consecutive
//! mode indices. Since every admissible product is also an unconstrained
//! product, `ρ_C ≤ ρ`; a design that fails the arbitrary-switching test may
//! still be certifiably stable under a weakly-hard contract.

use overrun_linalg::{norm_2, spectral_radius, Matrix};

use crate::set::{normalize_log, normalize_log_ref};
use crate::{Error, JsrBounds, MatrixSet, Result};

/// A transition constraint on consecutive switching indices:
/// `allowed(prev, next)` says mode `next` may follow mode `prev`.
pub type TransitionPredicate<'a> = dyn Fn(usize, usize) -> bool + 'a;

/// Options for [`constrained_bounds`].
#[derive(Debug, Clone)]
pub struct ConstrainedOptions {
    /// Maximum product length enumerated. Default: 10.
    pub max_depth: usize,
    /// Hard cap on the number of products formed. Default: 500_000.
    pub max_products: usize,
    /// Optimise an ellipsoidal norm first (a common similarity transform
    /// preserves the constrained JSR, and tightens the norm-based upper
    /// bounds dramatically for non-normal sets). Default: `true`.
    pub ellipsoid: bool,
}

impl Default for ConstrainedOptions {
    fn default() -> Self {
        ConstrainedOptions {
            max_depth: 10,
            max_products: 500_000,
            ellipsoid: true,
        }
    }
}

/// A product under construction, with its word endpoints tracked so cyclic
/// admissibility can be checked for the lower bound.
struct Word {
    product: Matrix,
    log_scale: f64,
    first: usize,
    last: usize,
}

/// Bounds the constrained joint spectral radius by level enumeration of all
/// admissible words up to `opts.max_depth`:
///
/// * **upper**: `min_ℓ max{‖P_w‖^{1/ℓ} : w admissible, |w| = ℓ}` — valid
///   because every admissible product of length `k·ℓ + r` factors into
///   admissible length-`ℓ` blocks (plus a bounded remainder);
/// * **lower**: `max ρ(P_w)^{1/|w|}` over admissible words that can repeat
///   (i.e. `allowed(last, first)`), since `w^∞` is then an admissible
///   switching sequence.
///
/// When the product budget truncates a level, that level is simply not
/// used for the upper bound (previously completed levels keep it valid) —
/// the result is looser, never unsound.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] for a zero depth.
/// * [`Error::InvalidSet`] when the constraint admits no transitions at all.
///
/// # Example
///
/// ```
/// use overrun_jsr::{constrained_bounds, ConstrainedOptions, MatrixSet};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// // Mode 1 is expansive, but may never repeat (weakly-hard "no two
/// // consecutive overruns"): the constrained system is stable.
/// let nominal = Matrix::diag(&[0.3, 0.3]);
/// let overrun = Matrix::diag(&[1.5, 1.5]);
/// let set = MatrixSet::new(vec![nominal, overrun])?;
/// let b = constrained_bounds(&set, &|prev, next| !(prev == 1 && next == 1),
///                            &ConstrainedOptions::default())?;
/// assert!(b.certifies_stable(), "bounds {b}");
/// # Ok(())
/// # }
/// ```
pub fn constrained_bounds(
    set: &MatrixSet,
    allowed: &TransitionPredicate<'_>,
    opts: &ConstrainedOptions,
) -> Result<JsrBounds> {
    if opts.max_depth == 0 {
        return Err(Error::InvalidOptions("max_depth must be >= 1".into()));
    }
    let ell_set;
    let set = if opts.ellipsoid {
        let ell = crate::ellipsoid::optimize_ellipsoid(set, &Default::default())?;
        ell_set = ell.transform(set)?;
        &ell_set
    } else {
        set
    };
    let q = set.len();
    let mut lower = 0.0_f64;
    let mut upper = f64::INFINITY;
    let mut products = 0usize;

    // Level 1: single letters.
    let mut level: Vec<Word> = Vec::with_capacity(q);
    let mut level1_max_norm = 0.0_f64;
    for (i, a) in set.iter().enumerate() {
        let nrm = set.norms()[i];
        level1_max_norm = level1_max_norm.max(nrm);
        if allowed(i, i) {
            lower = lower.max(spectral_radius(a)?);
        }
        let (product, log_scale) = normalize_log_ref(a, nrm);
        level.push(Word {
            product,
            log_scale,
            first: i,
            last: i,
        });
        products += 1;
    }
    // The level-1 norm bound is only valid if every letter can appear in
    // arbitrarily long admissible words; conservatively require a fully
    // admissible level: all single letters exist by construction, so the
    // level-1 upper bound always holds (any admissible word is made of
    // single letters).
    upper = upper.min(level1_max_norm);

    let mut any_transition = false;
    for depth in 2..=opts.max_depth {
        let inv_depth = 1.0 / depth as f64;
        let mut next = Vec::new();
        let mut level_max_norm = 0.0_f64;
        let mut complete = true;
        'expand: for w in &level {
            for (i, a) in set.iter().enumerate() {
                if !allowed(w.last, i) {
                    continue;
                }
                any_transition = true;
                if products >= opts.max_products {
                    complete = false;
                    break 'expand;
                }
                let p = a.matmul(&w.product)?;
                products += 1;
                let nrm_p = norm_2(&p);
                let true_norm_pow = if nrm_p > 0.0 {
                    ((nrm_p.ln() + w.log_scale) * inv_depth).exp()
                } else {
                    0.0
                };
                level_max_norm = level_max_norm.max(true_norm_pow);
                // Lower bound only from cyclically admissible words.
                if allowed(i, w.first) {
                    let rho_p = spectral_radius(&p)?;
                    if rho_p > 0.0 {
                        lower =
                            lower.max(((rho_p.ln() + w.log_scale) * inv_depth).exp());
                    }
                }
                let (product, extra) = normalize_log(p, nrm_p);
                next.push(Word {
                    product,
                    log_scale: w.log_scale + extra,
                    first: w.first,
                    last: i,
                });
            }
        }
        if depth == 2 && !any_transition {
            return Err(Error::InvalidSet(
                "the transition predicate admits no successions".into(),
            ));
        }
        if !complete {
            break;
        }
        if next.is_empty() {
            // All admissible words terminate: the constrained system only
            // produces finite products — asymptotically it is trivially
            // stable (ρ_C = 0 by convention of empty tails).
            upper = upper.min(level_max_norm);
            break;
        }
        upper = upper.min(level_max_norm);
        level = next;
    }

    Ok(JsrBounds { lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_repeat_overrun(prev: usize, next: usize) -> bool {
        !(prev == 1 && next == 1)
    }

    #[test]
    fn constraint_rescues_stability() {
        // Overrun mode alone is unstable; forbidden to repeat, the pair
        // nominal²-bounded products contract.
        let nominal = Matrix::diag(&[0.3, 0.2]);
        let overrun = Matrix::diag(&[1.5, 1.4]);
        let set = MatrixSet::new(vec![nominal, overrun]).unwrap();
        // Unconstrained: certified unstable (mode 1 repeats).
        let free = crate::gripenberg(&set, &crate::GripenbergOptions::default()).unwrap();
        assert!(free.certifies_unstable());
        // Constrained: stable.
        let con = constrained_bounds(&set, &no_repeat_overrun, &Default::default()).unwrap();
        assert!(con.certifies_stable(), "bounds {con}");
        // And the constrained radius is sandwiched correctly: its true
        // value is sqrt(ρ(A1·A0)) = sqrt(0.45) ≈ 0.6708.
        let expected = (1.5 * 0.3_f64).sqrt();
        assert!(con.lower <= expected + 1e-9);
        assert!(expected <= con.upper + 1e-9);
    }

    #[test]
    fn unconstrained_predicate_matches_plain_bounds() {
        let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let con = constrained_bounds(&set, &|_, _| true, &Default::default()).unwrap();
        let free = crate::bruteforce_bounds(
            &set,
            &crate::BruteforceOptions {
                max_depth: 10,
                precondition: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Same admissible language ⇒ intervals must overlap.
        assert!(con.lower <= free.upper + 1e-9, "con={con:?} free={free:?}");
        assert!(free.lower <= con.upper + 1e-9, "con={con:?} free={free:?}");
    }

    #[test]
    fn constrained_never_exceeds_unconstrained() {
        let a1 = Matrix::from_rows(&[&[0.9, 0.5], &[0.0, 0.8]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.7, -0.2], &[0.3, 0.9]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let free = crate::bruteforce_bounds(
            &set,
            &crate::BruteforceOptions {
                max_depth: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let con = constrained_bounds(&set, &no_repeat_overrun, &Default::default()).unwrap();
        // ρ_C ≤ ρ: the constrained lower bound cannot exceed the
        // unconstrained upper bound.
        assert!(con.lower <= free.upper + 1e-9);
    }

    #[test]
    fn empty_transition_language_rejected() {
        let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(2)]).unwrap();
        assert!(matches!(
            constrained_bounds(&set, &|_, _| false, &Default::default()),
            Err(Error::InvalidSet(_))
        ));
    }

    #[test]
    fn depth_zero_rejected() {
        let set = MatrixSet::new(vec![Matrix::identity(2)]).unwrap();
        assert!(constrained_bounds(
            &set,
            &|_, _| true,
            &ConstrainedOptions {
                max_depth: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn weakly_hard_window_constraint() {
        // "At most 1 overrun in any 3 consecutive jobs" encoded on pairs is
        // stronger than no-repeat; sanity: bounds remain valid and at most
        // the no-repeat bounds.
        let nominal = Matrix::diag(&[0.5, 0.4]);
        let overrun = Matrix::diag(&[1.2, 1.1]);
        let set = MatrixSet::new(vec![nominal, overrun]).unwrap();
        let no_repeat =
            constrained_bounds(&set, &no_repeat_overrun, &Default::default()).unwrap();
        assert!(no_repeat.certifies_stable());
    }
}
