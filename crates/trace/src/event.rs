//! Trace events, fixed-bucket histograms, and the JSONL schema.
//!
//! One event serializes to one JSON line. The schema (field order is
//! fixed by the exporter; the parser is order-insensitive):
//!
//! ```text
//! {"e":"open","id":3,"parent":0,"name":"jsr.depth","t_ns":120,"fields":[["depth",2],["frontier",17]]}
//! {"e":"close","id":3,"t_ns":910}
//! {"e":"counter","name":"mc.sequences","delta":64}
//! {"e":"progress","name":"jsr.lb","value":1.618033,"t_ns":455}
//! {"e":"hist","name":"lqr.riccati_residual","count":6,"sum":3.1e-13,"min":2e-14,"max":9e-14,"buckets":[[8,4],[9,2]]}
//! ```
//!
//! Non-finite floats serialize as `null` and parse back as NaN; ids,
//! deltas, and timestamps are exact below 2^53.

use std::borrow::Cow;

use crate::json::{self, Value};

/// Event names are `&'static str` when produced by the macros and owned
/// strings when parsed back from JSONL.
pub type Name = Cow<'static, str>;

/// Number of exponent buckets in a [`Hist`]. Bucket 0 collects
/// non-positive and non-finite samples; buckets 1..=95 cover binary
/// exponents from 2^-53 (and below) to 2^41 (and above).
pub const HIST_BUCKETS: usize = 96;

/// Offset added to the unbiased binary exponent to form a bucket index.
const EXP_OFFSET: i32 = 54;

/// A fixed-size log-scale histogram of `f64` samples.
///
/// Samples are bucketed by their binary exponent (extracted from the bit
/// pattern, no transcendental math), so recording costs a few integer
/// ops. Non-positive and non-finite samples land in bucket 0 and are
/// excluded from `sum`/`min`/`max`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Total number of recorded samples (including bucket-0 outliers).
    pub count: u64,
    /// Sum of the finite positive samples.
    pub sum: f64,
    /// Smallest finite positive sample (`+inf` when none).
    pub min: f64,
    /// Largest finite positive sample (`-inf` when none).
    pub max: f64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Bucket index for a sample.
    pub fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let biased = (v.to_bits() >> 52) as i32; // 0 for subnormals
        let exp = biased - 1023;
        (exp + EXP_OFFSET).clamp(1, HIST_BUCKETS as i32 - 1) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let b = Self::bucket_of(v);
        self.buckets[b] += 1;
        if b != 0 {
            self.sum += v;
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean of the finite positive samples, or NaN when there are none.
    pub fn mean(&self) -> f64 {
        let finite = self.count - self.buckets[0];
        if finite == 0 {
            f64::NAN
        } else {
            self.sum / finite as f64
        }
    }

    /// Iterates over the non-empty buckets as `(index, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    fn set_bucket(&mut self, index: usize, count: u64) {
        if index < HIST_BUCKETS {
            self.buckets[index] = count;
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened: `id` is process-unique, `parent` is the enclosing
    /// span on the same thread (0 at the root).
    SpanOpen {
        /// Process-unique span id (never 0).
        id: u64,
        /// Enclosing span id on the opening thread, 0 for roots.
        parent: u64,
        /// Dotted span name, e.g. `jsr.gripenberg`.
        name: Name,
        /// Clock reading at open.
        t_ns: u64,
        /// Structured key/value attachments (`span!("x", depth = d)`).
        fields: Vec<(Name, f64)>,
    },
    /// A span closed (guard dropped).
    SpanClose {
        /// Id of the span being closed.
        id: u64,
        /// Clock reading at close.
        t_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Counter name.
        name: Name,
        /// Amount added.
        delta: u64,
    },
    /// A progress observation (best-so-far bound, residual, ...).
    Progress {
        /// Metric name.
        name: Name,
        /// Observed value.
        value: f64,
        /// Clock reading at observation.
        t_ns: u64,
    },
    /// A histogram snapshot (merged per name by the aggregator). Boxed:
    /// the fixed bucket array dwarfs every other variant.
    Hist {
        /// Histogram name.
        name: Name,
        /// Snapshot contents.
        hist: Box<Hist>,
    },
}

impl Event {
    /// Serializes the event as a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Event::SpanOpen {
                id,
                parent,
                name,
                t_ns,
                fields,
            } => {
                out.push_str("{\"e\":\"open\",\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"parent\":");
                out.push_str(&parent.to_string());
                out.push_str(",\"name\":\"");
                json::escape_into(&mut out, name);
                out.push_str("\",\"t_ns\":");
                out.push_str(&t_ns.to_string());
                out.push_str(",\"fields\":[");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("[\"");
                    json::escape_into(&mut out, k);
                    out.push_str("\",");
                    json::push_f64(&mut out, *v);
                    out.push(']');
                }
                out.push_str("]}");
            }
            Event::SpanClose { id, t_ns } => {
                out.push_str("{\"e\":\"close\",\"id\":");
                out.push_str(&id.to_string());
                out.push_str(",\"t_ns\":");
                out.push_str(&t_ns.to_string());
                out.push('}');
            }
            Event::Counter { name, delta } => {
                out.push_str("{\"e\":\"counter\",\"name\":\"");
                json::escape_into(&mut out, name);
                out.push_str("\",\"delta\":");
                out.push_str(&delta.to_string());
                out.push('}');
            }
            Event::Progress { name, value, t_ns } => {
                out.push_str("{\"e\":\"progress\",\"name\":\"");
                json::escape_into(&mut out, name);
                out.push_str("\",\"value\":");
                json::push_f64(&mut out, *value);
                out.push_str(",\"t_ns\":");
                out.push_str(&t_ns.to_string());
                out.push('}');
            }
            Event::Hist { name, hist } => {
                out.push_str("{\"e\":\"hist\",\"name\":\"");
                json::escape_into(&mut out, name);
                out.push_str("\",\"count\":");
                out.push_str(&hist.count.to_string());
                out.push_str(",\"sum\":");
                json::push_f64(&mut out, hist.sum);
                out.push_str(",\"min\":");
                json::push_f64(&mut out, hist.min);
                out.push_str(",\"max\":");
                json::push_f64(&mut out, hist.max);
                out.push_str(",\"buckets\":[");
                for (i, (idx, c)) in hist.nonzero_buckets().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    out.push_str(&idx.to_string());
                    out.push(',');
                    out.push_str(&c.to_string());
                    out.push(']');
                }
                out.push_str("]}");
            }
        }
        out
    }

    /// Parses one JSONL line back into an event.
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let v = json::parse(line)?;
        let kind = v
            .get("e")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"e\" discriminant".to_string())?;
        let name = |v: &Value| -> Result<Name, String> {
            v.get("name")
                .and_then(Value::as_str)
                .map(|s| Name::Owned(s.to_string()))
                .ok_or_else(|| "missing \"name\"".to_string())
        };
        let num = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer {key:?}"))
        };
        let flt = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number {key:?}"))
        };
        match kind {
            "open" => {
                let fields_v = v
                    .get("fields")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "missing \"fields\"".to_string())?;
                let mut fields = Vec::with_capacity(fields_v.len());
                for pair in fields_v {
                    let items = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| "field is not a [key, value] pair".to_string())?;
                    let key = items[0]
                        .as_str()
                        .ok_or_else(|| "field key is not a string".to_string())?;
                    let value = items[1]
                        .as_f64()
                        .ok_or_else(|| "field value is not a number".to_string())?;
                    fields.push((Name::Owned(key.to_string()), value));
                }
                Ok(Event::SpanOpen {
                    id: num(&v, "id")?,
                    parent: num(&v, "parent")?,
                    name: name(&v)?,
                    t_ns: num(&v, "t_ns")?,
                    fields,
                })
            }
            "close" => Ok(Event::SpanClose {
                id: num(&v, "id")?,
                t_ns: num(&v, "t_ns")?,
            }),
            "counter" => Ok(Event::Counter {
                name: name(&v)?,
                delta: num(&v, "delta")?,
            }),
            "progress" => Ok(Event::Progress {
                name: name(&v)?,
                value: flt(&v, "value")?,
                t_ns: num(&v, "t_ns")?,
            }),
            "hist" => {
                let mut hist = Hist::new();
                hist.count = num(&v, "count")?;
                hist.sum = flt(&v, "sum")?;
                hist.min = flt(&v, "min")?;
                hist.max = flt(&v, "max")?;
                let buckets = v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "missing \"buckets\"".to_string())?;
                for pair in buckets {
                    let items = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| "bucket is not an [index, count] pair".to_string())?;
                    let idx = items[0]
                        .as_u64()
                        .ok_or_else(|| "bucket index is not an integer".to_string())?;
                    let count = items[1]
                        .as_u64()
                        .ok_or_else(|| "bucket count is not an integer".to_string())?;
                    hist.set_bucket(idx as usize, count);
                }
                Ok(Event::Hist {
                    name: name(&v)?,
                    hist: Box::new(hist),
                })
            }
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone() {
        assert_eq!(Hist::bucket_of(f64::NAN), 0);
        assert_eq!(Hist::bucket_of(-1.0), 0);
        assert_eq!(Hist::bucket_of(0.0), 0);
        let samples = [1e-20, 1e-10, 1e-3, 0.5, 1.0, 2.0, 1e3, 1e12, 1e300];
        let mut last = 0usize;
        for s in samples {
            let b = Hist::bucket_of(s);
            assert!(b >= last, "bucket_of({s}) = {b} < {last}");
            last = b;
        }
        // 1.0 has unbiased exponent 0.
        assert_eq!(Hist::bucket_of(1.0), 54);
        assert_eq!(Hist::bucket_of(2.0), 55);
        assert_eq!(Hist::bucket_of(0.5), 53);
    }

    #[test]
    fn hist_records_and_merges() {
        let mut a = Hist::new();
        a.record(1.0);
        a.record(4.0);
        a.record(f64::INFINITY);
        let mut b = Hist::new();
        b.record(0.25);
        b.merge(&a);
        assert_eq!(b.count, 4);
        assert_eq!(b.min, 0.25);
        assert_eq!(b.max, 4.0);
        assert!((b.mean() - (0.25 + 1.0 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_round_trip_via_jsonl() -> Result<(), String> {
        let mut hist = Hist::new();
        hist.record(3.5e-13);
        hist.record(9.0e-14);
        let events = vec![
            Event::SpanOpen {
                id: 1,
                parent: 0,
                name: Name::Borrowed("jsr.gripenberg"),
                t_ns: 10,
                fields: vec![(Name::Borrowed("matrices"), 4.0)],
            },
            Event::Counter {
                name: Name::Borrowed("jsr.nodes"),
                delta: 12345,
            },
            Event::Progress {
                name: Name::Borrowed("jsr.lb"),
                value: 1.618_033_988_749,
                t_ns: 42,
            },
            Event::Hist {
                name: Name::Borrowed("lqr.riccati_residual"),
                hist: Box::new(hist),
            },
            Event::SpanClose { id: 1, t_ns: 99 },
        ];
        for ev in &events {
            let line = ev.to_jsonl();
            let back = Event::from_jsonl(&line)?;
            assert_eq!(back.to_jsonl(), line, "unstable round-trip for {line}");
        }
        Ok(())
    }

    #[test]
    fn non_finite_values_serialize_as_null() -> Result<(), String> {
        let ev = Event::Progress {
            name: Name::Borrowed("x"),
            value: f64::INFINITY,
            t_ns: 0,
        };
        let line = ev.to_jsonl();
        assert!(line.contains("\"value\":null"), "{line}");
        let back = Event::from_jsonl(&line)?;
        assert_eq!(back.to_jsonl(), line);
        Ok(())
    }
}
