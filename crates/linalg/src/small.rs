//! Const-generic kernels for small square matrices (`n ≤ 8`).
//!
//! The lifted closed-loop matrices `Ω(h)` of every plant in the stack live
//! in dimension 3–8 (`ξ = [x; z̃; ũ; u]`), and the JSR product-tree searches
//! multiply millions of them. For those sizes the generic row-major loops
//! in [`crate::Matrix`] spend a measurable fraction of their time on slice
//! bounds checks and loop-counter overhead. The kernels here are generic
//! over the dimension `N`, so the compiler fully unrolls the inner loops
//! and proves every access in bounds (each row is reborrowed as a
//! `&[f64; N]`) — no `unsafe` required.
//!
//! **Bit-identity contract**: every kernel performs the *same floating-point
//! operations in the same order* as the generic path it replaces, including
//! the `a_ik == 0.0` zero-skip of [`crate::Matrix::matmul`]. Dispatching by
//! runtime dimension therefore never changes a single output bit — enforced
//! by unit and property tests.

/// Largest dimension with a dedicated kernel; larger matrices take the
/// generic path.
pub const MAX_DIM: usize = 8;

#[inline(always)]
fn row<const N: usize>(data: &[f64], i: usize) -> &[f64; N] {
    data[i * N..i * N + N].try_into().expect("row of length N")
}

/// Accumulating product `out += a * b` for row-major `N × N` buffers.
///
/// Same i-k-j loop order and zero-skip as [`crate::Matrix::matmul_add_into`],
/// so the result is bit-identical to the generic path.
///
/// # Panics
///
/// Panics if any buffer is shorter than `N * N`.
#[inline(always)]
// Index loops transliterate the generic path so the float operation order
// (and thus every rounded bit) is provably the same.
#[allow(clippy::needless_range_loop)]
pub fn matmul_acc<const N: usize>(a: &[f64], b: &[f64], out: &mut [f64]) {
    for i in 0..N {
        let arow = row::<N>(a, i);
        let orow: &mut [f64; N] = (&mut out[i * N..i * N + N])
            .try_into()
            .expect("row of length N");
        for k in 0..N {
            let a_ik = arow[k];
            if a_ik == 0.0 {
                continue;
            }
            let brow = row::<N>(b, k);
            for j in 0..N {
                orow[j] += a_ik * brow[j];
            }
        }
    }
}

/// Accumulating matrix–vector product `out += a * x` for a row-major
/// `N × N` buffer, matching [`crate::Matrix::mul_vec_acc_into`] bit for bit
/// (including the zero-skip on `a` entries).
///
/// # Panics
///
/// Panics if `a` is shorter than `N * N` or `x`/`out` shorter than `N`.
#[inline(always)]
// See `matmul_acc`: index loops keep the generic float operation order.
#[allow(clippy::needless_range_loop)]
pub fn mul_vec_acc<const N: usize>(a: &[f64], x: &[f64], out: &mut [f64]) {
    let xv: &[f64; N] = x[..N].try_into().expect("vector of length N");
    for i in 0..N {
        let arow = row::<N>(a, i);
        let mut acc = out[i];
        for k in 0..N {
            let a_ik = arow[k];
            if a_ik == 0.0 {
                continue;
            }
            acc += a_ik * xv[k];
        }
        out[i] = acc;
    }
}

/// Sum of squared prescaled entries `Σ (a_ij / scale)²` of a row-major
/// `N × N` buffer, in the same sequential order as the generic Frobenius
/// accumulation in [`crate::norm_fro`].
///
/// # Panics
///
/// Panics if `a` is shorter than `N * N`.
#[inline(always)]
pub fn fro_sumsq<const N: usize>(a: &[f64], scale: f64) -> f64 {
    let mut sum = 0.0_f64;
    for i in 0..N {
        let arow = row::<N>(a, i);
        for &x in arow {
            let v = x / scale;
            sum += v * v;
        }
    }
    sum
}

/// Expands to a `match` on the runtime dimension that invokes a
/// const-generic kernel for every supported `N`, evaluating to `true` when
/// a kernel ran and `false` when the caller must take the generic path.
macro_rules! small_square_dispatch {
    ($n:expr, $kernel:ident($($arg:expr),*)) => {
        match $n {
            1 => {
                $kernel::<1>($($arg),*);
                true
            }
            2 => {
                $kernel::<2>($($arg),*);
                true
            }
            3 => {
                $kernel::<3>($($arg),*);
                true
            }
            4 => {
                $kernel::<4>($($arg),*);
                true
            }
            5 => {
                $kernel::<5>($($arg),*);
                true
            }
            6 => {
                $kernel::<6>($($arg),*);
                true
            }
            7 => {
                $kernel::<7>($($arg),*);
                true
            }
            8 => {
                $kernel::<8>($($arg),*);
                true
            }
            _ => false,
        }
    };
}

/// Runtime dispatch for [`matmul_acc`]: runs the fixed-size kernel when
/// `n ≤ MAX_DIM`, returning `false` (buffers untouched) otherwise.
#[inline]
pub(crate) fn matmul_acc_dispatch(n: usize, a: &[f64], b: &[f64], out: &mut [f64]) -> bool {
    small_square_dispatch!(n, matmul_acc(a, b, out))
}

/// Runtime dispatch for [`mul_vec_acc`].
#[inline]
pub(crate) fn mul_vec_acc_dispatch(n: usize, a: &[f64], x: &[f64], out: &mut [f64]) -> bool {
    small_square_dispatch!(n, mul_vec_acc(a, x, out))
}

/// Runtime dispatch for [`fro_sumsq`]: `None` when `n > MAX_DIM`.
#[inline]
pub(crate) fn fro_sumsq_dispatch(n: usize, a: &[f64], scale: f64) -> Option<f64> {
    Some(match n {
        1 => fro_sumsq::<1>(a, scale),
        2 => fro_sumsq::<2>(a, scale),
        3 => fro_sumsq::<3>(a, scale),
        4 => fro_sumsq::<4>(a, scale),
        5 => fro_sumsq::<5>(a, scale),
        6 => fro_sumsq::<6>(a, scale),
        7 => fro_sumsq::<7>(a, scale),
        8 => fro_sumsq::<8>(a, scale),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transliteration of the generic `matmul_add_into` loop, kept here as
    /// the reference the kernels are pinned against.
    fn generic_matmul_acc(n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        for i in 0..n {
            for k in 0..n {
                let a_ik = a[i * n + k];
                if a_ik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += a_ik * b[k * n + j];
                }
            }
        }
    }

    fn test_data(n: usize, salt: u64) -> Vec<f64> {
        // Deterministic, irregular values with a sprinkling of exact zeros
        // so the zero-skip path is exercised.
        (0..n * n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
                if h.is_multiple_of(5) {
                    0.0
                } else {
                    ((h % 2000) as f64 - 1000.0) / 333.0
                }
            })
            .collect()
    }

    #[test]
    fn matmul_acc_matches_generic_bitwise() {
        macro_rules! check {
            ($($n:literal),*) => {$({
                let a = test_data($n, 1);
                let b = test_data($n, 2);
                let mut out_k = test_data($n, 3);
                let mut out_g = out_k.clone();
                matmul_acc::<$n>(&a, &b, &mut out_k);
                generic_matmul_acc($n, &a, &b, &mut out_g);
                for (x, y) in out_k.iter().zip(&out_g) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n = {}", $n);
                }
                assert!(matmul_acc_dispatch($n, &a, &b, &mut out_k));
            })*};
        }
        check!(1, 2, 3, 4, 5, 6, 7, 8);
        let mut big = test_data(9, 3);
        assert!(!matmul_acc_dispatch(9, &test_data(9, 1), &test_data(9, 2), &mut big));
    }

    #[test]
    fn mul_vec_acc_matches_generic_bitwise() {
        for n in 1..=MAX_DIM {
            let a = test_data(n, 7);
            let x: Vec<f64> = test_data(n, 8)[..n].to_vec();
            let mut out_k: Vec<f64> = test_data(n, 9)[..n].to_vec();
            let mut out_g = out_k.clone();
            assert!(mul_vec_acc_dispatch(n, &a, &x, &mut out_k));
            for (i, o) in out_g.iter_mut().enumerate() {
                let mut acc = *o;
                for k in 0..n {
                    let a_ik = a[i * n + k];
                    if a_ik == 0.0 {
                        continue;
                    }
                    acc += a_ik * x[k];
                }
                *o = acc;
            }
            for (x, y) in out_k.iter().zip(&out_g) {
                assert_eq!(x.to_bits(), y.to_bits(), "n = {n}");
            }
        }
    }

    #[test]
    fn fro_sumsq_matches_generic_bitwise() {
        for n in 1..=MAX_DIM {
            let a = test_data(n, 11);
            let scale = 2.7;
            let kernel = fro_sumsq_dispatch(n, &a, scale).unwrap();
            let generic: f64 = a
                .iter()
                .map(|x| {
                    let v = x / scale;
                    v * v
                })
                .sum();
            assert_eq!(kernel.to_bits(), generic.to_bits(), "n = {n}");
        }
        assert!(fro_sumsq_dispatch(9, &test_data(9, 11), 1.0).is_none());
    }
}
