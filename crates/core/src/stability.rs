//! Joint-spectral-radius stability certification (paper Sec. V-A).

use overrun_jsr::{
    bruteforce_bounds, constrained_bounds, refined_bounds_with_stats, BruteforceOptions,
    ConstrainedOptions, GripenbergOptions, JsrBounds, MatrixSet, RefineOptions, ScreenStats,
    StabilityVerdict,
};

use crate::{lifted, ContinuousSs, ControllerTable, Result};

/// Options for [`certify`].
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Target gap `δ` of the per-level Gripenberg bounds.
    pub delta: f64,
    /// Maximum explored product length per lift level.
    pub max_depth: usize,
    /// Hard cap on the number of matrix products formed per lift level.
    pub max_products: usize,
    /// Largest power-lift level (products of length `ℓ ≤ max_power` form
    /// the lifted alphabets; higher levels tighten the ellipsoid-norm
    /// bounds on marginally contractive designs).
    pub max_power: usize,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            delta: 1e-5,
            max_depth: 8,
            max_products: 100_000,
            max_power: 6,
        }
    }
}

/// Outcome of a stability certification.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Certified JSR interval `[LB, UB]` of `{Ω(h) : h ∈ H}`.
    pub bounds: JsrBounds,
    /// Stable / unstable / undecided within budget.
    pub verdict: StabilityVerdict,
    /// Norm-screening statistics of the underlying product-tree searches
    /// (all zeros for certification paths that do not screen).
    pub screen: ScreenStats,
}

/// Builds the lifted matrix set `{Ω(h) : h ∈ H}` for a design.
fn lifted_set(plant: &ContinuousSs, table: &ControllerTable) -> Result<MatrixSet> {
    let measurement = lifted::measurement_matrix(plant, table)?;
    let omegas = lifted::build_omega_set(plant, table, &measurement)?;
    Ok(MatrixSet::new(omegas)?)
}

/// Maps certified bounds to the three-way verdict.
fn verdict_from(bounds: &JsrBounds) -> StabilityVerdict {
    if bounds.certifies_stable() {
        StabilityVerdict::Stable
    } else if bounds.certifies_unstable() {
        StabilityVerdict::Unstable
    } else {
        StabilityVerdict::Unknown
    }
}

/// Certifies closed-loop stability of a (plant, controller table) pair under
/// **every** admissible overrun pattern, by bounding the joint spectral
/// radius of the lifted matrices `{Ω(h) : h ∈ H}` with Gripenberg's
/// branch-and-bound.
///
/// `verdict == Stable` is a proof: for *all* switching sequences the closed
/// loop converges (paper Theorem context: `ρ(A) < 1` iff asymptotically
/// stable).
///
/// # Errors
///
/// Propagates lifting and JSR computation failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let report = stability::certify(&plant, &table, &Default::default())?;
/// assert!(report.bounds.certifies_stable());
/// # Ok(())
/// # }
/// ```
pub fn certify(
    plant: &ContinuousSs,
    table: &ControllerTable,
    opts: &CertifyOptions,
) -> Result<StabilityReport> {
    let _sp = overrun_trace::span!("stability.certify", modes = table.len());
    let set = lifted_set(plant, table)?;
    let (bounds, screen) = refined_bounds_with_stats(
        &set,
        &RefineOptions {
            base: GripenbergOptions {
                delta: opts.delta,
                max_depth: opts.max_depth,
                max_products: opts.max_products,
                precondition: true,
                ellipsoid: true,
                screen: true,
            },
            max_power: opts.max_power,
            max_alphabet: 1024,
            decision_threshold: Some(1.0),
        },
    )?;
    let verdict = verdict_from(&bounds);
    Ok(StabilityReport {
        bounds,
        verdict,
        screen,
    })
}

/// Certifies stability under a *constrained* switching language: only mode
/// successions with `allowed(prev, next) == true` may occur (e.g. a
/// weakly-hard "no two consecutive overruns" contract, with mode 0 the
/// nominal interval). The constrained JSR never exceeds the arbitrary-
/// switching one, so designs that fail [`certify`] may still pass here.
///
/// # Errors
///
/// Propagates lifting and JSR computation failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// // Overruns (mode > 0) never back to back:
/// let report = stability::certify_constrained(
///     &plant, &table, &|prev, next| !(prev > 0 && next > 0), 12)?;
/// assert!(!report.bounds.certifies_unstable());
/// # Ok(())
/// # }
/// ```
pub fn certify_constrained(
    plant: &ContinuousSs,
    table: &ControllerTable,
    allowed: &(dyn Fn(usize, usize) -> bool + '_),
    max_depth: usize,
) -> Result<StabilityReport> {
    let set = lifted_set(plant, table)?;
    let bounds = constrained_bounds(
        &set,
        allowed,
        &ConstrainedOptions {
            max_depth,
            ..Default::default()
        },
    )?;
    let verdict = verdict_from(&bounds);
    Ok(StabilityReport {
        bounds,
        verdict,
        screen: ScreenStats::default(),
    })
}

/// Computes the paper-Eq.-12 brute-force bounds on the same lifted set —
/// useful for validating the Gripenberg result and for the depth-ablation
/// experiment.
///
/// # Errors
///
/// Propagates lifting and JSR computation failures.
pub fn eq12_bounds(
    plant: &ContinuousSs,
    table: &ControllerTable,
    max_depth: usize,
) -> Result<JsrBounds> {
    let set = lifted_set(plant, table)?;
    Ok(bruteforce_bounds(
        &set,
        &BruteforceOptions {
            max_depth,
            ..BruteforceOptions::default()
        },
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pi, plants, ControllerMode, ControllerTable, IntervalSet};
    use overrun_linalg::Matrix;

    #[test]
    fn adaptive_pi_certified_stable() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let report = certify(&plant, &table, &CertifyOptions::default()).unwrap();
        assert_eq!(report.verdict, StabilityVerdict::Stable);
        assert!(report.bounds.lower <= report.bounds.upper);
    }

    #[test]
    fn zero_gain_on_unstable_plant_certified_unstable() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
        let zero = ControllerMode::static_gain(Matrix::zeros(1, 1)).unwrap();
        let table = ControllerTable::fixed(zero, hset).unwrap();
        let report = certify(&plant, &table, &CertifyOptions::default()).unwrap();
        assert_eq!(report.verdict, StabilityVerdict::Unstable);
    }

    #[test]
    fn gripenberg_and_eq12_agree() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let g = certify(&plant, &table, &CertifyOptions::default())
            .unwrap()
            .bounds;
        let bf = eq12_bounds(&plant, &table, 6).unwrap();
        // Both intervals must contain the true JSR, hence overlap.
        assert!(g.lower <= bf.upper + 1e-9, "g={g:?} bf={bf:?}");
        assert!(bf.lower <= g.upper + 1e-9, "g={g:?} bf={bf:?}");
    }
}
