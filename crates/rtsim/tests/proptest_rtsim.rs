//! Property-based tests for the real-time simulator: structural invariants
//! of the overrun policy, the scheduler and the analysis.

use overrun_rtsim::{
    response_time_analysis, utilization, ExecutionModel, OverrunPolicy, ResponseTimeModel,
    Scheduler, SchedulerConfig, SequenceGenerator, Span, Task,
};
use proptest::prelude::*;

prop_compose! {
    /// A valid overrun policy: period divisible by the grid.
    fn policy()(ns in 1u32..10, ts_us in 100u64..5000) -> OverrunPolicy {
        OverrunPolicy::new(Span::from_micros(ts_us * ns as u64), ns).expect("divisible grid")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every induced interval lies in the predicted set `H` and on the
    /// sensor grid; `h ≥ T`; `h ≥ R` for overruns.
    #[test]
    fn intervals_always_in_h(policy in policy(), r_us in 1u64..100_000) {
        let r = Span::from_micros(r_us);
        let h = policy.next_interval(r).unwrap();
        prop_assert!(h >= policy.period());
        // On the grid: (h − T) is a multiple of Ts.
        let excess = h - policy.period();
        prop_assert_eq!(excess.as_nanos() % policy.sensor_period().as_nanos(), 0);
        // The overrunning job always completes before the next release.
        if r > policy.period() {
            prop_assert!(h >= r);
        } else {
            prop_assert_eq!(h, policy.period());
        }
        // Membership in H computed from any Rmax ≥ R.
        let hset = policy.interval_set(r.max(policy.period())).unwrap();
        prop_assert!(hset.contains(&h));
    }

    /// `interval_set` is monotone in `Rmax` (prefix property) — the
    /// foundation of the deployment check.
    #[test]
    fn interval_set_monotone(policy in policy(), a_us in 1u64..50_000, b_us in 1u64..50_000) {
        let (small, large) = if a_us <= b_us { (a_us, b_us) } else { (b_us, a_us) };
        let hs = policy.interval_set(Span::from_micros(small)).unwrap();
        let hl = policy.interval_set(Span::from_micros(large)).unwrap();
        prop_assert!(hs.len() <= hl.len());
        prop_assert_eq!(&hl[..hs.len()], &hs[..]);
        prop_assert!(policy.deployment_compatible(Span::from_micros(large), Span::from_micros(small)).unwrap());
    }

    /// Applying the policy to any response sequence yields a trace that
    /// passes its own invariant checker.
    #[test]
    fn traces_satisfy_invariants(policy in policy(),
                                 responses_us in prop::collection::vec(1u64..60_000, 1..40)) {
        let responses: Vec<Span> = responses_us.iter().map(|&u| Span::from_micros(u)).collect();
        let trace = policy.apply(&responses).unwrap();
        trace.check_invariants().unwrap();
        prop_assert_eq!(trace.jobs.len(), responses.len());
        // Releases are strictly increasing.
        for w in trace.jobs.windows(2) {
            prop_assert!(w[1].release > w[0].release);
        }
    }

    /// Scheduler runs are deterministic in the seed and response times never
    /// exceed the RTA bound when the set is schedulable.
    #[test]
    fn scheduler_within_rta_bound(seed in 0u64..500, c1 in 1u64..3, c2 in 2u64..4) {
        let tasks = vec![
            Task::new("hp", Span::from_millis(6), 0, ExecutionModel::Uniform {
                min: Span::from_micros(300),
                max: Span::from_millis(c1),
            }),
            Task::new("lp", Span::from_millis(10), 1, ExecutionModel::Uniform {
                min: Span::from_millis(1),
                max: Span::from_millis(c2),
            }),
        ];
        prop_assume!(utilization(&tasks) <= 1.0);
        let wcrt = response_time_analysis(&tasks).unwrap();
        let sched = Scheduler::new(tasks).unwrap();
        let cfg = SchedulerConfig { horizon: Span::from_millis(300), seed };
        let t1 = sched.run(&cfg).unwrap();
        let t2 = sched.run(&cfg).unwrap();
        prop_assert_eq!(&t1.jobs, &t2.jobs);
        for (name, bound) in ["hp", "lp"].iter().zip(&wcrt) {
            let id = sched.task_id(name).unwrap();
            for r in t1.response_times(id) {
                prop_assert!(r <= *bound, "task {name}: {r} > {bound}");
            }
        }
    }

    /// Generated response sequences respect their model envelope.
    #[test]
    fn sequence_generator_envelope(seed in 0u64..1000, min_us in 100u64..1000, spread_us in 1u64..20_000) {
        let min = Span::from_micros(min_us);
        let max = Span::from_micros(min_us + spread_us);
        let mut g = SequenceGenerator::new(ResponseTimeModel::Uniform { min, max }, seed).unwrap();
        for r in g.sequence(200) {
            prop_assert!(r >= min && r <= max);
        }
    }
}
