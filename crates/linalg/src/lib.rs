//! Dense linear algebra kernels for the `overrun` control stack.
//!
//! This crate implements, from scratch, every numerical kernel needed to
//! reproduce *"Adaptive Design of Real-Time Control Systems subject to
//! Sporadic Overruns"* (Pazzaglia et al., DATE 2021):
//!
//! * a dense row-major [`Matrix`] of `f64` with the usual arithmetic,
//! * [`Lu`] factorisation with partial pivoting (solve / det / inverse),
//! * Householder [`Qr`] factorisation and [`Cholesky`],
//! * Hessenberg reduction and a Francis double-shift QR iteration giving
//!   real-matrix [`eigenvalues`] and the [`spectral_radius`],
//! * the matrix exponential [`expm`] (Padé-13 scaling and squaring) and the
//!   zero-order-hold pair [`expm_integral`] `(e^{Ah}, ∫₀ʰ e^{As} ds · B)`,
//! * a discrete Lyapunov solver and the discrete algebraic Riccati equation
//!   ([`solve_dare`]) via the structure-preserving doubling algorithm, plus
//!   the LQR gain [`dlqr`] and steady-state Kalman gain [`dkalman`].
//!
//! # Example
//!
//! ```
//! use overrun_linalg::{Matrix, expm, spectral_radius};
//!
//! # fn main() -> Result<(), overrun_linalg::Error> {
//! let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]])?;
//! // exp of a rotation generator is a rotation matrix
//! let r = expm(&a)?;
//! assert!((r[(0, 0)] - 1.0_f64.cos()).abs() < 1e-12);
//! assert!((spectral_radius(&r)? - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod expm;
mod lu;
mod lyapunov;
mod matrix;
mod norms;
pub mod optimize;
mod qr;
mod riccati;
#[cfg(feature = "sanitize")]
pub mod sanitize;
mod schur;
pub mod small;
mod svd;

pub use cholesky::{is_spd, Cholesky};
pub use error::Error;
pub use expm::{expm, expm_integral};
pub use lu::Lu;
pub use lyapunov::{is_schur_stable, solve_discrete_lyapunov, solve_discrete_lyapunov_direct};
pub use matrix::Matrix;
pub use norms::{
    balance, cheap_spectral_bounds, norm_1, norm_2, norm_2_bracket, norm_fro, norm_inf,
    spectral_radius_upper, CheapSpectralBounds,
};
pub use qr::Qr;
pub use riccati::{dkalman, dkalman_solution, dlqr, dlqr_solution, solve_dare, DareSolution};
pub use schur::{eigenvalues, hessenberg, spectral_radius, Eigenvalue};
pub use svd::{rank, Svd};

/// Convenience alias for `Result<T, overrun_linalg::Error>`.
pub type Result<T> = std::result::Result<T, Error>;
