//! Joint spectral radius (JSR) bounds for switching linear systems.
//!
//! The stability test of *"Adaptive Design of Real-Time Control Systems
//! subject to Sporadic Overruns"* (Pazzaglia et al., DATE 2021, Sec. V)
//! reduces to deciding whether the JSR of the set of lifted closed-loop
//! matrices `{Ω(h) : h ∈ H}` is below one. This crate implements:
//!
//! * [`bruteforce_bounds`] — the Gel'fand–Berger–Wang sandwich of paper
//!   Eq. (12): `max_{ℓ≤m} ρ̂_ℓ ≤ ρ(A) ≤ min_{ℓ≤m} ρ_ℓ`, evaluated by
//!   depth-first enumeration of all products up to a given length;
//! * [`gripenberg`] — Gripenberg's branch-and-bound algorithm, which prunes
//!   the product tree with a user-chosen gap `δ` and returns a certified
//!   interval `[LB, UB]` with `UB − LB ≤ δ` on termination;
//! * [`decide_stability`] — an early-exit wrapper answering the only
//!   question the control designer cares about: is `ρ < 1`?
//!
//! All bounds are invariant under a common similarity transform; a cheap
//! diagonal [`precondition`] based on joint balancing is applied internally
//! to tighten norm-based upper bounds.
//!
//! # Example
//!
//! ```
//! use overrun_jsr::{MatrixSet, gripenberg, GripenbergOptions};
//! use overrun_linalg::Matrix;
//!
//! # fn main() -> Result<(), overrun_jsr::Error> {
//! // A singleton set: the JSR equals the spectral radius.
//! let a = Matrix::from_rows(&[&[0.0, 1.0], &[-0.25, 0.0]])?;
//! let set = MatrixSet::new(vec![a])?;
//! let bounds = gripenberg(&set, &GripenbergOptions::default())?;
//! assert!(bounds.lower <= 0.5 + 1e-9 && 0.5 <= bounds.upper + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bruteforce;
mod constrained;
pub mod ellipsoid;
mod error;
mod gripenberg;
mod precondition;
mod refine;
mod screen;
mod set;

pub use bruteforce::{bruteforce_bounds, bruteforce_bounds_with_stats, BruteforceOptions};
pub use constrained::{constrained_bounds, ConstrainedOptions, TransitionPredicate};
pub use ellipsoid::{kronecker_sum_bounds, optimize_ellipsoid, Ellipsoid, EllipsoidOptions};
pub use error::Error;
pub use gripenberg::{gripenberg, gripenberg_with_stats, GripenbergOptions};
pub use precondition::precondition;
pub use refine::{refined_bounds, refined_bounds_with_stats, RefineOptions};
pub use screen::ScreenStats;
pub use set::MatrixSet;

/// Convenience alias for `Result<T, overrun_jsr::Error>`.
pub type Result<T> = std::result::Result<T, Error>;

/// A certified two-sided bound on the joint spectral radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JsrBounds {
    /// Certified lower bound (`ρ ≥ lower`).
    pub lower: f64,
    /// Certified upper bound (`ρ ≤ upper`).
    pub upper: f64,
}

impl JsrBounds {
    /// Width of the bounding interval.
    pub fn gap(&self) -> f64 {
        self.upper - self.lower
    }

    /// Returns `true` when the bound certifies asymptotic stability
    /// (`ρ < 1`, i.e. `upper < 1`).
    pub fn certifies_stable(&self) -> bool {
        self.upper < 1.0
    }

    /// Returns `true` when the bound certifies instability (`lower ≥ 1`).
    pub fn certifies_unstable(&self) -> bool {
        self.lower >= 1.0
    }
}

impl std::fmt::Display for JsrBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lower, self.upper)
    }
}

/// Verdict of the early-exit stability decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilityVerdict {
    /// `ρ < 1` certified: every switching sequence converges.
    Stable,
    /// `ρ ≥ 1` certified: some switching sequence does not converge.
    Unstable,
    /// The bounds did not separate from 1 within the iteration budget.
    Unknown,
}

impl std::fmt::Display for StabilityVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StabilityVerdict::Stable => write!(f, "stable"),
            StabilityVerdict::Unstable => write!(f, "unstable"),
            StabilityVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Decides asymptotic stability of the switching system defined by `set`,
/// using Gripenberg bounds with the budget in `opts`.
///
/// # Errors
///
/// Propagates numerical errors from the underlying eigenvalue and norm
/// computations.
pub fn decide_stability(set: &MatrixSet, opts: &GripenbergOptions) -> Result<StabilityVerdict> {
    let bounds = gripenberg(set, opts)?;
    if bounds.certifies_stable() {
        Ok(StabilityVerdict::Stable)
    } else if bounds.certifies_unstable() {
        Ok(StabilityVerdict::Unstable)
    } else {
        Ok(StabilityVerdict::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_linalg::Matrix;

    #[test]
    fn bounds_display_and_gap() {
        let b = JsrBounds {
            lower: 0.5,
            upper: 0.75,
        };
        assert!((b.gap() - 0.25).abs() < 1e-15);
        assert!(format!("{b}").contains("0.5"));
        assert!(b.certifies_stable());
        assert!(!b.certifies_unstable());
    }

    #[test]
    fn decide_stability_stable_singleton() {
        let set = MatrixSet::new(vec![Matrix::diag(&[0.5, 0.25])]).unwrap();
        let verdict = decide_stability(&set, &GripenbergOptions::default()).unwrap();
        assert_eq!(verdict, StabilityVerdict::Stable);
    }

    #[test]
    fn decide_stability_unstable_singleton() {
        let set = MatrixSet::new(vec![Matrix::diag(&[1.5, 0.25])]).unwrap();
        let verdict = decide_stability(&set, &GripenbergOptions::default()).unwrap();
        assert_eq!(verdict, StabilityVerdict::Unstable);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(StabilityVerdict::Stable.to_string(), "stable");
        assert_eq!(StabilityVerdict::Unstable.to_string(), "unstable");
        assert_eq!(StabilityVerdict::Unknown.to_string(), "unknown");
    }
}
