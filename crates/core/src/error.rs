use std::fmt;

/// Error type for the adaptive control layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid model or design parameter.
    InvalidConfig(String),
    /// A linear-algebra kernel failed.
    Linalg(overrun_linalg::Error),
    /// The JSR stability machinery failed.
    Jsr(overrun_jsr::Error),
    /// The real-time simulator failed.
    Rtsim(overrun_rtsim::Error),
    /// A controller design step failed (e.g. no stabilising gains found).
    Design(String),
    /// A simulated trajectory diverged (state left the finite range).
    Diverged {
        /// Job index at which divergence was detected.
        at_job: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            Error::Jsr(e) => write!(f, "stability analysis failure: {e}"),
            Error::Rtsim(e) => write!(f, "timing simulation failure: {e}"),
            Error::Design(msg) => write!(f, "controller design failed: {msg}"),
            Error::Diverged { at_job } => {
                write!(f, "closed-loop trajectory diverged at job {at_job}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Jsr(e) => Some(e),
            Error::Rtsim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<overrun_linalg::Error> for Error {
    fn from(e: overrun_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}

impl From<overrun_jsr::Error> for Error {
    fn from(e: overrun_jsr::Error) -> Self {
        Error::Jsr(e)
    }
}

impl From<overrun_rtsim::Error> for Error {
    fn from(e: overrun_rtsim::Error) -> Self {
        Error::Rtsim(e)
    }
}
