//! Brute-force Gel'fand bounds (paper Eq. 12).

use overrun_linalg::{norm_2, spectral_radius, Matrix};

use crate::set::normalize_log;
use crate::{precondition, Error, JsrBounds, MatrixSet, Result};

/// Options for [`bruteforce_bounds`].
#[derive(Debug, Clone)]
pub struct BruteforceOptions {
    /// Maximum product length `m` explored (all `q^ℓ` products for every
    /// `ℓ ≤ m` are visited). Default: 8.
    pub max_depth: usize,
    /// Hard cap on the total number of products formed. Default: 2_000_000.
    pub max_products: usize,
    /// Apply joint diagonal preconditioning first. Default: `true`.
    pub precondition: bool,
}

impl Default for BruteforceOptions {
    fn default() -> Self {
        BruteforceOptions {
            max_depth: 8,
            max_products: 2_000_000,
            precondition: true,
        }
    }
}

/// Computes the two-sided Gel'fand–Berger–Wang bounds of paper Eq. (12):
///
/// ```text
/// max_{ℓ≤m} max_σ ρ(Ω_σ)^{1/ℓ}  ≤  ρ(A)  ≤  min_{ℓ≤m} max_σ ‖Ω_σ‖^{1/ℓ}
/// ```
///
/// by breadth-first enumeration of **all** products `Ω_σ` of length up to
/// `opts.max_depth`. Exact (no pruning), hence exponential in the depth —
/// use [`crate::gripenberg`] for tight bounds on larger alphabets.
///
/// Upper bounds are only taken from *fully enumerated* product lengths, so
/// the result is certified even when the product budget truncates the
/// deepest level.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] on a zero depth.
/// * [`Error::BudgetExhausted`] if `max_products` is hit before even the
///   first level completes.
/// * [`Error::Linalg`] on numerical failure.
///
/// # Example
///
/// ```
/// use overrun_jsr::{bruteforce_bounds, BruteforceOptions, MatrixSet};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// // Pair of commuting diagonal matrices: JSR = max spectral radius = 0.9.
/// let set = MatrixSet::new(vec![Matrix::diag(&[0.9, 0.1]), Matrix::diag(&[0.2, 0.8])])?;
/// let b = bruteforce_bounds(&set, &BruteforceOptions::default())?;
/// assert!(b.lower <= 0.9 + 1e-9 && 0.9 <= b.upper + 1e-9);
/// assert!(b.gap() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn bruteforce_bounds(set: &MatrixSet, opts: &BruteforceOptions) -> Result<JsrBounds> {
    if opts.max_depth == 0 {
        return Err(Error::InvalidOptions("max_depth must be >= 1".into()));
    }
    let work_set;
    let set = if opts.precondition {
        work_set = precondition(set)?.0;
        &work_set
    } else {
        set
    };

    let mut lower = 0.0_f64;
    let mut upper = f64::INFINITY;
    let mut products_formed = 0usize;

    // Level 0: the empty product. Products are stored normalised with their
    // scale in log space so deep levels cannot overflow.
    let mut level: Vec<(Matrix, f64)> = vec![(Matrix::identity(set.dim()), 0.0)];

    for depth in 1..=opts.max_depth {
        let needed = level.len().saturating_mul(set.len());
        if products_formed.saturating_add(needed) > opts.max_products {
            // Cannot complete this level; stop with what we have.
            if depth == 1 {
                return Err(Error::BudgetExhausted {
                    lower,
                    upper: f64::INFINITY,
                });
            }
            break;
        }
        let inv_depth = 1.0 / depth as f64;
        let mut next = Vec::with_capacity(needed);
        let mut level_max_rho = 0.0_f64;
        let mut level_max_norm = 0.0_f64;
        for (p, log_scale) in &level {
            for a in set {
                let q = a.matmul(p)?;
                products_formed += 1;
                let nrm_q = norm_2(&q);
                let norm_pow = if nrm_q > 0.0 {
                    ((nrm_q.ln() + log_scale) * inv_depth).exp()
                } else {
                    0.0
                };
                level_max_norm = level_max_norm.max(norm_pow);
                // ρ(Q) ≤ ‖Q‖: the eigenvalue solve can only raise the lower
                // bound when the norm-based value exceeds it.
                if norm_pow > lower {
                    let rho_q = spectral_radius(&q)?;
                    if rho_q > 0.0 {
                        level_max_rho =
                            level_max_rho.max(((rho_q.ln() + log_scale) * inv_depth).exp());
                    }
                }
                let (scaled, extra) = normalize_log(q, nrm_q);
                next.push((scaled, log_scale + extra));
            }
        }
        lower = lower.max(level_max_rho);
        upper = upper.min(if level_max_norm > 0.0 {
            level_max_norm
        } else {
            0.0
        });
        level = next;
    }

    Ok(JsrBounds { lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(depth: usize) -> BruteforceOptions {
        BruteforceOptions {
            max_depth: depth,
            ..BruteforceOptions::default()
        }
    }

    #[test]
    fn singleton_equals_spectral_radius() {
        let a = Matrix::from_rows(&[&[0.3, 0.8], &[-0.2, 0.5]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let b = bruteforce_bounds(&set, &opts(10)).unwrap();
        assert!(b.lower <= rho + 1e-9);
        assert!(rho <= b.upper + 1e-9);
        assert!(b.gap() < 0.1, "gap = {}", b.gap());
    }

    #[test]
    fn zero_matrices_have_zero_jsr() {
        let set = MatrixSet::new(vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)]).unwrap();
        let b = bruteforce_bounds(&set, &opts(3)).unwrap();
        assert_eq!(b.lower, 0.0);
        assert!(b.upper < 1e-12);
    }

    #[test]
    fn known_pair_with_golden_ratio_jsr() {
        // For A1 = [1 1; 0 1], A2 = [1 0; 1 1] the JSR is the golden ratio
        // φ = (1+√5)/2 = ρ(A1·A2)^{1/2}.
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b = bruteforce_bounds(&set, &opts(12)).unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!(b.lower <= phi + 1e-9, "lower {} vs phi {phi}", b.lower);
        assert!(phi <= b.upper + 1e-9, "upper {} vs phi {phi}", b.upper);
        assert!((b.lower - phi).abs() < 1e-6, "lower should hit phi exactly");
    }

    #[test]
    fn budget_truncation_keeps_completed_levels() {
        let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(2) * 0.5]).unwrap();
        // Budget allows level 1 and 2 only (2 + 4 = 6 < 10 < 6 + 8).
        let b = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 20,
                max_products: 10,
                precondition: false,
            },
        )
        .unwrap();
        assert!((b.lower - 1.0).abs() < 1e-12);
        assert!(b.upper >= 1.0 - 1e-12);
        assert!(b.upper.is_finite());
    }

    #[test]
    fn budget_too_small_for_first_level() {
        let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(2)]).unwrap();
        let res = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 3,
                max_products: 1,
                precondition: false,
            },
        );
        assert!(matches!(res, Err(Error::BudgetExhausted { .. })));
    }

    #[test]
    fn depth_zero_rejected() {
        let set = MatrixSet::new(vec![Matrix::identity(2)]).unwrap();
        assert!(matches!(
            bruteforce_bounds(&set, &opts(0)),
            Err(Error::InvalidOptions(_))
        ));
    }

    #[test]
    fn deeper_depth_never_loosens_bounds() {
        let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b3 = bruteforce_bounds(&set, &opts(3)).unwrap();
        let b6 = bruteforce_bounds(&set, &opts(6)).unwrap();
        assert!(b6.lower >= b3.lower - 1e-12);
        assert!(b6.upper <= b3.upper + 1e-12);
        assert!(b6.lower <= b6.upper + 1e-12);
    }

    #[test]
    fn preconditioning_only_affects_upper_bound_tightness() {
        let a = Matrix::from_rows(&[&[0.5, 1e5], &[1e-6, 0.4]]).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let with = bruteforce_bounds(&set, &opts(4)).unwrap();
        let without = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 4,
                precondition: false,
                ..BruteforceOptions::default()
            },
        )
        .unwrap();
        // Lower bounds are spectral and scale-invariant.
        assert!((with.lower - without.lower).abs() < 1e-6 * with.lower.max(1.0));
        // Preconditioned upper bound must be at least as tight.
        assert!(with.upper <= without.upper + 1e-9);
    }
}
