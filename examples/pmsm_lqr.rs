//! The paper's second case study: an adaptive LQR for a permanent-magnet
//! synchronous motor sampled at 50 µs, compared against the fixed-gain
//! baseline that loses stability under large overruns.
//!
//! ```text
//! cargo run -p overrun-control --example pmsm_lqr --release
//! ```
#![allow(clippy::print_stdout)] // examples exist to print

use overrun_control::lqr;
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::pmsm();
    let t = 50e-6;
    let weights = pmsm_table2_weights();

    // The critical configuration of Table II: Rmax = 1.6 T, Ts = T/2.
    let hset = IntervalSet::from_timing(t, 1.6 * t, 2)?;
    println!(
        "H = {:?} us",
        hset.intervals().iter().map(|h| h * 1e6).collect::<Vec<_>>()
    );

    let adaptive = lqr::design_adaptive(&plant, &hset, &weights)?;
    let fixed_t = lqr::design_fixed(&plant, &hset, &weights, t)?;

    // Certify both: the adaptive table tolerates every overrun pattern,
    // the fixed-T gain provably does not.
    let rep_adaptive = stability::certify(&plant, &adaptive, &Default::default())?;
    let rep_fixed = stability::certify(&plant, &fixed_t, &Default::default())?;
    println!("adaptive design: JSR = {} => {}", rep_adaptive.bounds, rep_adaptive.verdict);
    println!("fixed-T design:  JSR = {} => {}", rep_fixed.bounds, rep_fixed.verdict);

    // Demonstrate the difference on the worst constant pattern: every job
    // overruns to the maximum interval 2T.
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 1.0, 1.0]), 3);
    let worst_modes = vec![hset.len() - 1; 200];
    let sim_a = ClosedLoopSim::new(&plant, &adaptive)?;
    let sim_f = ClosedLoopSim::new(&plant, &fixed_t)?;
    let traj_a = sim_a.run(&scenario, &worst_modes)?;
    let traj_f = sim_f.run(&scenario, &worst_modes)?;
    println!(
        "\n200 jobs at the maximum interval (h = {:.0} us):",
        hset.max_interval() * 1e6
    );
    println!(
        "  adaptive: diverged = {}, final |x| = {:.3e}",
        traj_a.diverged,
        traj_a.states.last().map_or(f64::NAN, |x| x.max_abs())
    );
    println!(
        "  fixed-T:  diverged = {}, final |x| = {:.3e}",
        traj_f.diverged,
        traj_f.states.last().map_or(f64::INFINITY, |x| x.max_abs())
    );

    // And the graceful case: sporadic overruns only.
    let sporadic: Vec<usize> = (0..200).map(|k| if k % 10 == 0 { 2 } else { 0 }).collect();
    let traj_s = sim_a.run(&scenario, &sporadic)?;
    println!(
        "\nadaptive under 10% sporadic overruns: cost = {:.6} (nominal {:.6})",
        traj_s.cost_integral,
        sim_a.run(&scenario, &vec![0; 200])?.cost_integral
    );
    Ok(())
}
