//! Ellipsoidal (quadratic-Lyapunov) norm optimisation.
//!
//! Norm-based JSR upper bounds depend on the norm: for any invertible `L`,
//! `ρ(A) ≤ max_i ‖L A_i L⁻¹‖₂`. This module searches for the ellipsoid
//! (`P = LᵀL`) minimising that bound — a common quadratic Lyapunov
//! certificate when the optimum is below one — and exposes the transform as
//! a preconditioner for [`crate::gripenberg`] / [`crate::bruteforce_bounds`].
//!
//! Two seeds are tried before a Nelder–Mead polish on the entries of the
//! upper-triangular factor `L`:
//!
//! 1. the identity (no transform), and
//! 2. the Lyapunov ellipsoid of the *average* lifted operator: the dominant
//!    eigen-matrix `P` of `X ↦ Σᵢ AᵢᵀXAᵢ`, computed by power iteration —
//!    exactly the certificate behind the Blondel–Nesterov sum bound.

use overrun_linalg::optimize::{nelder_mead, NelderMeadOptions};
use overrun_linalg::{norm_2, spectral_radius, Cholesky, Matrix};

use crate::{Error, JsrBounds, MatrixSet, Result};

/// Options for [`optimize_ellipsoid`].
#[derive(Debug, Clone)]
pub struct EllipsoidOptions {
    /// Nelder–Mead evaluation budget. Default: 4000.
    pub max_evals: usize,
    /// Power-iteration steps for the Lyapunov seed. Default: 500.
    pub seed_iterations: usize,
}

impl Default for EllipsoidOptions {
    fn default() -> Self {
        EllipsoidOptions {
            max_evals: 4000,
            seed_iterations: 500,
        }
    }
}

/// Result of the ellipsoid search.
#[derive(Debug, Clone)]
pub struct Ellipsoid {
    /// Upper-triangular transform `L`; `P = LᵀL` is the ellipsoid matrix.
    pub l: Matrix,
    /// Inverse transform `L⁻¹` (cached for preconditioning).
    pub l_inv: Matrix,
    /// The achieved bound `max_i ‖L Aᵢ L⁻¹‖₂` — a certified JSR upper
    /// bound on its own.
    pub norm_bound: f64,
}

impl Ellipsoid {
    /// Applies the similarity `Aᵢ → L Aᵢ L⁻¹` to a set (JSR-invariant).
    ///
    /// # Errors
    ///
    /// Propagates matrix-multiplication failures.
    pub fn transform(&self, set: &MatrixSet) -> Result<MatrixSet> {
        let scaled = set
            .iter()
            .map(|a| {
                self.l
                    .matmul(a)
                    .and_then(|la| la.matmul(&self.l_inv))
                    .map_err(Error::Linalg)
            })
            .collect::<Result<Vec<_>>>()?;
        MatrixSet::new(scaled)
    }
}

/// The dominant eigen-matrix of the adjoint lifted operator
/// `Φ*(X) = Σᵢ AᵢᵀXAᵢ`, by power iteration from the identity. The result
/// is symmetric positive semidefinite; a small ridge keeps it definite.
fn lyapunov_seed(set: &MatrixSet, iterations: usize) -> Result<Matrix> {
    let n = set.dim();
    let mut x = Matrix::identity(n);
    for _ in 0..iterations {
        let mut next = Matrix::zeros(n, n);
        for a in set {
            next = next.add_mat(&a.transpose().matmul(&x)?.matmul(a)?)?;
        }
        let scale = next.max_abs();
        if scale == 0.0 || !scale.is_finite() {
            return Ok(Matrix::identity(n));
        }
        x = next.scale(1.0 / scale);
        x.symmetrize();
    }
    // Ridge regularisation keeps the Cholesky factor well conditioned.
    let ridge = x.trace().abs().max(1.0) / n as f64 * 1e-8;
    Ok(x + Matrix::identity(n) * ridge)
}

/// Packs an upper-triangular transform into a parameter vector (diagonal
/// entries are stored as logs so they stay positive under optimisation).
fn pack(l: &Matrix) -> Vec<f64> {
    let n = l.rows();
    let mut p = Vec::with_capacity(n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            if i == j {
                p.push(l[(i, j)].max(1e-12).ln());
            } else {
                p.push(l[(i, j)]);
            }
        }
    }
    p
}

fn unpack(p: &[f64], n: usize) -> Matrix {
    let mut l = Matrix::zeros(n, n);
    let mut idx = 0;
    for i in 0..n {
        for j in i..n {
            l[(i, j)] = if i == j { p[idx].exp() } else { p[idx] };
            idx += 1;
        }
    }
    l
}

/// Evaluates `max_i ‖L Aᵢ L⁻¹‖₂`, or `+∞` when `L` is numerically singular.
fn ellipsoid_objective(set: &MatrixSet, l: &Matrix) -> f64 {
    let Ok(l_inv) = l.inverse() else {
        return f64::INFINITY;
    };
    let mut worst: f64 = 0.0;
    for a in set {
        let Ok(la) = l.matmul(a) else {
            return f64::INFINITY;
        };
        let Ok(lal) = la.matmul(&l_inv) else {
            return f64::INFINITY;
        };
        worst = worst.max(norm_2(&lal));
    }
    worst
}

/// Searches for the ellipsoidal norm minimising the one-step JSR upper
/// bound `max_i ‖Aᵢ‖_P`.
///
/// The returned [`Ellipsoid::norm_bound`] is always a *certified* upper
/// bound on the JSR (any induced norm is submultiplicative); when it is
/// below one, `P = LᵀL` is a common quadratic Lyapunov function for the
/// whole switching system.
///
/// # Errors
///
/// Propagates numerical failures.
///
/// # Example
///
/// ```
/// use overrun_jsr::{ellipsoid::optimize_ellipsoid, MatrixSet};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// // A single rotation-scale matrix: spectral radius 0.9 but 2-norm ≈ 2.
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[-0.405, 0.0]])?;
/// let set = MatrixSet::new(vec![a])?;
/// let e = optimize_ellipsoid(&set, &Default::default())?;
/// assert!(e.norm_bound < 1.0); // ellipsoid norm certifies stability
/// # Ok(())
/// # }
/// ```
pub fn optimize_ellipsoid(set: &MatrixSet, opts: &EllipsoidOptions) -> Result<Ellipsoid> {
    let n = set.dim();

    // Candidate seeds: the identity, and the ellipsoid of the averaged
    // lifted operator. With P = L_c·L_cᵀ (Cholesky), the transform whose
    // 2-norm realises ‖x‖_P = ‖L_cᵀ x‖ is the upper-triangular L_cᵀ —
    // matching the upper-triangular parametrisation.
    let mut candidates: Vec<Matrix> = vec![Matrix::identity(n)];
    if let Ok(p_seed) = lyapunov_seed(set, opts.seed_iterations) {
        if let Ok(chol) = Cholesky::new(&p_seed) {
            candidates.push(chol.l().transpose());
        }
    }

    let mut best: Option<(Matrix, f64)> = None;
    for seed in candidates {
        let f0 = ellipsoid_objective(set, &seed);
        let start = pack(&seed);
        let result = nelder_mead(
            |p| ellipsoid_objective(set, &unpack(p, n)),
            &start,
            &NelderMeadOptions {
                max_evals: opts.max_evals / 2,
                f_tol: 1e-12,
                initial_step: 0.2,
            },
        )?;
        let (l_cand, f_cand) = if result.f < f0 {
            (unpack(&result.x, n), result.f)
        } else {
            (seed, f0)
        };
        match &best {
            Some((_, f)) if *f <= f_cand => {}
            _ => best = Some((l_cand, f_cand)),
        }
    }

    let (l, norm_bound) = best.expect("at least the identity seed is evaluated");
    let l_inv = l.inverse()?;
    Ok(Ellipsoid {
        l,
        l_inv,
        norm_bound,
    })
}

/// The Blondel–Nesterov semidefinite-lifting bounds:
///
/// ```text
/// sqrt(ρ(Σᵢ Aᵢ⊗Aᵢ) / q)  ≤  ρ(A)  ≤  sqrt(ρ(Σᵢ Aᵢ⊗Aᵢ))
/// ```
///
/// Cheap (one eigenvalue problem of size `n²`) and sometimes much tighter
/// than first-level norms; used as an additional cut in
/// [`crate::gripenberg`]-based certification pipelines.
///
/// # Errors
///
/// Propagates eigenvalue-computation failures.
pub fn kronecker_sum_bounds(set: &MatrixSet) -> Result<JsrBounds> {
    let n = set.dim();
    let mut s = Matrix::zeros(n * n, n * n);
    for a in set {
        s = s.add_mat(&a.kron(a))?;
    }
    let rho = spectral_radius(&s)?;
    Ok(JsrBounds {
        lower: (rho / set.len() as f64).max(0.0).sqrt(),
        upper: rho.max(0.0).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rotation_scale_certified() {
        // ρ = 0.9, but ‖A‖₂ = 2: only a non-trivial ellipsoid certifies.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[-0.405, 0.0]]).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
        assert!(e.norm_bound < 1.0, "bound = {}", e.norm_bound);
        assert!(e.norm_bound >= 0.9 - 1e-6);
    }

    #[test]
    fn transform_preserves_spectra() {
        let a1 = Matrix::from_rows(&[&[0.5, 1.0], &[0.0, 0.3]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.2, 0.0], &[1.0, 0.4]]).unwrap();
        let set = MatrixSet::new(vec![a1.clone(), a2]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
        let t = e.transform(&set).unwrap();
        for (orig, tr) in set.iter().zip(t.iter()) {
            let r0 = spectral_radius(orig).unwrap();
            let r1 = spectral_radius(tr).unwrap();
            assert!((r0 - r1).abs() < 1e-8 * r0.max(1.0));
        }
    }

    #[test]
    fn norm_bound_is_valid_upper_bound() {
        // Compare against brute-force lower bound.
        let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
        let bf = crate::bruteforce_bounds(
            &set,
            &crate::BruteforceOptions {
                max_depth: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(e.norm_bound >= bf.lower - 1e-9);
    }

    #[test]
    fn kronecker_bounds_sandwich_singleton() {
        let a = Matrix::from_rows(&[&[0.3, 0.7], &[-0.5, 0.2]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let b = kronecker_sum_bounds(&set).unwrap();
        // For a singleton, ρ(A⊗A) = ρ(A)² exactly: both bounds collapse.
        assert!((b.lower - rho).abs() < 1e-8, "{b:?} vs {rho}");
        assert!((b.upper - rho).abs() < 1e-8);
    }

    #[test]
    fn kronecker_bounds_contain_true_jsr_for_diagonals() {
        let set = MatrixSet::new(vec![
            Matrix::diag(&[0.9, 0.1]),
            Matrix::diag(&[0.1, 0.8]),
        ])
        .unwrap();
        let b = kronecker_sum_bounds(&set).unwrap();
        assert!(b.lower <= 0.9 + 1e-9);
        assert!(b.upper >= 0.9 - 1e-9);
    }

    #[test]
    fn identity_seed_never_worse_than_identity() {
        // The optimiser must return a bound no worse than the plain 2-norm.
        let a = Matrix::from_rows(&[&[0.9, 5.0], &[0.0, 0.8]]).unwrap();
        let plain = norm_2(&a);
        let set = MatrixSet::new(vec![a]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
        assert!(e.norm_bound <= plain + 1e-9);
        // And it should improve substantially on this shear matrix.
        assert!(e.norm_bound < 0.5 * plain, "bound = {}", e.norm_bound);
    }
}
