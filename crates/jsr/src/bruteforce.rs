//! Brute-force Gel'fand bounds (paper Eq. 12).

use overrun_linalg::{norm_2, spectral_radius, Matrix};

use crate::screen::{scale_pow, scaled_cheap_bounds, ScreenCounters, ScreenStats};
use crate::set::normalize_log;
use crate::{precondition, Error, JsrBounds, MatrixSet, Result};

/// Options for [`bruteforce_bounds`].
#[derive(Debug, Clone)]
pub struct BruteforceOptions {
    /// Maximum product length `m` explored (all `q^ℓ` products for every
    /// `ℓ ≤ m` are visited). Default: 8.
    pub max_depth: usize,
    /// Hard cap on the total number of products formed. Default: 2_000_000.
    pub max_products: usize,
    /// Apply joint diagonal preconditioning first. Default: `true`.
    pub precondition: bool,
    /// Screen exact Schur evaluations with the O(n²) certified bounds.
    /// Bitwise-neutral: every skipped evaluation is proven unable to move
    /// either level maximum (see [`crate::screen`]). Default: `true`.
    pub screen: bool,
}

impl Default for BruteforceOptions {
    fn default() -> Self {
        BruteforceOptions {
            max_depth: 8,
            max_products: 2_000_000,
            precondition: true,
            screen: true,
        }
    }
}

/// Computes the two-sided Gel'fand–Berger–Wang bounds of paper Eq. (12):
///
/// ```text
/// max_{ℓ≤m} max_σ ρ(Ω_σ)^{1/ℓ}  ≤  ρ(A)  ≤  min_{ℓ≤m} max_σ ‖Ω_σ‖^{1/ℓ}
/// ```
///
/// by breadth-first enumeration of **all** products `Ω_σ` of length up to
/// `opts.max_depth`. Exact (no pruning), hence exponential in the depth —
/// use [`crate::gripenberg`] for tight bounds on larger alphabets.
///
/// Upper bounds are only taken from *fully enumerated* product lengths, so
/// the result is certified even when the product budget truncates the
/// deepest level.
///
/// # Errors
///
/// * [`Error::InvalidOptions`] on a zero depth.
/// * [`Error::BudgetExhausted`] if `max_products` is hit before even the
///   first level completes.
/// * [`Error::Linalg`] on numerical failure.
///
/// # Example
///
/// ```
/// use overrun_jsr::{bruteforce_bounds, BruteforceOptions, MatrixSet};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_jsr::Error> {
/// // Pair of commuting diagonal matrices: JSR = max spectral radius = 0.9.
/// let set = MatrixSet::new(vec![Matrix::diag(&[0.9, 0.1]), Matrix::diag(&[0.2, 0.8])])?;
/// let b = bruteforce_bounds(&set, &BruteforceOptions::default())?;
/// assert!(b.lower <= 0.9 + 1e-9 && 0.9 <= b.upper + 1e-9);
/// assert!(b.gap() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn bruteforce_bounds(set: &MatrixSet, opts: &BruteforceOptions) -> Result<JsrBounds> {
    Ok(bruteforce_bounds_with_stats(set, opts)?.0)
}

/// Like [`bruteforce_bounds`], additionally returning the screening
/// statistics of the enumeration.
///
/// The returned bounds are bit-identical to [`bruteforce_bounds`] under the
/// same options, with screening on or off: skips happen only where the
/// exact value provably could not move a level maximum. Skip decisions on
/// the lower-bound side use the gate `max(lower, level_max_rho)` — a value
/// at or below it folds into `level_max_rho` without affecting the level's
/// `lower = max(lower, level_max_rho)` update or any later gate.
///
/// # Errors
///
/// Same as [`bruteforce_bounds`].
pub fn bruteforce_bounds_with_stats(
    set: &MatrixSet,
    opts: &BruteforceOptions,
) -> Result<(JsrBounds, ScreenStats)> {
    if opts.max_depth == 0 {
        return Err(Error::InvalidOptions("max_depth must be >= 1".into()));
    }
    let work_set;
    let set = if opts.precondition {
        work_set = precondition(set)?.0;
        &work_set
    } else {
        set
    };

    let mut lower = 0.0_f64;
    let mut upper = f64::INFINITY;
    let mut products_formed = 0usize;
    let counters = ScreenCounters::default();
    let mut lb_depth = 0usize;

    // Level 0: the empty product. Products are stored normalised with their
    // scale in log space so deep levels cannot overflow.
    let mut level: Vec<(Matrix, f64)> = vec![(Matrix::identity(set.dim()), 0.0)];

    for depth in 1..=opts.max_depth {
        let needed = level.len().saturating_mul(set.len());
        let after_level = products_formed.saturating_add(needed);
        if after_level > opts.max_products {
            // Cannot complete this level; stop with what we have.
            if depth == 1 {
                return Err(Error::BudgetExhausted {
                    lower,
                    upper: f64::INFINITY,
                });
            }
            break;
        }
        // A level is terminal when its children can never be consumed: the
        // depth cap is reached, or the next level's product count (every
        // child times the alphabet) would trip the budget check above.
        let terminal = depth == opts.max_depth
            || after_level.saturating_add(needed.saturating_mul(set.len())) > opts.max_products;
        let inv_depth = 1.0 / depth as f64;
        // Depth 1 multiplies by the identity: `norm_2(A·I)` is bit-identical
        // to the cached `norm_2(A)` held by the set.
        let cached = depth == 1;
        let mut next = if terminal {
            Vec::new()
        } else {
            Vec::with_capacity(needed)
        };
        let mut level_max_rho = 0.0_f64;
        let mut level_max_norm = 0.0_f64;
        for (p, log_scale) in &level {
            for (a, &base_nrm) in set.iter().zip(set.norms()) {
                let q = a.matmul(p)?;
                products_formed += 1;
                counters.node();
                let gate = lower.max(level_max_rho);
                let (nrm_hi, rho_hi) = if opts.screen {
                    scaled_cheap_bounds(&q, *log_scale, inv_depth)
                } else {
                    (f64::INFINITY, f64::INFINITY)
                };
                // On a terminal level children are never consumed, so a node
                // whose cheap bounds cannot move either level maximum is a
                // provable no-op and can be dropped before the exact norm.
                // The eigenvalue solve is a no-op either when the radius
                // bound folds below the gate or when `nrm_hi ≤ lower` makes
                // the `norm_pow > lower` gate below provably false.
                if !cached
                    && terminal
                    && nrm_hi <= level_max_norm
                    && (rho_hi <= gate || nrm_hi <= lower)
                {
                    counters.skip_norm();
                    counters.skip_eig();
                    continue;
                }
                let nrm_q = if cached {
                    counters.cached_norm();
                    base_nrm
                } else {
                    counters.exact_norm();
                    norm_2(&q)
                };
                let norm_pow = scale_pow(nrm_q, *log_scale, inv_depth);
                level_max_norm = level_max_norm.max(norm_pow);
                // ρ(Q) ≤ ‖Q‖: the eigenvalue solve can only raise the lower
                // bound when the norm-based value exceeds it.
                if norm_pow > lower {
                    if rho_hi <= gate {
                        counters.skip_eig();
                    } else {
                        counters.exact_eig();
                        let rho_q = spectral_radius(&q)?;
                        level_max_rho = level_max_rho.max(scale_pow(rho_q, *log_scale, inv_depth));
                    }
                }
                if !terminal {
                    let (scaled, extra) = normalize_log(q, nrm_q);
                    next.push((scaled, log_scale + extra));
                }
            }
        }
        let new_lower = lower.max(level_max_rho);
        if new_lower > lower {
            lb_depth = depth;
        }
        lower = new_lower;
        upper = upper.min(if level_max_norm > 0.0 {
            level_max_norm
        } else {
            0.0
        });
        if terminal {
            break;
        }
        level = next;
    }

    Ok((JsrBounds { lower, upper }, counters.snapshot(lb_depth)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(depth: usize) -> BruteforceOptions {
        BruteforceOptions {
            max_depth: depth,
            ..BruteforceOptions::default()
        }
    }

    #[test]
    fn singleton_equals_spectral_radius() {
        let a = Matrix::from_rows(&[&[0.3, 0.8], &[-0.2, 0.5]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let b = bruteforce_bounds(&set, &opts(10)).unwrap();
        assert!(b.lower <= rho + 1e-9);
        assert!(rho <= b.upper + 1e-9);
        assert!(b.gap() < 0.1, "gap = {}", b.gap());
    }

    #[test]
    fn zero_matrices_have_zero_jsr() {
        let set = MatrixSet::new(vec![Matrix::zeros(2, 2), Matrix::zeros(2, 2)]).unwrap();
        let b = bruteforce_bounds(&set, &opts(3)).unwrap();
        assert_eq!(b.lower, 0.0);
        assert!(b.upper < 1e-12);
    }

    #[test]
    fn known_pair_with_golden_ratio_jsr() {
        // For A1 = [1 1; 0 1], A2 = [1 0; 1 1] the JSR is the golden ratio
        // φ = (1+√5)/2 = ρ(A1·A2)^{1/2}.
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let a2 = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b = bruteforce_bounds(&set, &opts(12)).unwrap();
        let phi = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!(b.lower <= phi + 1e-9, "lower {} vs phi {phi}", b.lower);
        assert!(phi <= b.upper + 1e-9, "upper {} vs phi {phi}", b.upper);
        assert!((b.lower - phi).abs() < 1e-6, "lower should hit phi exactly");
    }

    #[test]
    fn budget_truncation_keeps_completed_levels() {
        let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(2) * 0.5]).unwrap();
        // Budget allows level 1 and 2 only (2 + 4 = 6 < 10 < 6 + 8).
        let b = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 20,
                max_products: 10,
                precondition: false,
                screen: true,
            },
        )
        .unwrap();
        assert!((b.lower - 1.0).abs() < 1e-12);
        assert!(b.upper >= 1.0 - 1e-12);
        assert!(b.upper.is_finite());
    }

    #[test]
    fn budget_too_small_for_first_level() {
        let set = MatrixSet::new(vec![Matrix::identity(2), Matrix::identity(2)]).unwrap();
        let res = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 3,
                max_products: 1,
                precondition: false,
                screen: true,
            },
        );
        assert!(matches!(res, Err(Error::BudgetExhausted { .. })));
    }

    #[test]
    fn depth_zero_rejected() {
        let set = MatrixSet::new(vec![Matrix::identity(2)]).unwrap();
        assert!(matches!(
            bruteforce_bounds(&set, &opts(0)),
            Err(Error::InvalidOptions(_))
        ));
    }

    #[test]
    fn deeper_depth_never_loosens_bounds() {
        let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2]).unwrap();
        let b3 = bruteforce_bounds(&set, &opts(3)).unwrap();
        let b6 = bruteforce_bounds(&set, &opts(6)).unwrap();
        assert!(b6.lower >= b3.lower - 1e-12);
        assert!(b6.upper <= b3.upper + 1e-12);
        assert!(b6.lower <= b6.upper + 1e-12);
    }

    #[test]
    fn screening_is_bitwise_neutral_and_skips_work() {
        let a1 = Matrix::from_rows(&[&[0.6, 0.4], &[-0.2, 0.7]]).unwrap();
        let a2 = Matrix::from_rows(&[&[0.5, -0.3], &[0.4, 0.6]]).unwrap();
        let a3 = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let set = MatrixSet::new(vec![a1, a2, a3]).unwrap();
        let on = BruteforceOptions {
            max_depth: 7,
            ..BruteforceOptions::default()
        };
        let off = BruteforceOptions {
            screen: false,
            ..on.clone()
        };
        let (b_on, s_on) = bruteforce_bounds_with_stats(&set, &on).unwrap();
        let (b_off, s_off) = bruteforce_bounds_with_stats(&set, &off).unwrap();
        assert_eq!(b_on.lower.to_bits(), b_off.lower.to_bits());
        assert_eq!(b_on.upper.to_bits(), b_off.upper.to_bits());
        assert_eq!(s_on.lb_depth, s_off.lb_depth);
        assert_eq!(s_on.nodes, s_off.nodes, "screening must not prune nodes");
        assert_eq!(s_off.schur_skipped(), 0);
        assert!(
            s_on.schur_evals() < s_off.schur_evals(),
            "screening saved nothing: on={s_on} off={s_off}"
        );
        // Depth-1 norms come from the set cache in both modes.
        assert_eq!(s_on.cached_norms, 3);
        assert_eq!(s_off.cached_norms, 3);
    }

    #[test]
    fn preconditioning_only_affects_upper_bound_tightness() {
        let a = Matrix::from_rows(&[&[0.5, 1e5], &[1e-6, 0.4]]).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let with = bruteforce_bounds(&set, &opts(4)).unwrap();
        let without = bruteforce_bounds(
            &set,
            &BruteforceOptions {
                max_depth: 4,
                precondition: false,
                ..BruteforceOptions::default()
            },
        )
        .unwrap();
        // Lower bounds are spectral and scale-invariant.
        assert!((with.lower - without.lower).abs() < 1e-6 * with.lower.max(1.0));
        // Preconditioned upper bound must be at least as tight.
        assert!(with.upper <= without.upper + 1e-9);
    }
}
