//! Weakly-hard rescue: a fixed-gain design that fails the
//! arbitrary-switching stability test can still be certified when the
//! platform guarantees a weakly-hard overrun contract ("no two consecutive
//! overruns") — connecting the paper's analysis to the weakly-hard model
//! it discusses in Sec. II.
//!
//! ```text
//! cargo run -p overrun-control --example weakly_hard --release
//! ```
#![allow(clippy::print_stdout)] // examples exist to print

use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_rtsim::{
    empirical_contract, ExecutionModel, Scheduler, SchedulerConfig, Span, Task, WeaklyHard,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The critical Table-II configuration: fixed-T LQR on the PMSM with
    // overruns up to 2T is certified UNSTABLE under arbitrary switching.
    let plant = plants::pmsm();
    let t = 50e-6;
    let hset = IntervalSet::from_timing(t, 1.6 * t, 2)?;
    let fixed_t = lqr::design_fixed(&plant, &hset, &pmsm_table2_weights(), t)?;

    let free = stability::certify(&plant, &fixed_t, &Default::default())?;
    println!("arbitrary switching:        JSR = {} => {}", free.bounds, free.verdict);

    // Under a weakly-hard (1, 2) contract — no two consecutive overruns —
    // the admissible switching language shrinks and the same design is
    // certified stable.
    let contract = WeaklyHard::new(1, 2);
    let no_consecutive = |prev: usize, next: usize| !(prev > 0 && next > 0);
    let constrained =
        stability::certify_constrained(&plant, &fixed_t, &no_consecutive, 14)?;
    println!(
        "under weakly-hard {contract}:    JSR = {} => {}",
        constrained.bounds, constrained.verdict
    );

    // Does a realistic platform actually honour that contract? Simulate a
    // loaded system and extract the empirical weakly-hard behaviour.
    let tasks = vec![
        Task::new(
            "dma",
            Span::from_micros(300),
            0,
            ExecutionModel::Bimodal {
                min: Span::from_micros(10),
                max: Span::from_micros(20),
                heavy_min: Span::from_micros(55),
                heavy_max: Span::from_micros(70),
                heavy_prob: 0.08,
            },
        ),
        Task::new(
            "control",
            Span::from_micros(50),
            1,
            ExecutionModel::Uniform {
                min: Span::from_micros(15),
                max: Span::from_micros(30),
            },
        ),
    ];
    let sched = Scheduler::new(tasks)?;
    let ctl = sched.task_id("control").expect("control task");
    let sched = sched.with_adaptive_task(ctl, 2)?;
    let trace = sched.run_control_trace(&SchedulerConfig {
        horizon: Span::from_millis(50),
        seed: 4,
    })?;
    let observed = empirical_contract(&trace, 2);
    println!(
        "\nsimulated platform: {} jobs, {} overruns, empirical weakly-hard contract over K=2: {observed}",
        trace.jobs.len(),
        trace.overrun_count(),
    );
    if observed.m <= contract.m {
        println!("=> the platform honours {contract}; the constrained certificate applies.");
    } else {
        println!("=> the platform violates {contract}; fall back to the adaptive design.");
    }
    Ok(())
}
