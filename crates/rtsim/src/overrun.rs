//! The paper's overrun-adaptive release policy (Sec. IV-A).

use crate::{Error, Result, Span, Time};

/// The continuous-stream-inspired release policy of the paper.
///
/// A control task with nominal period `T` samples sensors on a grid of
/// period `Ts = T / Ns`. When job `k` finishes within `T`, the next job is
/// released at `a_k + T`. When it overruns (`R_k > T`), the overrunning job
/// is allowed to complete and the next job is released at the first sensor
/// instant after the finishing time: `a_{k+1} = a_k + ⌈R_k / Ts⌉ · Ts`
/// (paper Sec. IV-A). The resulting inter-release interval is
/// `h_k = T + Δ_k ∈ H` with `H = {T + i·Ts : 0 ≤ i ≤ ⌈(Rmax − T)/Ts⌉}`
/// (paper Eq. 3).
///
/// # Example
///
/// ```
/// use overrun_rtsim::{OverrunPolicy, Span};
///
/// # fn main() -> Result<(), overrun_rtsim::Error> {
/// let policy = OverrunPolicy::new(Span::from_millis(10), 2)?;
/// let h = policy.interval_set(Span::from_millis(16))?;
/// // H = {10, 15, 20} ms (Ts = 5 ms, ⌈6/5⌉ = 2)
/// assert_eq!(h, vec![Span::from_millis(10), Span::from_millis(15), Span::from_millis(20)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverrunPolicy {
    period: Span,
    sensor_period: Span,
    ns: u32,
}

impl OverrunPolicy {
    /// Creates a policy with control period `period` and oversampling factor
    /// `ns` (`Ts = period / ns`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `period` is zero, `ns` is zero,
    /// or `period` is not divisible by `ns` (the sensor grid must be exact).
    pub fn new(period: Span, ns: u32) -> Result<Self> {
        if period.is_zero() {
            return Err(Error::InvalidConfig("control period is zero".into()));
        }
        if ns == 0 {
            return Err(Error::InvalidConfig("oversampling factor Ns is zero".into()));
        }
        let sensor_period = match period.checked_div_exact(Span::from_nanos(ns as u64)) {
            Some(q) => Span::from_nanos(q),
            None => {
                return Err(Error::InvalidConfig(format!(
                    "period {period} is not divisible by Ns = {ns}"
                )))
            }
        };
        Ok(OverrunPolicy {
            period,
            sensor_period,
            ns,
        })
    }

    /// Nominal control period `T`.
    pub fn period(&self) -> Span {
        self.period
    }

    /// Sensor sampling period `Ts = T / Ns`.
    pub fn sensor_period(&self) -> Span {
        self.sensor_period
    }

    /// Oversampling factor `Ns`.
    pub fn ns(&self) -> u32 {
        self.ns
    }

    /// The inter-release interval `h_k` induced by a job with response time
    /// `response` (paper Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero response time.
    pub fn next_interval(&self, response: Span) -> Result<Span> {
        if response.is_zero() {
            return Err(Error::InvalidConfig("job response time is zero".into()));
        }
        if response <= self.period {
            Ok(self.period)
        } else {
            Ok(self.sensor_period * response.div_ceil(self.sensor_period))
        }
    }

    /// The overrun-induced extra delay `Δ_k = h_k − T`.
    ///
    /// # Errors
    ///
    /// Propagates [`OverrunPolicy::next_interval`] errors.
    pub fn delta(&self, response: Span) -> Result<Span> {
        Ok(self.next_interval(response)? - self.period)
    }

    /// The full set `H` of admissible inter-release intervals for a given
    /// worst-case response time (paper Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `rmax` is zero.
    pub fn interval_set(&self, rmax: Span) -> Result<Vec<Span>> {
        if rmax.is_zero() {
            return Err(Error::InvalidConfig("Rmax is zero".into()));
        }
        let i_max = if rmax <= self.period {
            0
        } else {
            (rmax - self.period).div_ceil(self.sensor_period)
        };
        Ok((0..=i_max)
            .map(|i| self.period + self.sensor_period * i)
            .collect())
    }

    /// Maximum extra delay `Δmax = ⌈(Rmax − T)/Ts⌉ · Ts`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `rmax` is zero.
    pub fn delta_max(&self, rmax: Span) -> Result<Span> {
        let set = self.interval_set(rmax)?;
        Ok(*set.last().expect("interval set is never empty") - self.period)
    }

    /// The deployment check of paper Sec. V-B: a controller certified for
    /// worst-case response time `designed_rmax` remains certified on a
    /// platform whose actual worst case is `actual_rmax` iff the actual
    /// interval set is a subset of the designed one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either bound is zero.
    pub fn deployment_compatible(&self, designed_rmax: Span, actual_rmax: Span) -> Result<bool> {
        let designed = self.interval_set(designed_rmax)?;
        let actual = self.interval_set(actual_rmax)?;
        Ok(actual.iter().all(|h| designed.contains(h)))
    }

    /// Applies the policy to a whole sequence of response times, producing
    /// the release/finish timeline (the discrete skeleton of Figure 1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero response times.
    pub fn apply(&self, responses: &[Span]) -> Result<ReleaseTrace> {
        let mut jobs = Vec::with_capacity(responses.len());
        let mut release = Time::ZERO;
        for (index, &response) in responses.iter().enumerate() {
            let interval = self.next_interval(response)?;
            let record = JobRecord {
                index,
                release,
                finish: release + response,
                response,
                interval,
                delta: interval - self.period,
                overran: response > self.period,
            };
            release += interval;
            jobs.push(record);
        }
        // Batched per call so the per-job loop above stays trace-free.
        overrun_trace::counter!("rtsim.jobs", jobs.len() as u64);
        overrun_trace::counter!(
            "rtsim.overruns",
            jobs.iter().filter(|j| j.overran).count() as u64
        );
        Ok(ReleaseTrace {
            jobs,
            period: self.period,
            sensor_period: self.sensor_period,
        })
    }
}

/// One control job in a release timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Zero-based job index (`k`).
    pub index: usize,
    /// Release instant `a_k`.
    pub release: Time,
    /// Finishing instant `f_k = a_k + R_k`.
    pub finish: Time,
    /// Response time `R_k`.
    pub response: Span,
    /// Inter-release interval `h_k = a_{k+1} − a_k`.
    pub interval: Span,
    /// Overrun-induced delay `Δ_k = h_k − T`.
    pub delta: Span,
    /// Whether the job overran its nominal period.
    pub overran: bool,
}

/// A sequence of control jobs produced by [`OverrunPolicy::apply`] or by the
/// scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseTrace {
    /// Jobs in release order.
    pub jobs: Vec<JobRecord>,
    /// Nominal control period `T`.
    pub period: Span,
    /// Sensor period `Ts`.
    pub sensor_period: Span,
}

impl ReleaseTrace {
    /// The `h_k` sequence, ready to drive the control-layer simulation.
    pub fn intervals(&self) -> Vec<Span> {
        self.jobs.iter().map(|j| j.interval).collect()
    }

    /// Number of jobs that overran.
    pub fn overrun_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.overran).count()
    }

    /// Checks the structural invariants the paper's analysis relies on:
    /// every release lies on the sensor grid, intervals belong to
    /// `{T + i·Ts}`, and releases never precede the previous finish when the
    /// previous job overran.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] describing the first violation.
    pub fn check_invariants(&self) -> Result<()> {
        for (k, job) in self.jobs.iter().enumerate() {
            if job.release.as_nanos() % self.sensor_period.as_nanos() != 0 {
                return Err(Error::Invariant(format!(
                    "job {k} released off the sensor grid at {}",
                    job.release
                )));
            }
            if job.interval < self.period {
                return Err(Error::Invariant(format!(
                    "job {k} has interval {} below the period {}",
                    job.interval, self.period
                )));
            }
            let excess = job.interval - self.period;
            if !excess.as_nanos().is_multiple_of(self.sensor_period.as_nanos()) {
                return Err(Error::Invariant(format!(
                    "job {k} interval {} is not on the T + i·Ts grid",
                    job.interval
                )));
            }
            if k + 1 < self.jobs.len() {
                let next = &self.jobs[k + 1];
                if next.release != job.release + job.interval {
                    return Err(Error::Invariant(format!(
                        "job {} release does not match job {k} interval",
                        k + 1
                    )));
                }
                if job.overran && next.release < job.finish {
                    return Err(Error::Invariant(format!(
                        "job {} released before job {k} finished",
                        k + 1
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_10ms_ns5() -> OverrunPolicy {
        OverrunPolicy::new(Span::from_millis(10), 5).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(OverrunPolicy::new(Span::ZERO, 5).is_err());
        assert!(OverrunPolicy::new(Span::from_millis(10), 0).is_err());
        assert!(OverrunPolicy::new(Span::from_nanos(10), 3).is_err()); // 10 % 3 != 0
        let p = policy_10ms_ns5();
        assert_eq!(p.sensor_period(), Span::from_millis(2));
        assert_eq!(p.ns(), 5);
        assert_eq!(p.period(), Span::from_millis(10));
    }

    #[test]
    fn nominal_jobs_keep_period() {
        let p = policy_10ms_ns5();
        assert_eq!(p.next_interval(Span::from_millis(3)).unwrap(), Span::from_millis(10));
        assert_eq!(p.next_interval(Span::from_millis(10)).unwrap(), Span::from_millis(10));
        assert_eq!(p.delta(Span::from_millis(3)).unwrap(), Span::ZERO);
    }

    #[test]
    fn overruns_round_up_to_sensor_grid() {
        let p = policy_10ms_ns5();
        // R = 10.5 ms ⇒ ⌈10.5/2⌉·2 = 12 ms
        assert_eq!(
            p.next_interval(Span::from_micros(10_500)).unwrap(),
            Span::from_millis(12)
        );
        // R = 12 ms exactly ⇒ 12 ms
        assert_eq!(
            p.next_interval(Span::from_millis(12)).unwrap(),
            Span::from_millis(12)
        );
        // R = 12.001 ms ⇒ 14 ms
        assert_eq!(
            p.next_interval(Span::from_micros(12_001)).unwrap(),
            Span::from_millis(14)
        );
        assert_eq!(
            p.delta(Span::from_micros(10_500)).unwrap(),
            Span::from_millis(2)
        );
    }

    #[test]
    fn zero_response_rejected() {
        assert!(policy_10ms_ns5().next_interval(Span::ZERO).is_err());
    }

    #[test]
    fn interval_set_matches_eq3() {
        let p = policy_10ms_ns5();
        // Rmax = 1.3 T = 13 ms: i_max = ⌈3/2⌉ = 2 ⇒ H = {10, 12, 14} ms
        let h = p.interval_set(Span::from_millis(13)).unwrap();
        assert_eq!(
            h,
            vec![
                Span::from_millis(10),
                Span::from_millis(12),
                Span::from_millis(14)
            ]
        );
        // Rmax below T: H = {T}
        assert_eq!(
            p.interval_set(Span::from_millis(5)).unwrap(),
            vec![Span::from_millis(10)]
        );
        assert_eq!(p.delta_max(Span::from_millis(13)).unwrap(), Span::from_millis(4));
        assert!(p.interval_set(Span::ZERO).is_err());
    }

    #[test]
    fn skip_next_when_ns_is_one() {
        // Ns = 1 reduces to the skip-next strategy: intervals are multiples
        // of T.
        let p = OverrunPolicy::new(Span::from_millis(10), 1).unwrap();
        assert_eq!(
            p.next_interval(Span::from_millis(11)).unwrap(),
            Span::from_millis(20)
        );
        assert_eq!(
            p.next_interval(Span::from_millis(21)).unwrap(),
            Span::from_millis(30)
        );
    }

    #[test]
    fn every_response_maps_into_interval_set() {
        let p = policy_10ms_ns5();
        let rmax = Span::from_millis(16);
        let h = p.interval_set(rmax).unwrap();
        for r_us in (1_000..=16_000).step_by(37) {
            let r = Span::from_micros(r_us);
            let interval = p.next_interval(r).unwrap();
            assert!(h.contains(&interval), "R = {r} gave h = {interval} not in H");
        }
    }

    #[test]
    fn apply_builds_figure1_skeleton() {
        // Reproduce the Figure 1 scenario: job 2 overruns past 2T.
        let p = OverrunPolicy::new(Span::from_millis(8), 8).unwrap(); // Ts = 1 ms
        let responses = [
            Span::from_millis(6),  // fits
            Span::from_micros(9_500), // overruns: next release at ⌈9.5⌉ = 10 ms after a_2
            Span::from_millis(7),
        ];
        let trace = p.apply(&responses).unwrap();
        trace.check_invariants().unwrap();
        assert_eq!(trace.jobs[0].release, Time::ZERO);
        assert_eq!(trace.jobs[1].release, Time::from_nanos(8_000_000));
        // a_3 = a_2 + 10 ms = 18 ms
        assert_eq!(trace.jobs[2].release, Time::from_nanos(18_000_000));
        assert_eq!(trace.overrun_count(), 1);
        assert_eq!(trace.intervals()[1], Span::from_millis(10));
    }

    #[test]
    fn deployment_check_subset_rule() {
        let p = policy_10ms_ns5();
        // Designed for Rmax = 16 ms; actual platform reaches only 13 ms.
        assert!(p
            .deployment_compatible(Span::from_millis(16), Span::from_millis(13))
            .unwrap());
        // Actual worse than designed: incompatible.
        assert!(!p
            .deployment_compatible(Span::from_millis(13), Span::from_millis(16))
            .unwrap());
        // Equal grids compatible.
        assert!(p
            .deployment_compatible(Span::from_millis(13), Span::from_millis(13))
            .unwrap());
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let p = policy_10ms_ns5();
        let mut trace = p
            .apply(&[Span::from_millis(5), Span::from_millis(5)])
            .unwrap();
        trace.jobs[1].release = Time::from_nanos(1); // off-grid
        assert!(trace.check_invariants().is_err());
    }
}
