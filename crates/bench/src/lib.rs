//! Shared plumbing for the `overrun` benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! DATE 2021 paper (see `DESIGN.md` for the experiment index); this library
//! holds the small amount of shared argument-parsing and output logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

/// Command-line options shared by the experiment binaries.
///
/// Supported flags:
/// * `--sequences N` — random sequences per configuration (default: the
///   paper's 50 000),
/// * `--jobs N` — jobs per sequence (default 50),
/// * `--seed N` — RNG seed (default 2021),
/// * `--quick` — 500 sequences, for smoke runs,
/// * `--out DIR` — directory for CSV output (default `bench_results`).
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Random sequences per configuration.
    pub sequences: usize,
    /// Jobs per sequence.
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            sequences: 50_000,
            jobs: 50,
            seed: 2021,
            out_dir: PathBuf::from("bench_results"),
        }
    }
}

impl RunArgs {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = RunArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--sequences" => {
                    out.sequences = next_value(&mut it, "--sequences")?;
                }
                "--jobs" => {
                    out.jobs = next_value(&mut it, "--jobs")?;
                }
                "--seed" => {
                    out.seed = next_value(&mut it, "--seed")?;
                }
                "--quick" => {
                    out.sequences = 500;
                }
                "--out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--out requires a directory".to_string())?;
                    out.out_dir = PathBuf::from(v);
                }
                other => {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
        Ok(out)
    }

    /// Builds the experiment configuration for the scenario drivers.
    pub fn experiment_config(&self) -> overrun_control::scenarios::ExperimentConfig {
        overrun_control::scenarios::ExperimentConfig {
            num_sequences: self.sequences,
            jobs_per_sequence: self.jobs,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Writes `contents` to `<out_dir>/<name>`, creating the directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_artifact(&self, name: &str, contents: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        std::fs::write(&path, contents)?;
        Ok(path)
    }
}

fn next_value<I: Iterator<Item = String>, T: std::str::FromStr>(
    it: &mut I,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("{flag} requires a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let a = RunArgs::default();
        assert_eq!(a.sequences, 50_000);
        assert_eq!(a.jobs, 50);
    }

    #[test]
    fn parse_flags() {
        let a = RunArgs::parse(
            ["--sequences", "100", "--jobs", "10", "--seed", "7", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.sequences, 100);
        assert_eq!(a.jobs, 10);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn parse_quick_and_errors() {
        let a = RunArgs::parse(["--quick".to_string()]).unwrap();
        assert_eq!(a.sequences, 500);
        assert!(RunArgs::parse(["--bogus".to_string()]).is_err());
        assert!(RunArgs::parse(["--sequences".to_string()]).is_err());
        assert!(RunArgs::parse(["--sequences".to_string(), "abc".to_string()]).is_err());
    }

    #[test]
    fn config_propagates() {
        let a = RunArgs::parse(["--quick".to_string()]).unwrap();
        let cfg = a.experiment_config();
        assert_eq!(cfg.num_sequences, 500);
        assert_eq!(cfg.jobs_per_sequence, 50);
    }
}
