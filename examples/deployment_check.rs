//! The deployment-decoupling workflow of paper Sec. V-B: certify a
//! controller once for a designed `Rmax`, then re-deploy on platforms with
//! different task mixes by checking only `H̃ ⊆ H` — no controller retuning.
//!
//! ```text
//! cargo run -p overrun-control --example deployment_check
//! ```
#![allow(clippy::print_stdout)] // examples exist to print

use overrun_control::prelude::*;
use overrun_rtsim::{response_time_analysis, ExecutionModel, Span, Task};

fn platform(extra_irq_wcet_ms: u64) -> Vec<Task> {
    vec![
        Task::new(
            "irq",
            Span::from_millis(25),
            0,
            ExecutionModel::Constant(Span::from_millis(extra_irq_wcet_ms)),
        ),
        Task::new(
            "control",
            Span::from_millis(10),
            1,
            ExecutionModel::Uniform {
                min: Span::from_millis(2),
                max: Span::from_millis(6),
            },
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plant = plants::unstable_second_order();
    let t = 0.010;
    let ns = 5;

    // Design-time: budget Rmax = 1.6 T and certify once.
    let designed = IntervalSet::from_timing(t, 1.6 * t, ns)?;
    let table = pi::design_adaptive(&plant, &designed)?;
    let report = stability::certify(&plant, &table, &Default::default())?;
    println!(
        "designed for Rmax = 16 ms: JSR = {} => {}",
        report.bounds, report.verdict
    );

    // Deployment-time: for each candidate platform, compute the control
    // task's WCRT by response-time analysis and check the subset rule.
    for irq_wcet in [3u64, 6, 9, 12] {
        let tasks = platform(irq_wcet);
        match response_time_analysis(&tasks) {
            Ok(wcrt) => {
                let actual_rmax = wcrt[1].as_secs_f64();
                let actual = IntervalSet::from_timing(t, actual_rmax, ns)?;
                let ok = actual.is_subset_of(&designed);
                println!(
                    "platform with {irq_wcet} ms IRQ: control WCRT = {} -> H~ has {} intervals, deployable = {ok}",
                    wcrt[1],
                    actual.len(),
                );
            }
            Err(e) => {
                println!("platform with {irq_wcet} ms IRQ: {e} -> not deployable");
            }
        }
    }
    println!(
        "\nThe certificate transfers to every platform whose interval set is a \
         subset of the designed one — no retuning, no re-analysis (paper Sec. V-B)."
    );
    Ok(())
}
