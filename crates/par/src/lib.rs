//! Deterministic scoped-thread parallelism for the overrun workspace.
//!
//! Everything here is built on [`std::thread::scope`] — no external
//! dependencies, no unsafe code, no thread pool kept alive between calls.
//! The primitives are designed so that **results are bit-identical for any
//! thread count**:
//!
//! - [`parallel_map`] / [`try_parallel_map`] return outputs in input order
//!   regardless of which thread computed them.
//! - [`parallel_reduce`] folds fixed-size chunks in chunk order, so
//!   non-associative floating-point accumulation gives the same answer at
//!   1 or N threads (chunk boundaries depend only on `chunk_size`, never on
//!   the thread count).
//! - [`derive_seed`] splits one master RNG seed into decorrelated
//!   per-item seeds, making per-item random streams independent of how the
//!   items are scheduled across threads.
//!
//! The thread count comes from, in priority order:
//! 1. [`set_thread_override`] (programmatic, used by `--threads` flags and
//!    tests),
//! 2. the `OVERRUN_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to plain serial execution on the
//! calling thread — zero spawn overhead and a guaranteed-identical code
//! path for determinism tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;

/// Environment variable consulted for the default thread count.
pub const THREADS_ENV: &str = "OVERRUN_THREADS";

/// Process-wide programmatic override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide thread-count override taking precedence over
/// `OVERRUN_THREADS` and hardware detection. `Some(0)` is clamped to 1;
/// `None` clears the override.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// Resolves the effective worker-thread count (always ≥ 1).
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// SplitMix64-mixes `master` and `index` into a per-item seed.
///
/// The mixing matches `rand::splitmix64`, so per-item streams are
/// decorrelated even for adjacent indices; crucially the result depends
/// only on `(master, index)`, never on scheduling.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut state = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // One full SplitMix64 output step.
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items`, in parallel, preserving input order.
///
/// `f` must be `Sync` (shared by reference across workers) and is called
/// exactly once per item. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let out = try_parallel_map(items, |i, t| Ok::<R, Never>(f(i, t)));
    match out {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Uninhabited error type used to reuse the fallible driver infallibly.
enum Never {}

/// Maps a fallible `f` over `items` in parallel, preserving input order.
///
/// On failure, returns the error produced at the **lowest input index**
/// (matching what a serial left-to-right loop would report), so error
/// behaviour is deterministic too. All items may still be visited.
pub fn try_parallel_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let threads = max_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect::<Result<Vec<R>, E>>();
    }

    // Work-stealing by atomic index grab; each worker records (index,
    // result) pairs which are merged back in index order afterwards.
    let cursor = AtomicUsize::new(0);
    let mut per_thread: Vec<Vec<(usize, Result<R, E>)>> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                // Merge this worker's trace counters/events into the global
                // sink before the scope joins, so counter totals are
                // complete (and thread-count-invariant) the moment
                // `try_parallel_map` returns. Results themselves are merged
                // in index order below and stay bit-identical.
                overrun_trace::flush_thread();
                local
            }));
        }
        for h in handles {
            // A panic in a worker resurfaces here, unwinding the scope.
            per_thread.push(h.join().expect("overrun-par worker panicked"));
        }
    });

    let mut slots: Vec<Option<Result<R, E>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_thread.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot.expect("overrun-par: item not computed") {
            Ok(v) => out.push(v),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Parallel chunked reduction with deterministic, thread-count-independent
/// results.
///
/// The index range `0..len` is split into fixed chunks of `chunk_size`
/// (the last may be short). Each chunk is folded serially by `fold_chunk`
/// starting from `identity()`; chunk results are then combined **in chunk
/// order** by `combine`. Because chunk boundaries depend only on
/// `chunk_size`, the floating-point operation order — and therefore the
/// result, bit for bit — is the same at any thread count.
pub fn parallel_reduce<A, I, FC, C>(
    len: usize,
    chunk_size: usize,
    identity: I,
    fold_chunk: FC,
    combine: C,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    FC: Fn(A, std::ops::Range<usize>) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = len.div_ceil(chunk_size);
    let chunk_range = |c: usize| {
        let lo = c * chunk_size;
        lo..(lo + chunk_size).min(len)
    };
    let chunks: Vec<usize> = (0..n_chunks).collect();
    let partials = parallel_map(&chunks, |_, &c| fold_chunk(identity(), chunk_range(c)));
    // Serial fold in chunk order — the only place partials meet.
    partials.into_iter().fold(identity(), combine)
}

/// A shared lower bound: an `f64` maximum updateable from many threads.
///
/// Stored as the bit pattern in an [`AtomicU64`]; `update` is a CAS
/// fetch-max. NaN inputs are ignored. Intended for branch-and-bound
/// pruning where *any* lagging view of the bound is sound (a smaller bound
/// only prunes less).
pub struct SharedMaxF64 {
    bits: AtomicU64,
}

impl SharedMaxF64 {
    /// Creates the cell holding `initial` (must not be NaN).
    pub fn new(initial: f64) -> Self {
        assert!(!initial.is_nan(), "SharedMaxF64 cannot hold NaN");
        SharedMaxF64 {
            bits: AtomicU64::new(initial.to_bits()),
        }
    }

    /// Raises the stored maximum to `value` if larger; ignores NaN.
    pub fn update(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the current maximum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `max_threads`/`set_thread_override` act process-wide; serialize the
    /// tests that touch them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn override_beats_env_and_hardware() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        set_thread_override(Some(0));
        assert_eq!(max_threads(), 1, "0 clamps to 1");
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        let mut reference = None;
        for threads in [1usize, 2, 4, 7] {
            set_thread_override(Some(threads));
            let out = parallel_map(&items, |i, &x| (i as u64) * 1000 + x * x);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads = {threads}"),
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..100).collect();
        for threads in [1usize, 4] {
            set_thread_override(Some(threads));
            let r: Result<Vec<usize>, usize> =
                try_parallel_map(&items, |i, &x| if x % 7 == 3 { Err(i) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 3, "threads = {threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        // Sum values chosen to make f64 addition order matter.
        let vals: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 as usize) % 977) as f64 * 1e-3 + 1e9)
            .collect();
        let sum_at = |threads: usize| {
            set_thread_override(Some(threads));
            parallel_reduce(
                vals.len(),
                64,
                || 0.0f64,
                |acc, range| range.fold(acc, |a, i| a + vals[i]),
                |a, b| a + b,
            )
        };
        let s1 = sum_at(1);
        for threads in [2usize, 3, 8] {
            let s = sum_at(threads);
            assert_eq!(s.to_bits(), s1.to_bits(), "threads = {threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn shared_max_monotone() {
        let cell = SharedMaxF64::new(f64::NEG_INFINITY);
        cell.update(1.5);
        cell.update(0.5);
        cell.update(f64::NAN);
        assert_eq!(cell.get(), 1.5);
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let vals: Vec<f64> = (0..500).map(|i| (i % 313) as f64).collect();
        let cell = SharedMaxF64::new(f64::NEG_INFINITY);
        parallel_map(&vals, |_, &v| cell.update(v));
        assert_eq!(cell.get(), 312.0);
        set_thread_override(None);
    }

    #[test]
    fn derive_seed_decorrelates_and_is_pure() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        // Adjacent indices should differ in many bits, not just the low ones.
        let a = derive_seed(2021, 0);
        let b = derive_seed(2021, 1);
        assert!((a ^ b).count_ones() > 10);
    }
}
