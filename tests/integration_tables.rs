//! Reduced-ensemble versions of the paper's Table I and Table II runs,
//! asserting the qualitative shapes the paper reports.

use overrun_control::prelude::*;
use overrun_control::scenarios::{
    pmsm_table2_weights, table1, table2, ExperimentConfig,
};
use overrun_linalg::Matrix;

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        num_sequences: 300,
        jobs_per_sequence: 50,
        seed: 2021,
        ..ExperimentConfig::default()
    }
}

/// Table I shape: the adaptive controller's worst-case cost never loses to
/// the fixed-`T` baseline, and the conservative fixed-`Rmax` baseline is
/// the worst at the largest delay range.
#[test]
fn table1_shape() {
    let plant = plants::unstable_second_order();
    let rows = table1(&plant, 0.010, &small_config()).unwrap();
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!(r.jw_adaptive.is_finite());
        assert!(
            r.jw_adaptive <= r.jw_fixed_t * 1.05,
            "adaptive {:.2} should not lose to fixed-T {:.2} at {:?}",
            r.jw_adaptive,
            r.jw_fixed_t,
            (r.rmax_factor, r.ns)
        );
    }
    // At the widest delay range the paper's full ordering holds:
    // adaptive < fixed(T) < fixed(Rmax).
    let worst_row = rows
        .iter()
        .find(|r| r.rmax_factor > 1.5 && r.ns == 2)
        .expect("1.6T / Ts = T/2 row");
    assert!(worst_row.jw_adaptive < worst_row.jw_fixed_t);
    assert!(worst_row.jw_fixed_t < worst_row.jw_fixed_rmax);
}

/// Finer sensor granularity (larger Ns) improves the adaptive worst case.
#[test]
fn table1_finer_ts_helps() {
    let plant = plants::unstable_second_order();
    let cfg = ExperimentConfig {
        rmax_factors: vec![1.6],
        ns_values: vec![2, 5],
        ..small_config()
    };
    let rows = table1(&plant, 0.010, &cfg).unwrap();
    assert_eq!(rows.len(), 2);
    let coarse = &rows[0];
    let fine = &rows[1];
    assert!(fine.jw_adaptive <= coarse.jw_adaptive * 1.02);
}

/// Table II shape: the adaptive LQR is certified stable in every
/// configuration, the no-overrun cost lower-bounds every adaptive-period
/// cost, the fixed-`T` gain is certified unstable at `Rmax = 1.6 T,
/// Ts = T/2`, and the ideal fixed-period cost grows with `Rmax`.
#[test]
fn table2_shape() {
    let plant = plants::pmsm();
    let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);
    let rows = table2(&plant, 50e-6, &pmsm_table2_weights(), &x0, &small_config()).unwrap();
    assert_eq!(rows.len(), 6);

    for r in &rows {
        assert!(
            r.jsr_adaptive.certifies_stable(),
            "adaptive JSR {:?} at {:?}",
            r.jsr_adaptive,
            (r.rmax_factor, r.ns)
        );
        assert!(r.cost_no_overruns <= r.cost_adaptive + 1e-12);
        assert!(r.cost_adaptive.is_finite());
    }

    // The paper's headline: fixed-T goes unstable exactly in the coarse
    // 1.6T configuration, and nowhere else.
    for r in &rows {
        let critical = r.rmax_factor > 1.5 && r.ns == 2;
        assert_eq!(
            r.cost_fixed_t.is_none(),
            critical,
            "fixed-T instability expected only at 1.6T/Ts=T/2, got {:?} at {:?}",
            r.cost_fixed_t,
            (r.rmax_factor, r.ns)
        );
    }

    // Fixed-period cost increases with Rmax (slower sampling hurts).
    let by_factor = |f: f64| {
        rows.iter()
            .find(|r| (r.rmax_factor - f).abs() < 1e-9 && r.ns == 2)
            .expect("row")
            .cost_fixed_period_rmax
    };
    assert!(by_factor(1.1) < by_factor(1.3));
    assert!(by_factor(1.3) < by_factor(1.6));
}

/// The JSR bounds reported in Table II tighten with finer sensor
/// granularity at the critical Rmax (paper: T/5 row is far from 1 while
/// T/2 approaches it).
#[test]
fn table2_granularity_affects_margin() {
    let plant = plants::pmsm();
    let weights = pmsm_table2_weights();
    let coarse = IntervalSet::from_timing(50e-6, 1.6 * 50e-6, 2).unwrap();
    let fine = IntervalSet::from_timing(50e-6, 1.6 * 50e-6, 5).unwrap();
    let t_coarse = lqr::design_adaptive(&plant, &coarse, &weights).unwrap();
    let t_fine = lqr::design_adaptive(&plant, &fine, &weights).unwrap();
    let b_coarse = stability::certify(&plant, &t_coarse, &Default::default())
        .unwrap()
        .bounds;
    let b_fine = stability::certify(&plant, &t_fine, &Default::default())
        .unwrap()
        .bounds;
    assert!(
        b_fine.upper < b_coarse.upper,
        "fine {b_fine:?} vs coarse {b_coarse:?}"
    );
}

/// Worst-case cost must be reproducible for identical seeds and change for
/// different seeds (sanity of the ensemble machinery).
#[test]
fn table_runs_reproducible() {
    let plant = plants::unstable_second_order();
    let cfg = ExperimentConfig {
        rmax_factors: vec![1.3],
        ns_values: vec![2],
        num_sequences: 100,
        jobs_per_sequence: 50,
        seed: 9,
    };
    let a = table1(&plant, 0.010, &cfg).unwrap();
    let b = table1(&plant, 0.010, &cfg).unwrap();
    assert_eq!(a[0].jw_adaptive.to_bits(), b[0].jw_adaptive.to_bits());
}
