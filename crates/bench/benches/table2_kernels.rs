//! Criterion benchmarks for the Table-II kernels: per-interval LQR design,
//! lifted-matrix construction and the PMSM worst-case sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_linalg::Matrix;

fn bench_lqr_design(c: &mut Criterion) {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 5).expect("grid");
    c.bench_function("lqr_design_adaptive_pmsm", |b| {
        b.iter(|| lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design"))
    });
}

fn bench_omega_construction(c: &mut Criterion) {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.6 * 50e-6, 5).expect("grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    let meas = lifted::measurement_matrix(&plant, &table).expect("measurement");
    c.bench_function("build_omega_set_pmsm", |b| {
        b.iter(|| lifted::build_omega_set(&plant, &table, &meas).expect("omegas"))
    });
}

fn bench_pmsm_worst_case(c: &mut Criterion) {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 2).expect("grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    let sim = ClosedLoopSim::new(&plant, &table).expect("sim");
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 1.0, 1.0]), 3);
    c.bench_function("pmsm_worst_case_100_sequences", |b| {
        b.iter(|| {
            evaluate_worst_case(
                &sim,
                &scenario,
                &WorstCaseOptions {
                    num_sequences: 100,
                    jobs_per_sequence: 50,
                    seed: 1,
                    rmin_fraction: 0.05,
                },
            )
            .expect("report")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lqr_design, bench_omega_construction, bench_pmsm_worst_case
}
criterion_main!(benches);
