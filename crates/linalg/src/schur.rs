//! Eigenvalues of general real matrices.
//!
//! Pipeline: Parlett–Reinsch [`balance`](crate::balance) → Householder
//! [`hessenberg`] reduction → Francis implicit double-shift QR iteration.
//! Only eigenvalues are computed (no Schur vectors), which is all the JSR
//! machinery and the stability tests need.

use crate::norms::balance;
use crate::{Error, Matrix, Result};

/// A (possibly complex) eigenvalue of a real matrix, stored as `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Eigenvalue {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Eigenvalue {
    /// Creates an eigenvalue from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Eigenvalue { re, im }
    }

    /// Modulus `|λ| = sqrt(re² + im²)`.
    pub fn modulus(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `true` if the imaginary part is exactly zero.
    pub fn is_real(&self) -> bool {
        self.im == 0.0
    }
}

impl std::fmt::Display for Eigenvalue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im == 0.0 {
            write!(f, "{:.6e}", self.re)
        } else if self.im > 0.0 {
            write!(f, "{:.6e}+{:.6e}i", self.re, self.im)
        } else {
            write!(f, "{:.6e}-{:.6e}i", self.re, -self.im)
        }
    }
}

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transforms (the transform itself is discarded — eigenvalues
/// are preserved).
///
/// # Errors
///
/// Returns [`Error::NotSquare`] for rectangular input.
pub fn hessenberg(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "hessenberg",
            dims: a.shape(),
        });
    }
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return Ok(h);
    }
    let mut v = vec![0.0_f64; n];
    for k in 0..n - 2 {
        // Householder vector annihilating h[k+2.., k].
        let mut norm_x = 0.0_f64;
        for i in (k + 1)..n {
            norm_x = norm_x.hypot(h[(i, k)]);
        }
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if h[(k + 1, k)] >= 0.0 { -norm_x } else { norm_x };
        let mut v_norm_sq = 0.0_f64;
        for i in (k + 1)..n {
            v[i] = h[(i, k)];
            if i == k + 1 {
                v[i] -= alpha;
            }
            v_norm_sq += v[i] * v[i];
        }
        if v_norm_sq == 0.0 {
            continue;
        }
        let beta = 2.0 / v_norm_sq;
        // Left update: H := (I − β v vᵀ) H  on rows k+1.., all cols.
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i] * h[(i, j)];
            }
            let s = beta * dot;
            for i in (k + 1)..n {
                let val = h[(i, j)] - s * v[i];
                h[(i, j)] = val;
            }
        }
        // Right update: H := H (I − β v vᵀ)  on cols k+1.., all rows.
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j];
            }
            let s = beta * dot;
            for j in (k + 1)..n {
                let val = h[(i, j)] - s * v[j];
                h[(i, j)] = val;
            }
        }
        // Entries below the first subdiagonal in column k are now zero by
        // construction; set them exactly to avoid drift.
        h[(k + 1, k)] = alpha;
        for i in (k + 2)..n {
            h[(i, k)] = 0.0;
        }
    }
    Ok(h)
}

/// Computes all eigenvalues of a square real matrix.
///
/// The matrix is balanced, reduced to Hessenberg form and processed with a
/// Francis double-shift QR iteration. Complex eigenvalues come in conjugate
/// pairs. The returned vector has exactly `n` entries, in no particular
/// order.
///
/// # Errors
///
/// Returns [`Error::NotSquare`] for rectangular input,
/// [`Error::InvalidData`] for non-finite entries, and
/// [`Error::NoConvergence`] if the QR iteration fails (extremely rare with
/// balancing, exceptional shifts and the exact transpose/shift retries
/// enabled).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Eigenvalue>> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "eigenvalues",
            dims: a.shape(),
        });
    }
    if !a.is_finite() {
        return Err(Error::InvalidData(
            "eigenvalues of a matrix with non-finite entries".into(),
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Eigenvalue::new(a[(0, 0)], 0.0)]);
    }
    let run = |m: &Matrix| -> Result<Vec<Eigenvalue>> {
        let (balanced, _) = balance(m)?;
        hqr(hessenberg(&balanced)?)
    };
    // The QR iteration can stall on rare inputs. All retries below are
    // *exact*: the transpose has the same spectrum, and the eigenvalues of
    // `A + εI` are exactly those of `A` shifted by `ε`.
    match run(a) {
        Ok(e) => Ok(e),
        Err(_) => match run(&a.transpose()) {
            Ok(e) => Ok(e),
            Err(first) => {
                let scale = a.max_abs().max(1.0);
                for exp in [-12, -10, -8, -6] {
                    let eps = scale * 10.0_f64.powi(exp);
                    let shifted = a.add_mat(&(Matrix::identity(n) * eps))?;
                    if let Ok(eigs) = run(&shifted) {
                        return Ok(eigs
                            .into_iter()
                            .map(|e| Eigenvalue::new(e.re - eps, e.im))
                            .collect());
                    }
                }
                Err(first)
            }
        },
    }
}

/// Spectral radius `ρ(A) = max |λᵢ|`.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?
        .iter()
        .map(Eigenvalue::modulus)
        .fold(0.0, f64::max))
}

/// Fortran-style `SIGN(a, b) = |a| * sgn(b)` with `sgn(0) = +1`.
#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Francis double-shift QR iteration on an upper Hessenberg matrix
/// (eigenvalues only). Adapted from the classical `hqr` algorithm
/// (Wilkinson–Reinsch / EISPACK lineage).
fn hqr(mut a: Matrix) -> Result<Vec<Eigenvalue>> {
    let n = a.rows();
    let mut eig = vec![Eigenvalue::default(); n];
    // Overall norm used in the deflation test when a diagonal pair is zero.
    let mut anorm = 0.0_f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(eig); // zero matrix
    }

    let eps = f64::EPSILON;
    let mut t = 0.0_f64; // accumulated exceptional shift
    let mut nn = n as isize - 1;

    'outer: while nn >= 0 {
        let mut its = 0usize;
        loop {
            // --- Look for a single small subdiagonal element. ---
            let nnu = nn as usize;
            let mut l = 0usize;
            let mut ll = nnu;
            while ll >= 1 {
                let s = a[(ll - 1, ll - 1)].abs() + a[(ll, ll)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if a[(ll, ll - 1)].abs() <= eps * s {
                    a[(ll, ll - 1)] = 0.0;
                    l = ll;
                    break;
                }
                ll -= 1;
            }

            let mut x = a[(nnu, nnu)];
            if l == nnu {
                // One real root found.
                eig[nnu] = Eigenvalue::new(x + t, 0.0);
                nn -= 1;
                continue 'outer;
            }
            let mut y = a[(nnu - 1, nnu - 1)];
            let mut w = a[(nnu, nnu - 1)] * a[(nnu - 1, nnu)];
            if l == nnu - 1 {
                // A 2x2 block: two roots (real pair or complex conjugates).
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                x += t;
                if q >= 0.0 {
                    let z = p + sign(z, p);
                    let lam1 = x + z;
                    let lam2 = if z != 0.0 { x - w / z } else { lam1 };
                    eig[nnu - 1] = Eigenvalue::new(lam1, 0.0);
                    eig[nnu] = Eigenvalue::new(lam2, 0.0);
                } else {
                    eig[nnu - 1] = Eigenvalue::new(x + p, z);
                    eig[nnu] = Eigenvalue::new(x + p, -z);
                }
                nn -= 2;
                continue 'outer;
            }

            // --- No root yet: perform a QR sweep. ---
            if its == 60 {
                return Err(Error::NoConvergence {
                    algorithm: "hqr",
                    iterations: its,
                });
            }
            if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
                // Exceptional shift.
                t += x;
                for i in 0..=nnu {
                    let v = a[(i, i)] - x;
                    a[(i, i)] = v;
                }
                let s = a[(nnu, nnu - 1)].abs() + a[(nnu - 1, nnu - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Find two consecutive small subdiagonal elements.
            let mut m = nnu - 2;
            let mut p;
            let mut q;
            let mut r;
            loop {
                let z = a[(m, m)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[(m + 1, m)] + a[(m, m + 1)];
                q = a[(m + 1, m + 1)] - z - rr - ss;
                r = a[(m + 2, m + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = a[(m, m - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[(m - 1, m - 1)].abs() + z.abs() + a[(m + 1, m + 1)].abs());
                if u <= eps * v {
                    break;
                }
                m -= 1;
            }
            for i in (m + 2)..=nnu {
                a[(i, i - 2)] = 0.0;
            }
            for i in (m + 3)..=nnu {
                a[(i, i - 3)] = 0.0;
            }

            // Double QR step on rows l..=nn, columns l..=nn.
            for k in m..nnu {
                if k != m {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k != nnu - 1 { a[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        let v = -a[(k, k - 1)];
                        a[(k, k - 1)] = v;
                    }
                } else {
                    a[(k, k - 1)] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k != nnu - 1 {
                        pp += r * a[(k + 2, j)];
                        let v = a[(k + 2, j)] - pp * z;
                        a[(k + 2, j)] = v;
                    }
                    let v1 = a[(k + 1, j)] - pp * y;
                    a[(k + 1, j)] = v1;
                    let v0 = a[(k, j)] - pp * x;
                    a[(k, j)] = v0;
                }
                // Column modification.
                let mmin = nnu.min(k + 3);
                for i in l..=mmin {
                    let mut pp = x * a[(i, k)] + y * a[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += z * a[(i, k + 2)];
                        let v = a[(i, k + 2)] - pp * r;
                        a[(i, k + 2)] = v;
                    }
                    let v1 = a[(i, k + 1)] - pp * q;
                    a[(i, k + 1)] = v1;
                    let v0 = a[(i, k)] - pp;
                    a[(i, k)] = v0;
                }
            }
        }
    }
    Ok(eig)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests return `Result` and use `?` instead of `unwrap()`: the
    // panic-freedom ratchet (overrun-lint) counts every panic site in the
    // crate, test modules included, and this module is burned down to zero.
    type TestResult = std::result::Result<(), Error>;

    fn sorted_moduli(a: &Matrix) -> Result<Vec<f64>> {
        let mut m: Vec<f64> = eigenvalues(a)?.iter().map(|e| e.modulus()).collect();
        m.sort_by(f64::total_cmp);
        Ok(m)
    }

    fn assert_spectrum_contains(a: &Matrix, expected: &[(f64, f64)], tol: f64) -> TestResult {
        let eigs = eigenvalues(a)?;
        for &(re, im) in expected {
            assert!(
                eigs.iter()
                    .any(|e| (e.re - re).abs() < tol && (e.im.abs() - im.abs()).abs() < tol),
                "missing eigenvalue {re}+{im}i in {eigs:?}"
            );
        }
        Ok(())
    }

    #[test]
    fn eig_of_diagonal() -> TestResult {
        let d = Matrix::diag(&[3.0, -1.0, 0.5]);
        assert_spectrum_contains(&d, &[(3.0, 0.0), (-1.0, 0.0), (0.5, 0.0)], 1e-12)?;
        assert!((spectral_radius(&d)? - 3.0).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn eig_of_triangular() -> TestResult {
        let t =
            Matrix::from_rows(&[&[2.0, 5.0, 7.0], &[0.0, -3.0, 1.0], &[0.0, 0.0, 0.25]])?;
        assert_spectrum_contains(&t, &[(2.0, 0.0), (-3.0, 0.0), (0.25, 0.0)], 1e-10)
    }

    #[test]
    fn eig_of_rotation_is_unit_complex_pair() -> TestResult {
        let th = 0.7_f64;
        let r = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]])?;
        assert_spectrum_contains(&r, &[(th.cos(), th.sin())], 1e-12)?;
        assert!((spectral_radius(&r)? - 1.0).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn eig_of_companion_matrix() -> TestResult {
        // Companion of p(x) = x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3)
        let c = Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]])?;
        assert_spectrum_contains(&c, &[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)], 1e-9)
    }

    #[test]
    fn eig_complex_from_companion() -> TestResult {
        // p(x) = x^2 + 1 → eigenvalues ±i
        let c = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]])?;
        assert_spectrum_contains(&c, &[(0.0, 1.0)], 1e-12)
    }

    #[test]
    fn eig_sum_is_trace_product_is_det() -> TestResult {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 2.0, 0.5],
            &[-1.0, 3.0, 0.0, 2.0],
            &[0.3, -2.0, 1.5, 1.0],
            &[1.0, 0.0, -1.0, 2.5],
        ])?;
        let eigs = eigenvalues(&a)?;
        let sum_re: f64 = eigs.iter().map(|e| e.re).sum();
        let sum_im: f64 = eigs.iter().map(|e| e.im).sum();
        assert!((sum_re - a.trace()).abs() < 1e-8, "trace mismatch: {sum_re}");
        assert!(sum_im.abs() < 1e-8);
        // product of moduli equals |det|
        let prod: f64 = eigs.iter().map(|e| e.modulus()).product();
        assert!((prod - a.det()?.abs()).abs() < 1e-6 * prod.max(1.0));
        Ok(())
    }

    #[test]
    fn eig_repeated_eigenvalues() -> TestResult {
        // Jordan-like block with eigenvalue 2 (defective)
        let j = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 2.0, 1.0], &[0.0, 0.0, 2.0]])?;
        let eigs = eigenvalues(&j)?;
        for e in &eigs {
            assert!((e.modulus() - 2.0).abs() < 1e-4, "{eigs:?}");
        }
        Ok(())
    }

    #[test]
    fn eig_of_similarity_transform_is_invariant() -> TestResult {
        let d = Matrix::diag(&[1.0, -2.0, 0.5, 3.0]);
        // Fixed well-conditioned transform
        let p = Matrix::from_rows(&[
            &[1.0, 0.2, 0.0, 0.1],
            &[0.0, 1.0, 0.3, 0.0],
            &[0.2, 0.0, 1.0, 0.2],
            &[0.0, 0.1, 0.0, 1.0],
        ])?;
        let pinv = p.inverse()?;
        let a = &p * &d * &pinv;
        let mut moduli = sorted_moduli(&a)?;
        let mut expected = vec![0.5, 1.0, 2.0, 3.0];
        expected.sort_by(f64::total_cmp);
        for (m, e) in moduli.drain(..).zip(expected) {
            assert!((m - e).abs() < 1e-8, "modulus {m} vs {e}");
        }
        Ok(())
    }

    #[test]
    fn eig_zero_and_tiny() -> TestResult {
        assert_eq!(eigenvalues(&Matrix::zeros(3, 3))?.len(), 3);
        assert_eq!(spectral_radius(&Matrix::zeros(3, 3))?, 0.0);
        let one = Matrix::from_rows(&[&[42.0]])?;
        assert_eq!(eigenvalues(&one)?[0].re, 42.0);
        assert!(eigenvalues(&Matrix::zeros(0, 0))?.is_empty());
        Ok(())
    }

    #[test]
    fn eig_rejects_rectangular() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
        assert!(hessenberg(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn hessenberg_structure_and_spectrum() -> TestResult {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let h = hessenberg(&a)?;
        for i in 0..5usize {
            for j in 0..i.saturating_sub(1) {
                assert_eq!(h[(i, j)], 0.0, "H not Hessenberg at ({i},{j})");
            }
        }
        // Similarity ⇒ same trace.
        assert!((h.trace() - a.trace()).abs() < 1e-10);
        // Same eigenvalue moduli.
        let ma = sorted_moduli(&a)?;
        let mh = sorted_moduli(&h)?;
        for (x, y) in ma.iter().zip(&mh) {
            assert!((x - y).abs() < 1e-7, "{ma:?} vs {mh:?}");
        }
        Ok(())
    }

    #[test]
    fn spectral_radius_of_stable_discretization() -> TestResult {
        // e^{A} for Hurwitz A must have spectral radius < 1.
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]])?;
        let phi = crate::expm(&a)?;
        let rho = spectral_radius(&phi)?;
        assert!(rho < 1.0);
        assert!((rho - (-1.0_f64).exp()).abs() < 1e-10);
        Ok(())
    }

    #[test]
    fn eigenvalue_display() {
        assert!(!format!("{}", Eigenvalue::new(1.0, 0.0)).contains('i'));
        assert!(format!("{}", Eigenvalue::new(1.0, 2.0)).contains('+'));
        assert!(format!("{}", Eigenvalue::new(1.0, -2.0)).contains('-'));
    }

    #[test]
    fn eig_large_random_like_matrix_trace_check() -> TestResult {
        let n = 12;
        // deterministic pseudo-random entries in [-1, 1]
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17 + 7) % 101) as f64 / 50.0 - 1.0);
        let eigs = eigenvalues(&a)?;
        assert_eq!(eigs.len(), n);
        let sum_re: f64 = eigs.iter().map(|e| e.re).sum();
        assert!((sum_re - a.trace()).abs() < 1e-7);
        Ok(())
    }
}
