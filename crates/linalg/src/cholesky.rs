//! Cholesky factorisation of symmetric positive-definite matrices.

use crate::{Error, Matrix, Result};

/// Cholesky factorisation `A = L Lᵀ` with lower-triangular `L`.
///
/// Used for covariance manipulation in the Kalman design path and for
/// validating that Riccati solutions are positive (semi-)definite.
///
/// # Example
///
/// ```
/// use overrun_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let back = chol.l() * chol.l().transpose();
/// assert!(back.approx_eq(&a, 1e-12, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (use [`Matrix::symmetrize`] if unsure).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] for rectangular input and
    /// [`Error::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                op: "cholesky",
                dims: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(Error::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorisation (`L Lᵀ x = b`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b` has the wrong row count.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                op: "cholesky_solve",
                lhs: self.l.shape(),
                rhs: b.shape(),
            });
        }
        let m = b.cols();
        let mut x = b.clone();
        // Forward: L y = b
        for j in 0..m {
            for i in 0..n {
                let mut s = x[(i, j)];
                for k in 0..i {
                    s -= self.l[(i, k)] * x[(k, j)];
                }
                x[(i, j)] = s / self.l[(i, i)];
            }
        }
        // Backward: Lᵀ x = y
        for j in 0..m {
            for i in (0..n).rev() {
                let mut s = x[(i, j)];
                for k in (i + 1)..n {
                    s -= self.l[(k, i)] * x[(k, j)];
                }
                x[(i, j)] = s / self.l[(i, i)];
            }
        }
        Ok(x)
    }

    /// Log-determinant of `A` (`2 Σ log L_ii`), numerically safer than
    /// computing `det` for large well-conditioned SPD matrices.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Returns `true` when `a` is symmetric positive definite to working
/// precision (i.e. its Cholesky factorisation succeeds).
pub fn is_spd(a: &Matrix) -> bool {
    a.is_square() && Cholesky::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let back = ch.l() * ch.l().transpose();
        assert!(back.approx_eq(&a, 1e-12, 1e-12));
        let b = Matrix::col_vec(&[1.0, 2.0, 3.0]);
        let x = ch.solve(&b).unwrap();
        assert!((&a * &x).approx_eq(&b, 1e-10, 1e-10));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(Error::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let det = a.det().unwrap();
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn is_spd_helper() {
        assert!(is_spd(&Matrix::identity(3)));
        assert!(!is_spd(&Matrix::zeros(2, 2)));
        assert!(!is_spd(&Matrix::zeros(2, 3)));
    }

    #[test]
    fn solve_shape_mismatch() {
        let ch = Cholesky::new(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&Matrix::zeros(3, 1)).is_err());
    }
}
