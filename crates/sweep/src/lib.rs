//! # overrun-sweep — resumable batch certification sweeps
//!
//! The paper's workflow certifies `JSR({Ω(h) : h ∈ H}) < 1` for every
//! candidate design point (plant × `Rmax` × `Ns` × policy) — an
//! embarrassingly sweepable workload that the bench binaries used to
//! recompute from scratch on every run. This crate turns it into a batch
//! engine with:
//!
//! - **Declarative grids** ([`GridSpec`] → [`Scenario`] →
//!   [`PreparedScenario`]): the cartesian product of plants, periods,
//!   `Rmax` factors, oversampling factors and design policies, expanded
//!   deterministically.
//! - **Content-addressed memoization** ([`ResultCache`]): each scenario is
//!   keyed by a hand-rolled FNV-128 hash over the *materialized* inputs —
//!   plant matrices, controller table, certification budget, crate
//!   version — with every `f64` hashed by exact bit pattern
//!   ([`certification_key`]). Records round-trip byte-exactly
//!   ([`ScenarioRecord`]), in the same human-readable-but-exact style as
//!   the trace JSONL.
//! - **Deterministic sharding** ([`run_sweep`]): scenarios run on the
//!   `overrun-par` workers, order-preserving, so sweep reports are
//!   bit-identical at any thread count.
//! - **Checkpointed resume**: a killed sweep resumes from the last
//!   completed shard ([`SweepOptions::resume`]), re-verifying every cache
//!   record it replays.
//! - **Fault isolation**: a diverging or `sanitize`-poisoned scenario is
//!   caught (`catch_unwind`), retried once at a tightened budget, and on a
//!   second fault recorded as a structured [`ScenarioError`] while the
//!   sweep continues.
//!
//! The bench binaries (`table2`, `ts_tradeoff`) route their certifications
//! through [`CertLookup`], so `--cache DIR` runs hit the same records the
//! declarative path writes — their CSV output stays byte-identical to the
//! direct path.
//!
//! ```
//! use overrun_control::{plants, stability::CertifyOptions};
//! use overrun_sweep::{
//!     run_sweep, DesignPolicy, GridSpec, SweepOptions,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridSpec {
//!     plants: vec![("uso".into(), plants::unstable_second_order())],
//!     periods: vec![0.010],
//!     rmax_factors: vec![1.3],
//!     ns_values: vec![2],
//!     policies: vec![("adaptive".into(), DesignPolicy::PiAdaptive)],
//!     opts: CertifyOptions::default(),
//! };
//! let prepared = grid
//!     .expand()
//!     .iter()
//!     .map(|s| s.prepare())
//!     .collect::<Result<Vec<_>, _>>()?;
//! let report = run_sweep(&prepared, &SweepOptions::default())?;
//! assert_eq!(report.stats.computed, 1);
//! assert!(report.errors().is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! Unlike the certified numeric crates, this crate *owns* wall-clock and
//! filesystem access (elapsed metadata, the on-disk cache), so it is
//! registered in `lint.toml` without the determinism rule — the numeric
//! results it memoizes remain bit-reproducible because the clock never
//! feeds the content key.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod checkpoint;
mod engine;
mod error;
mod hash;
mod record;
mod scenario;

pub use cache::{CacheProbe, ResultCache};
pub use checkpoint::{load_completed, Checkpoint, GridId, CHECKPOINT_HEADER};
pub use engine::{
    run_sweep, run_sweep_with, tightened_budget, CertLookup, CertifyRunner, ScenarioOutcome,
    SweepOptions, SweepReport, SweepStats,
};
pub use error::{ScenarioError, ScenarioFault, SweepError};
pub use hash::{Canon, ContentHash};
pub use record::{ScenarioRecord, RECORD_HEADER};
pub use scenario::{
    certification_key, grid_key, DesignPolicy, GainSchedule, GridSpec, PreparedScenario, Scenario,
};
