//! Feature-on lifecycle tests for the global sink: install/finish
//! epochs, cross-thread flushing, span nesting, and JSONL round-trips.
//! The sink is process-global, so every test serializes on `LOCK`.

#![cfg(feature = "trace")]

use std::sync::{Mutex, MutexGuard};

use overrun_trace::{counter, histogram, progress, span, NoopClock, Trace};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn finish_trace() -> Trace {
    overrun_trace::finish().unwrap_or_default()
}

#[test]
fn spans_nest_and_balance() {
    let _g = serialize();
    assert!(overrun_trace::install(NoopClock));
    {
        let _root = span!("outer", size = 2);
        for d in 0..3u32 {
            let _inner = span!("inner", depth = d);
            counter!("nest.visits", 1);
        }
    }
    let tr = finish_trace();
    assert!(tr.is_balanced());
    let tree = tr.span_tree();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree[0].name, "outer");
    assert_eq!(tree[0].calls, 1);
    assert_eq!(tree[0].children.len(), 1);
    assert_eq!(tree[0].children[0].name, "inner");
    assert_eq!(tree[0].children[0].calls, 3);
    assert_eq!(tr.counter_totals().get("nest.visits"), Some(&3));
}

#[test]
fn worker_thread_events_survive_via_flush() {
    let _g = serialize();
    assert!(overrun_trace::install(NoopClock));
    let handles: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let _sp = span!("worker.chunk", worker = w);
                counter!("worker.items", 10);
                histogram!("worker.sample", 0.5 * (w + 1) as f64);
                overrun_trace::flush_thread();
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().is_ok());
    }
    let tr = finish_trace();
    assert!(tr.is_balanced());
    assert_eq!(tr.counter_totals().get("worker.items"), Some(&40));
    let hists = tr.histogram_totals();
    let sample = &hists["worker.sample"];
    assert_eq!(sample.count, 4);
    assert_eq!(sample.min, 0.5);
    assert_eq!(sample.max, 2.0);
}

#[test]
fn epochs_isolate_runs() {
    let _g = serialize();
    assert!(overrun_trace::install(NoopClock));
    counter!("epoch.first", 1);
    let first = finish_trace();
    assert_eq!(first.counter_totals().get("epoch.first"), Some(&1));

    assert!(overrun_trace::install(NoopClock));
    counter!("epoch.second", 2);
    let second = finish_trace();
    assert!(!second.counter_totals().contains_key("epoch.first"));
    assert_eq!(second.counter_totals().get("epoch.second"), Some(&2));
}

#[test]
fn inactive_sink_records_nothing() {
    let _g = serialize();
    assert!(!overrun_trace::is_active());
    let _sp = span!("ignored");
    counter!("ignored.counter", 7);
    assert!(overrun_trace::finish().is_none());
}

#[test]
fn jsonl_export_round_trips_real_run() {
    let _g = serialize();
    assert!(overrun_trace::install(NoopClock));
    {
        let _sp = span!("export.root", n = 2);
        progress!("export.bound", 0.75);
        counter!("export.count", 9);
        histogram!("export.h", 1.0e-13);
    }
    let tr = finish_trace();
    let text = tr.to_jsonl_string();
    assert!(!text.is_empty());
    let back = match Trace::parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => panic!("parse failed: {e}"),
    };
    assert_eq!(back.to_jsonl_string(), text);
    assert!(back.is_balanced());
    assert_eq!(back.counter_totals(), tr.counter_totals());
    assert_eq!(back.last_progress().get("export.bound"), Some(&0.75));
}
