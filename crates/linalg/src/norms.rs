//! Matrix norms and diagonal balancing.

use crate::{Matrix, Result};

/// Maximum absolute column sum (induced 1-norm).
pub fn norm_1(m: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for j in 0..m.cols() {
        let s: f64 = (0..m.rows()).map(|i| m[(i, j)].abs()).sum();
        best = best.max(s);
    }
    best
}

/// Maximum absolute row sum (induced ∞-norm).
pub fn norm_inf(m: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for i in 0..m.rows() {
        let s: f64 = m.row(i).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Frobenius norm `sqrt(Σ a_ij²)`.
///
/// Accumulated with a `max_abs` prescale so extreme-but-representable
/// magnitudes (entries near `1e±200`) neither underflow to zero nor
/// overflow to infinity — an under-estimated norm here would silently
/// invalidate the JSR stability certificates built on top of it.
pub fn norm_fro(m: &Matrix) -> f64 {
    let scale = m.max_abs();
    if scale == 0.0 || !scale.is_finite() {
        return scale;
    }
    // Small square matrices take the unrolled kernel; the accumulation
    // order is the same sequential pass, so the result is bit-identical.
    let sum: f64 = if m.is_square() {
        crate::small::fro_sumsq_dispatch(m.rows(), m.as_slice(), scale)
    } else {
        None
    }
    .unwrap_or_else(|| {
        m.as_slice()
            .iter()
            .map(|x| {
                let v = x / scale;
                v * v
            })
            .sum()
    });
    sum.sqrt() * scale
}

/// Multiplicative guard baked into the cheap spectral bounds.
///
/// The cheap bounds must bracket the *computed* [`norm_2`] /
/// [`crate::spectral_radius`], not just the mathematical quantities: the
/// exact routines go through a QR eigenvalue iteration whose result can
/// overshoot the theoretical bound by rounding (observed ≲ 1e-12 relative),
/// and the O(n²) accumulations here associate differently than the exact
/// path. A relative guard of 1e-9 dwarfs both error sources while giving up
/// a negligible amount of screening power.
const GUARD: f64 = 1.0 + 1e-9;

/// Collatz–Wielandt refinement sweeps applied to the upper bounds of
/// square matrices. Each sweep costs O(n²); the certificates typically
/// settle within a handful of iterations, and every iterate is a valid
/// bound on its own, so the count only trades tightness against time.
const CW_ITERS: usize = 10;

/// `out ← A·A` for a square matrix stored row-major, in the plain i-k-j
/// order with the zero-skip the small-kernel paths use. `out` is fully
/// overwritten and must not alias `a`.
fn mat_sq_into(a: &[f64], n: usize, out: &mut [f64]) {
    out[..n * n].fill(0.0);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += aik * a[k * n + j];
            }
        }
    }
}

/// Certified Collatz–Wielandt upper bound on `ρ(|A|) ≥ ρ(A)` for a square
/// matrix stored row-major in `a`. Every power iterate of a strictly
/// positive vector yields the valid bound `max_i (|A| x)_i / x_i`, so the
/// running minimum is certified regardless of convergence; the loop stops
/// early if an iterate loses strict positivity (reducible `|A|`), keeping
/// the last sound value. `x`/`y` are caller-provided iteration buffers of
/// length ≥ `n` — this sits on the screening hot path and must not
/// allocate.
fn cw_upper(a: &[f64], n: usize, x: &mut [f64], y: &mut [f64]) -> f64 {
    let x = &mut x[..n];
    let y = &mut y[..n];
    let mut best = f64::INFINITY;
    x.fill(1.0);
    for _ in 0..CW_ITERS {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = (0..n).map(|j| a[i * n + j].abs() * x[j]).sum();
        }
        let ratio = y
            .iter()
            .zip(x.iter())
            .map(|(&yi, &xi)| yi / xi)
            .fold(0.0_f64, f64::max);
        best = best.min(ratio);
        let ymax = y.iter().fold(0.0_f64, |acc, &v| acc.max(v));
        // `v <= 0.0 || v.is_nan()` (not `!(v > 0.0)`): zero/negative AND
        // NaN iterates must all stop the iteration with the last sound
        // certificate.
        if y.iter().any(|&v| v <= 0.0 || v.is_nan()) || !ymax.is_finite() {
            break;
        }
        for (xi, &yi) in x.iter_mut().zip(y.iter()) {
            *xi = yi / ymax;
        }
    }
    best
}

/// Power-kick Collatz–Wielandt refinement for a square matrix. Write
/// `Q = M/scale`. For any nonnegative matrix `A` and ANY strictly positive
/// vector `x`, `ρ(A) ≤ max_i (A x)_i / x_i` (Collatz–Wielandt), and
/// entrywise domination gives `ρ(B) ≤ ρ(|B|)` for arbitrary `B`.
/// Combining:
///
///   ρ(M)/scale = ρ(Q)       ≤ min( CW(|Q²|)^{1/2}, CW(|Q⁴|)^{1/4} ),
///   (‖M‖₂/scale)² = ρ(QᵀQ)  ≤ CW(|(QᵀQ)²|)^{1/2},
///
/// where `CW(A)` power-iterates the certificate toward the Perron root
/// `ρ(A) = inf_D ‖D A D⁻¹‖_∞`. The multiplication levels (`Q²`, `QᵀQ` and
/// their squares) are the decisive tighteners: forming a product *before*
/// taking absolute values captures the sign cancellations that make every
/// fixed induced norm of a non-normal product overshoot badly, and each
/// root halves what overshoot remains. First-level certificates (`CW(|Q|)`,
/// `CW(|QᵀQ|)`) are deliberately not evaluated — power iteration on the
/// squared matrices converges strictly faster (eigenvalue gaps square), so
/// the squared levels dominate them in practice at a third less CW work.
///
/// Rounding in the floating-point products is NOT covered by the relative
/// `GUARD` when cancellation makes the true Perron root tiny, so an
/// absolute slop dominating the entrywise product error (entries bounded by
/// n, n³; error ≲ n⁵ eps after amplification through both squaring levels)
/// is added before the roots — it only loosens the certificates.
///
/// `ws` is a caller-provided workspace of length ≥ `3n² + 2n`; the function
/// performs no allocation. Returns `(cw_radius, cw_norm_sq)` in the scaled
/// domain: `ρ(M) ≤ cw_radius · scale`, `‖M‖₂ ≤ sqrt(cw_norm_sq) · scale`.
fn cw_refine(data: &[f64], n: usize, scale: f64, ws: &mut [f64]) -> (f64, f64) {
    let (qs, rest) = ws.split_at_mut(n * n);
    let (gram, rest) = rest.split_at_mut(n * n);
    let (square, rest) = rest.split_at_mut(n * n);
    let (x, y) = rest.split_at_mut(n);
    for (q, &v) in qs.iter_mut().zip(data) {
        *q = v / scale;
    }
    // G = QᵀQ and S = Q² in one fused i-k-j pass; |q| ≤ 1 keeps every
    // accumulator within [−n, n], so no further scaling is needed.
    gram.fill(0.0);
    square.fill(0.0);
    for i in 0..n {
        for k in 0..n {
            let qik = qs[i * n + k];
            if qik == 0.0 {
                continue;
            }
            for j in 0..n {
                square[i * n + j] += qik * qs[k * n + j];
                gram[k * n + j] += qik * qs[i * n + j];
            }
        }
    }
    // Second squaring level: G² and S² = Q⁴ capture another round of sign
    // cancellation (`ρ(G) = ρ(G²)^{1/2}` for symmetric `G`,
    // `ρ(Q)⁴ = ρ(Q⁴) ≤ ρ(|Q⁴|)`), and the fourth root deflates whatever
    // overshoot |·| still causes. `qs` is dead after the fused pass and
    // doubles as the squaring scratch panel.
    let slop = 3.0 * (n as f64).powi(5) * f64::EPSILON;
    let cw_s = cw_upper(square, n, x, y);
    mat_sq_into(square, n, qs);
    let cw_s2 = cw_upper(qs, n, x, y);
    mat_sq_into(gram, n, qs);
    let cw_g2 = cw_upper(qs, n, x, y);
    let cw_radius = (cw_s + slop).sqrt().min((cw_s2 + slop).sqrt().sqrt());
    let cw_norm_sq = (cw_g2 + slop).sqrt();
    (cw_radius, cw_norm_sq)
}

/// O(n²) certified bounds on the spectral norm and spectral radius,
/// computed without any eigendecomposition. See [`cheap_spectral_bounds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheapSpectralBounds {
    /// Certified lower bound on `‖A‖₂`: the largest of the column 2-norms,
    /// row 2-norms and `max |a_ij|`, deflated by the guard factor.
    pub norm_lower: f64,
    /// Certified upper bound on `‖A‖₂`:
    /// `min(‖A‖_F, sqrt(‖A‖₁ · ‖A‖_∞), CW(|(AᵀA)²|)^{1/4})`, inflated by
    /// the guard factor, where `CW` is the Collatz–Wielandt certificate
    /// driven toward the Perron root by power iteration (see `cw_refine`).
    pub norm_upper: f64,
    /// Certified upper bound on the spectral radius `ρ(A)`:
    /// `min(norm_upper, ‖A‖₁, ‖A‖_∞, CW(|A²|)^{1/2}, CW(|A⁴|)^{1/4})` —
    /// the induced-norm / Gershgorin family plus the power-kicked
    /// Collatz–Wielandt certificates of `cw_refine` — guard-inflated.
    /// Meaningful for square matrices.
    pub radius_upper: f64,
}

/// Computes two-sided O(n²) brackets for the spectral norm and an upper
/// bound for the spectral radius, **guaranteed to bracket the computed**
/// [`norm_2`] / [`crate::spectral_radius`] values (guard factor included):
///
/// * `norm_lower ≤ norm_2(m) ≤ norm_upper`,
/// * `spectral_radius(m) ≤ radius_upper` (square `m`).
///
/// Used by the JSR product-tree searches to skip the exact Schur-based
/// evaluations at nodes whose bracket provably cannot affect a pruning or
/// lower-bound decision. Everything is accumulated under a `max_abs`
/// prescale, so extreme-but-representable magnitudes neither underflow nor
/// overflow — the same discipline as [`norm_fro`].
///
/// Matrices containing non-finite entries yield the trivially sound
/// `(0, ∞, ∞)`, so every NaN/∞ comparison downstream falls through to the
/// exact path.
pub fn cheap_spectral_bounds(m: &Matrix) -> CheapSpectralBounds {
    let scale = m.max_abs();
    if scale == 0.0 {
        return CheapSpectralBounds {
            norm_lower: 0.0,
            norm_upper: 0.0,
            radius_upper: 0.0,
        };
    }
    // `max_abs` is a NaN-ignoring fold, so an explicit finiteness scan is
    // needed: a NaN entry must disable screening entirely (trivially sound
    // `∞` bounds push every decision to the exact path), not silently drop
    // out of the accumulators and yield a bogus finite bound.
    if !scale.is_finite() || !m.is_finite() {
        return CheapSpectralBounds {
            norm_lower: 0.0,
            norm_upper: f64::INFINITY,
            radius_upper: f64::INFINITY,
        };
    }
    let (rows, cols) = m.shape();
    // Row pass: Frobenius sum, max row 2-norm, induced ∞-norm.
    let mut fro_sum = 0.0_f64;
    let mut max_row_sumsq = 0.0_f64;
    let mut max_row_abs = 0.0_f64;
    for i in 0..rows {
        let mut sumsq = 0.0_f64;
        let mut abssum = 0.0_f64;
        for &x in m.row(i) {
            let v = x / scale;
            sumsq += v * v;
            abssum += v.abs();
        }
        fro_sum += sumsq;
        max_row_sumsq = max_row_sumsq.max(sumsq);
        max_row_abs = max_row_abs.max(abssum);
    }
    // Column pass: induced 1-norm and max column 2-norm. Strided reads —
    // the matrices this screens are tiny, so locality is a non-issue.
    let mut max_col_sumsq = 0.0_f64;
    let mut max_col_abs = 0.0_f64;
    let data = m.as_slice();
    for j in 0..cols {
        let mut sumsq = 0.0_f64;
        let mut abssum = 0.0_f64;
        for i in 0..rows {
            let v = data[i * cols + j] / scale;
            sumsq += v * v;
            abssum += v.abs();
        }
        max_col_sumsq = max_col_sumsq.max(sumsq);
        max_col_abs = max_col_abs.max(abssum);
    }
    // Power-kicked Collatz–Wielandt refinement (square matrices only) —
    // soundness argument and certificate chain documented on `cw_refine`.
    let mut cw_radius = f64::INFINITY;
    let mut cw_norm_sq = f64::INFINITY;
    if rows == cols {
        let n = rows;
        // This sits on the screening hot path: the bracket only pays for
        // itself if it stays well below the exact Schur evaluations it
        // replaces, so the kernel-sized range (n ≤ MAX_DIM — every matrix
        // the JSR searches actually screen) runs entirely on the stack and
        // larger matrices take a single arena allocation.
        const STACK_WS: usize =
            3 * crate::small::MAX_DIM * crate::small::MAX_DIM + 2 * crate::small::MAX_DIM;
        if 3 * n * n + 2 * n <= STACK_WS {
            let mut ws = [0.0_f64; STACK_WS];
            (cw_radius, cw_norm_sq) = cw_refine(data, n, scale, &mut ws);
        } else {
            // Arena fallback for n > MAX_DIM only — matrices the JSR search
            // never screens, so the allocation is off the hot path by
            // construction.
            // lint: allow(hotpath)
            let mut ws = vec![0.0_f64; 3 * n * n + 2 * n];
            (cw_radius, cw_norm_sq) = cw_refine(data, n, scale, &mut ws);
        }
    }
    let fro = fro_sum.sqrt() * scale;
    // sqrt(‖A‖₁ ‖A‖_∞) as a product of square roots so the intermediate
    // cannot overflow even when both norms are near f64::MAX.
    let holder = max_col_abs.sqrt() * max_row_abs.sqrt() * scale;
    let norm_upper = fro.min(holder).min(cw_norm_sq.sqrt() * scale) * GUARD;
    // ‖A e_j‖ ≤ ‖A‖₂ and ‖Aᵀ e_i‖ ≤ ‖A‖₂; the largest scaled entry is 1,
    // so this also dominates the `max_abs` lower bound.
    let norm_lower = max_col_sumsq.max(max_row_sumsq).sqrt() * scale / GUARD;
    let radius_upper = norm_upper
        .min(max_col_abs * scale * GUARD)
        .min(max_row_abs * scale * GUARD)
        .min(cw_radius * scale * GUARD);
    CheapSpectralBounds {
        norm_lower,
        norm_upper,
        radius_upper,
    }
}

/// Convenience wrapper: `(lower, upper)` bracket on the computed
/// [`norm_2`]. See [`cheap_spectral_bounds`].
pub fn norm_2_bracket(m: &Matrix) -> (f64, f64) {
    let b = cheap_spectral_bounds(m);
    (b.norm_lower, b.norm_upper)
}

/// Convenience wrapper: certified upper bound on the computed
/// [`crate::spectral_radius`]. See [`cheap_spectral_bounds`].
pub fn spectral_radius_upper(m: &Matrix) -> f64 {
    cheap_spectral_bounds(m).radius_upper
}

/// Spectral norm (largest singular value), computed as the square root of
/// the largest eigenvalue of the symmetric product `AᵀA` via the QR
/// eigenvalue iteration.
///
/// Power iteration was deliberately rejected here: on matrices whose
/// singular values cluster (exactly what an optimised ellipsoidal norm
/// produces in the JSR pipeline) it can *under*-estimate the norm, which
/// would silently invalidate stability certificates built on top of it.
pub fn norm_2(m: &Matrix) -> f64 {
    let fro = norm_fro(m);
    if fro == 0.0 {
        return 0.0;
    }
    // Scale to avoid overflow in the squared spectrum.
    let scaled = m.scale(1.0 / fro);
    let ata = match scaled.transpose().matmul(&scaled) {
        Ok(mut p) => {
            p.symmetrize();
            p
        }
        Err(_) => return fro, // unreachable: shapes always conform
    };
    match crate::schur::eigenvalues(&ata) {
        Ok(eigs) => {
            let lam_max = eigs.iter().map(|e| e.re).fold(0.0_f64, f64::max);
            fro * lam_max.max(0.0).sqrt()
        }
        // Eigenvalue failure (pathological input): fall back to the
        // Frobenius norm, which is a valid upper bound on the 2-norm.
        Err(_) => fro,
    }
}

/// Parlett–Reinsch diagonal balancing.
///
/// Returns `(B, d)` where `B = D⁻¹ A D` with `D = diag(d)` and the row and
/// column norms of `B` are (nearly) equal. Balancing is a similarity
/// transform, so it preserves eigenvalues while dramatically improving the
/// accuracy of the QR eigenvalue iteration and the tightness of norm-based
/// spectral bounds.
///
/// # Errors
///
/// Returns an error only if `m` is not square.
pub fn balance(m: &Matrix) -> Result<(Matrix, Vec<f64>)> {
    if !m.is_square() {
        return Err(crate::Error::NotSquare {
            op: "balance",
            dims: m.shape(),
        });
    }
    let n = m.rows();
    let mut a = m.clone();
    let mut d = vec![1.0_f64; n];
    let radix = 2.0_f64;
    let mut done = false;
    let mut sweeps = 0;
    while !done && sweeps < 100 {
        done = true;
        sweeps += 1;
        for i in 0..n {
            let mut c = 0.0_f64;
            let mut r = 0.0_f64;
            for j in 0..n {
                if j != i {
                    c += a[(j, i)].abs();
                    r += a[(i, j)].abs();
                }
            }
            if c == 0.0 || r == 0.0 {
                continue;
            }
            let mut f = 1.0_f64;
            let mut c_work = c;
            let s = c + r;
            while c_work < r / radix {
                f *= radix;
                c_work *= radix * radix;
            }
            while c_work > r * radix {
                f /= radix;
                c_work /= radix * radix;
            }
            if (c_work + r / f.max(1.0)) < 0.95 * s || f != 1.0 {
                // Apply the scaling only if it actually reduces the norms.
                let c_new = c * f;
                let r_new = r / f;
                if c_new + r_new < 0.95 * s {
                    done = false;
                    d[i] *= f;
                    for j in 0..n {
                        let v = a[(i, j)] / f;
                        a[(i, j)] = v;
                    }
                    for j in 0..n {
                        let v = a[(j, i)] * f;
                        a[(j, i)] = v;
                    }
                }
            }
        }
    }
    Ok((a, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn norms_of_identity() {
        let i = Matrix::identity(3);
        assert_eq!(norm_1(&i), 1.0);
        assert_eq!(norm_inf(&i), 1.0);
        assert!((norm_fro(&i) - 3.0_f64.sqrt()).abs() < 1e-15);
        assert!((norm_2(&i) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn norm_1_and_inf_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(norm_1(&a), 6.0); // col 1: |−2|+|4| = 6
        assert_eq!(norm_inf(&a), 7.0); // row 1: |3|+|4| = 7
    }

    #[test]
    fn norm_2_of_diag_is_max_abs() {
        let d = Matrix::diag(&[3.0, -5.0, 1.0]);
        assert!((norm_2(&d) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn norm_2_rank_one() {
        // ||u vᵀ||₂ = ||u|| ||v||
        let u = Matrix::col_vec(&[1.0, 2.0]);
        let v = Matrix::row_vec(&[3.0, 4.0]);
        let m = &u * &v;
        let expected = (5.0_f64).sqrt() * 5.0;
        assert!((norm_2(&m) - expected).abs() < 1e-9 * expected);
    }

    #[test]
    fn norm_2_zero() {
        assert_eq!(norm_2(&Matrix::zeros(3, 3)), 0.0);
    }

    #[test]
    fn norm_ordering() {
        // ||A||₂ <= sqrt(||A||₁ ||A||_inf) always
        let a = Matrix::from_rows(&[&[1.0, 200.0], &[0.001, 3.0]]).unwrap();
        let n2 = norm_2(&a);
        assert!(n2 <= (norm_1(&a) * norm_inf(&a)).sqrt() + 1e-9);
        assert!(n2 >= a.max_abs() - 1e-9);
    }

    #[test]
    fn cheap_bounds_bracket_exact_norms() {
        let cases = [
            Matrix::identity(3),
            Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap(),
            Matrix::from_rows(&[&[1.0, 200.0], &[0.001, 3.0]]).unwrap(),
            Matrix::diag(&[3.0, -5.0, 1.0]),
            Matrix::from_fn(6, 6, |i, j| ((i * 13 + j * 7) % 9) as f64 / 4.0 - 1.0),
            Matrix::from_rows(&[&[0.0, 1.0], &[-0.25, 0.0]]).unwrap(),
        ];
        for m in &cases {
            let b = cheap_spectral_bounds(m);
            let n2 = norm_2(m);
            assert!(b.norm_lower <= n2, "lower {} > norm_2 {n2}", b.norm_lower);
            assert!(n2 <= b.norm_upper, "norm_2 {n2} > upper {}", b.norm_upper);
            let rho = crate::spectral_radius(m).unwrap();
            assert!(rho <= b.radius_upper, "rho {rho} > bound {}", b.radius_upper);
            let (lo, hi) = norm_2_bracket(m);
            assert_eq!(lo, b.norm_lower);
            assert_eq!(hi, b.norm_upper);
            assert_eq!(spectral_radius_upper(m), b.radius_upper);
        }
    }

    #[test]
    fn cheap_bounds_degenerate_inputs() {
        let z = cheap_spectral_bounds(&Matrix::zeros(3, 3));
        assert_eq!((z.norm_lower, z.norm_upper, z.radius_upper), (0.0, 0.0, 0.0));
        let mut m = Matrix::identity(2);
        m[(0, 1)] = f64::NAN;
        let b = cheap_spectral_bounds(&m);
        assert_eq!(b.norm_lower, 0.0);
        assert_eq!(b.norm_upper, f64::INFINITY);
        assert_eq!(b.radius_upper, f64::INFINITY);
        let mut inf = Matrix::identity(2);
        inf[(1, 0)] = f64::INFINITY;
        assert_eq!(cheap_spectral_bounds(&inf).norm_upper, f64::INFINITY);
    }

    #[test]
    fn cheap_bounds_survive_extreme_magnitudes() {
        let huge = Matrix::diag(&[1e200, 3e199]);
        let b = cheap_spectral_bounds(&huge);
        assert!(b.norm_upper.is_finite());
        assert!(b.norm_lower <= norm_2(&huge) && norm_2(&huge) <= b.norm_upper);
        let tiny = Matrix::diag(&[1e-180, 3e-181]);
        let bt = cheap_spectral_bounds(&tiny);
        assert!(bt.norm_lower > 0.0);
        assert!(bt.norm_lower <= norm_2(&tiny) && norm_2(&tiny) <= bt.norm_upper);
    }

    #[test]
    fn radius_bound_tighter_than_norm_bound_when_rows_small() {
        // Highly non-normal matrix: ρ ≤ ‖·‖_∞ = 2 while the 2-norm bound is
        // the Frobenius norm ≈ 2.06 — the induced-norm term must win.
        let m = Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.5]]).unwrap();
        let b = cheap_spectral_bounds(&m);
        assert!(b.radius_upper < b.norm_upper);
    }

    #[test]
    fn balance_preserves_similarity() {
        let a = Matrix::from_rows(&[&[1.0, 1e6], &[1e-6, 2.0]]).unwrap();
        let (b, d) = balance(&a).unwrap();
        // reconstruct D B D^{-1} and compare with A
        let dm = Matrix::diag(&d);
        let dinv = Matrix::diag(&d.iter().map(|x| 1.0 / x).collect::<Vec<_>>());
        let back = &dm * &b * &dinv;
        assert!(back.approx_eq(&a, 1e-9, 1e-9));
        // balanced matrix should have much smaller norm spread
        assert!(norm_inf(&b) < norm_inf(&a));
    }

    #[test]
    fn balance_rejects_rectangular() {
        assert!(balance(&Matrix::zeros(2, 3)).is_err());
    }
}

#[cfg(test)]
mod extreme_scale_tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn fro_and_2_norm_survive_tiny_magnitudes() {
        let m = Matrix::diag(&[1e-180, 3e-181]);
        assert!((norm_fro(&m) - (1e-180_f64.powi(2) + 3e-181_f64.powi(2)).sqrt() * 1.0).abs()
            < 1e-12 * 1e-180 || norm_fro(&m) > 0.0);
        assert!((norm_2(&m) - 1e-180).abs() < 1e-10 * 1e-180, "{}", norm_2(&m));
    }

    #[test]
    fn fro_and_2_norm_survive_huge_magnitudes() {
        let m = Matrix::diag(&[1e200, 3e199]);
        assert!(norm_fro(&m).is_finite());
        let n2 = norm_2(&m);
        assert!(n2.is_finite());
        assert!((n2 - 1e200).abs() < 1e-9 * 1e200, "{n2}");
    }
}
