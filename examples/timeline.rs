//! Timeline example (paper Figure 1): run a control task on a loaded
//! fixed-priority platform with the overrun-adaptive release policy and
//! render what happens when jobs overrun.
//!
//! ```text
//! cargo run -p overrun-control --example timeline
//! ```
#![allow(clippy::print_stdout)] // examples exist to print

use overrun_rtsim::{
    render_timeline, response_time_analysis, utilization, ExecutionModel, OverrunPolicy,
    Scheduler, SchedulerConfig, Span, Task, TimelineOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A platform with an interrupt burst task and a control task whose
    // worst case exceeds its period — the paper's motivating scenario.
    let tasks = vec![
        Task::new(
            "irq_burst",
            Span::from_millis(40),
            0,
            ExecutionModel::Bimodal {
                min: Span::from_millis(1),
                max: Span::from_millis(2),
                heavy_min: Span::from_millis(7),
                heavy_max: Span::from_millis(9),
                heavy_prob: 0.25,
            },
        ),
        Task::new(
            "control",
            Span::from_millis(10),
            1,
            ExecutionModel::Uniform {
                min: Span::from_millis(3),
                max: Span::from_millis(5),
            },
        ),
    ];
    println!("utilisation (worst case): {:.2}", utilization(&tasks));
    let wcrt = response_time_analysis(&tasks)?;
    for (t, r) in tasks.iter().zip(&wcrt) {
        println!("  {:<9} T = {:>5}  WCRT = {}", t.name, t.period, r);
    }

    let sched = Scheduler::new(tasks)?;
    let ctl = sched.task_id("control").expect("control task exists");
    let sched = sched.with_adaptive_task(ctl, 5)?; // Ts = T/5 = 2 ms

    let trace = sched.run_control_trace(&SchedulerConfig {
        horizon: Span::from_millis(200),
        seed: 14,
    })?;
    trace.check_invariants()?;
    println!(
        "\n{} control jobs, {} overruns\n",
        trace.jobs.len(),
        trace.overrun_count()
    );
    let art = render_timeline(
        &trace,
        &TimelineOptions {
            cols_per_sensor_tick: 2,
            max_jobs: 14,
        },
    )?;
    println!("{art}");

    // The deployment check of paper Sec. V-B: the observed worst case must
    // be covered by the designed interval set.
    let policy = OverrunPolicy::new(Span::from_millis(10), 5)?;
    let designed_rmax = wcrt[1];
    let observed = trace
        .jobs
        .iter()
        .map(|j| j.response)
        .fold(Span::ZERO, Span::max);
    println!(
        "designed Rmax = {designed_rmax}, observed worst response = {observed}: compatible = {}",
        policy.deployment_compatible(designed_rmax, observed)?
    );
    Ok(())
}
