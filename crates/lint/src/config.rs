//! `lint.toml` configuration: a deliberately tiny TOML subset, parsed with
//! no dependencies (consistent with the workspace's vendored-offline
//! policy).
//!
//! Supported syntax — everything the checked-in configs use and nothing
//! more:
//!
//! * `[section]` and `[[array-of-tables]]` headers,
//! * `key = "string"`, `key = 123`, `key = true|false`,
//! * `key = ["a", "b", …]` string arrays (may span multiple lines),
//! * `#` comments (also trailing) and blank lines.
//!
//! Unknown sections or keys are **errors**, so a typo in `lint.toml` fails
//! loudly instead of silently disabling a rule.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One crate registered for linting.
#[derive(Debug, Clone, Default)]
pub struct CrateConfig {
    /// Crate name as it appears in diagnostics and the baseline file.
    pub name: String,
    /// Source root scanned recursively for `*.rs`, relative to the config
    /// file's directory.
    pub path: String,
    /// Determinism rule applies (library crates on the certified path).
    pub determinism: bool,
    /// Panic-freedom ratchet applies.
    pub ratchet: bool,
}

/// Fully parsed lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory containing the config file; crate paths resolve against
    /// it.
    pub root: PathBuf,
    /// Registered crates, in file order.
    pub crates: Vec<CrateConfig>,
    /// Identifier tokens forbidden by the determinism rule (`HashMap`, …).
    pub det_forbidden_idents: Vec<String>,
    /// `::`-joined paths forbidden by the determinism rule
    /// (`Instant::now`, `std::env`, …). Matched as token subsequences.
    pub det_forbidden_paths: Vec<String>,
    /// Panic-site tokens counted by the ratchet (`unwrap`, `expect`,
    /// `panic`).
    pub ratchet_tokens: Vec<String>,
    /// Baseline file path, relative to `root`.
    pub baseline: String,
    /// `file:line` sites exempt from the unsafe-hygiene rule.
    pub unsafe_allow: Vec<String>,
    /// Function names whose bodies may not allocate. Entries are either a
    /// bare function name (`matmul_into`) or `crate::name`-qualified.
    pub hotpath_functions: Vec<String>,
    /// Allocation tokens forbidden inside hot-path functions: either
    /// `A::b` paths, `name!` macros, or bare method names (matched after a
    /// `.`).
    pub hotpath_forbidden: Vec<String>,
}

/// Parses a config file. See the module docs for the accepted subset.
pub fn load(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let root = path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    parse(&text, root)
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"…"`.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// `["…", …]`.
    StrArray(Vec<String>),
}

/// One parsed `[section]` / `[[section]]` entry: name plus its key/value map.
pub type Table = (String, BTreeMap<String, Value>);

/// Low-level parse: section name → (for `[[…]]`) list of key/value tables.
/// `[section]` parses as a single-element list. Exposed for the baseline
/// file, which reuses the same syntax.
pub fn parse_tables(text: &str) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut idx = 0;
    while idx < lines.len() {
        let lineno = idx + 1;
        let mut joined;
        let mut line = strip_comment(lines[idx]).trim();
        // Multi-line arrays: keep appending lines until brackets balance.
        if line.contains('=') && !brackets_balanced(line) {
            joined = line.to_string();
            while idx + 1 < lines.len() && !brackets_balanced(&joined) {
                idx += 1;
                joined.push(' ');
                joined.push_str(strip_comment(lines[idx]).trim());
            }
            if !brackets_balanced(&joined) {
                return Err(format!("line {lineno}: unterminated array"));
            }
            line = &joined;
        }
        idx += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {lineno}: malformed table header"))?;
            tables.push((name.trim().to_string(), BTreeMap::new()));
        } else if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: malformed section header"))?;
            tables.push((name.trim().to_string(), BTreeMap::new()));
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let value = parse_value(value.trim())
                .map_err(|e| format!("line {lineno}: {e}"))?;
            let table = tables
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: key before any [section]"))?;
            table.1.insert(key.trim().to_string(), value);
        }
    }
    Ok(tables)
}

/// `true` when every `[` outside a string has its matching `]` — the
/// multi-line-array join criterion.
fn brackets_balanced(line: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
    }
    depth == 0
}

/// Strips a trailing `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = v.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("arrays must close on the same line")?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (s, after) = parse_string(rest)?;
            items.push(s);
            rest = after.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err("expected `,` between array items".into());
            }
        }
        return Ok(Value::StrArray(items));
    }
    if v.starts_with('"') {
        let (s, rest) = parse_string(v)?;
        if !rest.trim().is_empty() {
            return Err("trailing characters after string".into());
        }
        return Ok(Value::Str(s));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{v}`"))
}

/// Parses one leading `"…"` (with `\"` / `\\` escapes); returns the string
/// and the remaining input.
fn parse_string(input: &str) -> Result<(String, &str), String> {
    let body = input
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string, found `{input}`"))?;
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => {
                let (_, esc) = chars.next().ok_or("dangling escape")?;
                out.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
            }
            '"' => return Ok((out, &body[i + c.len_utf8()..])),
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

macro_rules! take {
    ($table:expr, $key:literal, $variant:path) => {
        match $table.remove($key) {
            Some($variant(v)) => Some(v),
            Some(other) => return Err(format!("`{}`: wrong type {:?}", $key, other)),
            None => None,
        }
    };
}

fn parse(text: &str, root: PathBuf) -> Result<Config, String> {
    let mut cfg = Config {
        root,
        baseline: "lint-baseline.toml".into(),
        ..Config::default()
    };
    for (name, mut table) in parse_tables(text)? {
        match name.as_str() {
            "crate" => {
                let c = CrateConfig {
                    name: take!(table, "name", Value::Str)
                        .ok_or("[[crate]] missing `name`")?,
                    path: take!(table, "path", Value::Str)
                        .ok_or("[[crate]] missing `path`")?,
                    determinism: take!(table, "determinism", Value::Bool).unwrap_or(false),
                    ratchet: take!(table, "ratchet", Value::Bool).unwrap_or(false),
                };
                cfg.crates.push(c);
            }
            "determinism" => {
                if let Some(v) = take!(table, "forbidden_idents", Value::StrArray) {
                    cfg.det_forbidden_idents = v;
                }
                if let Some(v) = take!(table, "forbidden_paths", Value::StrArray) {
                    cfg.det_forbidden_paths = v;
                }
            }
            "panic_freedom" => {
                if let Some(v) = take!(table, "tokens", Value::StrArray) {
                    cfg.ratchet_tokens = v;
                }
                if let Some(v) = take!(table, "baseline", Value::Str) {
                    cfg.baseline = v;
                }
            }
            "unsafe_hygiene" => {
                if let Some(v) = take!(table, "allow", Value::StrArray) {
                    cfg.unsafe_allow = v;
                }
            }
            "hotpath" => {
                if let Some(v) = take!(table, "functions", Value::StrArray) {
                    cfg.hotpath_functions = v;
                }
                if let Some(v) = take!(table, "forbidden", Value::StrArray) {
                    cfg.hotpath_forbidden = v;
                }
            }
            other => return Err(format!("unknown section `[{other}]`")),
        }
        if let Some(stray) = table.keys().next() {
            return Err(format!("unknown key `{stray}` in `[{name}]`"));
        }
    }
    if cfg.ratchet_tokens.is_empty() {
        cfg.ratchet_tokens = vec!["unwrap".into(), "expect".into(), "panic".into()];
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
[determinism]
forbidden_idents = ["HashMap", "HashSet"] # trailing comment
forbidden_paths = ["Instant::now", "std::env"]

[panic_freedom]
baseline = "base.toml"

[unsafe_hygiene]
allow = []

[hotpath]
functions = ["matmul_into"]
forbidden = ["Vec::new", "vec!", "clone"]

[[crate]]
name = "demo"
path = "src"
determinism = true
ratchet = true
"#;

    #[test]
    fn parses_full_sample() {
        let cfg = parse(SAMPLE, PathBuf::from(".")).unwrap();
        assert_eq!(cfg.det_forbidden_idents, vec!["HashMap", "HashSet"]);
        assert_eq!(cfg.baseline, "base.toml");
        assert_eq!(cfg.crates.len(), 1);
        assert_eq!(cfg.crates[0].name, "demo");
        assert!(cfg.crates[0].determinism);
        assert_eq!(cfg.hotpath_forbidden.len(), 3);
        assert_eq!(cfg.ratchet_tokens, vec!["unwrap", "expect", "panic"]);
    }

    #[test]
    fn unknown_section_rejected() {
        assert!(parse("[nope]\n", PathBuf::from(".")).is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        assert!(parse("[hotpath]\nbogus = 1\n", PathBuf::from(".")).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let cfg = parse(
            "[panic_freedom]\nbaseline = \"a#b.toml\"\n",
            PathBuf::from("."),
        )
        .unwrap();
        assert_eq!(cfg.baseline, "a#b.toml");
    }

    #[test]
    fn key_before_section_rejected() {
        assert!(parse_tables("x = 1\n").is_err());
    }

    #[test]
    fn integer_values_parse() {
        let t = parse_tables("[a]\nn = 42\n").unwrap();
        assert_eq!(t[0].1["n"], Value::Int(42));
    }
}
