//! Property-based tests for the linear algebra kernels.

use overrun_linalg::{
    eigenvalues, expm, expm_integral, norm_1, norm_2, norm_fro, norm_inf, solve_discrete_lyapunov,
    solve_discrete_lyapunov_direct, spectral_radius, Cholesky, Lu, Matrix, Qr,
};
use proptest::prelude::*;

/// Strategy: a square matrix with entries in [-mag, mag].
fn square_matrix(n: usize, mag: f64) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-mag..mag, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v).expect("sized buffer"))
}

/// Strategy: a symmetric positive definite matrix built as `M Mᵀ + εI`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n, 2.0).prop_map(move |m| {
        &m * &m.transpose() + Matrix::identity(n) * 0.5
    })
}

/// Strategy: a Schur-stable matrix (scaled so that ρ < 0.95).
fn stable_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n, 1.0).prop_filter_map("spectral radius computable", move |m| {
        let rho = spectral_radius(&m).ok()?;
        if rho < 1e-12 {
            Some(m)
        } else {
            Some(m.scale(0.95 / rho.max(1.0)).scale(0.9))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_reconstructs_solution(m in square_matrix(4, 5.0), rhs in prop::collection::vec(-5.0..5.0f64, 4)) {
        let lu = Lu::new(&m).unwrap();
        if !lu.is_singular() {
            let b = Matrix::col_vec(&rhs);
            let x = lu.solve(&b).unwrap();
            let back = &m * &x;
            let scale = m.max_abs().max(1.0) * x.max_abs().max(1.0);
            prop_assert!(back.approx_eq(&b, 1e-8 * scale, 1e-8));
        }
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in square_matrix(3, 2.0), b in square_matrix(3, 2.0)) {
        let dab = (&a * &b).det().unwrap();
        let da = a.det().unwrap();
        let db = b.det().unwrap();
        let scale = da.abs().max(1.0) * db.abs().max(1.0);
        prop_assert!((dab - da * db).abs() < 1e-9 * scale);
    }

    #[test]
    fn qr_orthogonal_and_reconstructs(a in square_matrix(4, 3.0)) {
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q().transpose() * qr.q();
        prop_assert!(qtq.approx_eq(&Matrix::identity(4), 1e-10, 1e-10));
        prop_assert!((qr.q() * qr.r()).approx_eq(&a, 1e-9, 1e-9));
    }

    #[test]
    fn cholesky_reconstructs_spd(a in spd_matrix(3)) {
        let ch = Cholesky::new(&a).unwrap();
        let back = ch.l() * ch.l().transpose();
        prop_assert!(back.approx_eq(&a, 1e-8 * a.max_abs().max(1.0), 1e-8));
    }

    #[test]
    fn eigenvalue_sum_is_trace(a in square_matrix(5, 2.0)) {
        let eigs = eigenvalues(&a).unwrap();
        let s: f64 = eigs.iter().map(|e| e.re).sum();
        prop_assert!((s - a.trace()).abs() < 1e-6 * a.max_abs().max(1.0) * 5.0);
        // complex eigenvalues come in conjugate pairs
        let im_sum: f64 = eigs.iter().map(|e| e.im).sum();
        prop_assert!(im_sum.abs() < 1e-6 * a.max_abs().max(1.0) * 5.0);
    }

    #[test]
    fn spectral_radius_bounded_by_norms(a in square_matrix(4, 3.0)) {
        let rho = spectral_radius(&a).unwrap();
        prop_assert!(rho <= norm_1(&a) + 1e-9);
        prop_assert!(rho <= norm_inf(&a) + 1e-9);
        prop_assert!(rho <= norm_fro(&a) + 1e-9);
        prop_assert!(rho <= norm_2(&a) + 1e-6 * norm_fro(&a).max(1.0));
    }

    #[test]
    fn expm_inverse_identity(a in square_matrix(3, 1.0)) {
        let e = expm(&a).unwrap();
        let em = expm(&(-&a)).unwrap();
        let prod = &e * &em;
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-9, 1e-9));
    }

    #[test]
    fn expm_det_is_exp_trace(a in square_matrix(3, 1.0)) {
        let e = expm(&a).unwrap();
        let lhs = e.det().unwrap();
        let rhs = a.trace().exp();
        prop_assert!((lhs - rhs).abs() < 1e-8 * rhs.abs().max(1.0));
    }

    #[test]
    fn zoh_semigroup(a in square_matrix(2, 2.0), h1 in 0.01..0.5f64, h2 in 0.01..0.5f64) {
        let b = Matrix::col_vec(&[0.0, 1.0]);
        let (phi1, g1) = expm_integral(&a, &b, h1).unwrap();
        let (phi2, g2) = expm_integral(&a, &b, h2).unwrap();
        let (phi12, g12) = expm_integral(&a, &b, h1 + h2).unwrap();
        prop_assert!((&phi2 * &phi1).approx_eq(&phi12, 1e-8, 1e-8));
        prop_assert!((&phi2 * &g1 + &g2).approx_eq(&g12, 1e-8, 1e-8));
    }

    #[test]
    fn lyapunov_smith_matches_direct(a in stable_matrix(3)) {
        let q = Matrix::identity(3);
        let x1 = solve_discrete_lyapunov(&a, &q).unwrap();
        let x2 = solve_discrete_lyapunov_direct(&a, &q).unwrap();
        prop_assert!(x1.approx_eq(&x2, 1e-7 * x1.max_abs().max(1.0), 1e-7));
        // residual check
        let res = a.transpose() * &x1 * &a - &x1 + &q;
        prop_assert!(res.max_abs() < 1e-8 * x1.max_abs().max(1.0));
    }

    #[test]
    fn norm_triangle_inequality(a in square_matrix(3, 4.0), b in square_matrix(3, 4.0)) {
        let sum = &a + &b;
        prop_assert!(norm_fro(&sum) <= norm_fro(&a) + norm_fro(&b) + 1e-12);
        prop_assert!(norm_1(&sum) <= norm_1(&a) + norm_1(&b) + 1e-12);
        prop_assert!(norm_inf(&sum) <= norm_inf(&a) + norm_inf(&b) + 1e-12);
    }

    #[test]
    fn norm_submultiplicative(a in square_matrix(3, 3.0), b in square_matrix(3, 3.0)) {
        let p = &a * &b;
        prop_assert!(norm_1(&p) <= norm_1(&a) * norm_1(&b) + 1e-9);
        prop_assert!(norm_inf(&p) <= norm_inf(&a) * norm_inf(&b) + 1e-9);
        prop_assert!(norm_2(&p) <= norm_2(&a) * norm_2(&b) + 1e-6 * (norm_fro(&a) * norm_fro(&b)).max(1.0));
    }

    #[test]
    fn transpose_preserves_fro_norm(a in square_matrix(4, 5.0)) {
        prop_assert!((norm_fro(&a) - norm_fro(&a.transpose())).abs() < 1e-12);
        // and swaps 1 and inf norms
        prop_assert!((norm_1(&a) - norm_inf(&a.transpose())).abs() < 1e-12);
    }

    #[test]
    fn matmul_associative(a in square_matrix(3, 2.0), b in square_matrix(3, 2.0), c in square_matrix(3, 2.0)) {
        let left = (&a * &b) * &c;
        let right = &a * (&b * &c);
        let scale = a.max_abs().max(1.0) * b.max_abs().max(1.0) * c.max_abs().max(1.0);
        prop_assert!(left.approx_eq(&right, 1e-10 * scale, 1e-10));
    }

    #[test]
    fn kron_mixed_product(a in square_matrix(2, 2.0), b in square_matrix(2, 2.0),
                          c in square_matrix(2, 2.0), d in square_matrix(2, 2.0)) {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let lhs = a.kron(&b) * c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        let scale = lhs.max_abs().max(1.0);
        prop_assert!(lhs.approx_eq(&rhs, 1e-10 * scale, 1e-10));
    }
}

mod screening_and_kernel_properties {
    use super::*;
    use overrun_linalg::{cheap_spectral_bounds, small};

    /// Zero-inflates a buffer: small-magnitude draws become exact zeros, so
    /// the kernels' zero-skip branch and the screening accumulators see a
    /// realistic mix of sparsity (roughly a quarter of the entries).
    fn inflate(v: &[f64], n: usize, mag: f64) -> Vec<f64> {
        v[..n * n]
            .iter()
            .map(|&x| if x.abs() < mag / 4.0 { 0.0 } else { x })
            .collect()
    }

    /// Strategy: a dimension `1..=8` (the kernel range) with a zero-inflated
    /// square matrix of that size.
    fn sized_sparse(mag: f64) -> impl Strategy<Value = (usize, Vec<f64>)> {
        let full = small::MAX_DIM * small::MAX_DIM;
        (1usize..=small::MAX_DIM, prop::collection::vec(-mag..mag, full))
            .prop_map(move |(n, v)| (n, inflate(&v, n, mag)))
    }

    /// Two same-size zero-inflated buffers.
    fn sized_sparse_pair(mag: f64) -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
        let full = small::MAX_DIM * small::MAX_DIM;
        (sized_sparse(mag), prop::collection::vec(-mag..mag, full))
            .prop_map(move |((n, a), v)| {
                let b = inflate(&v, n, mag);
                (n, a, b)
            })
    }

    /// Embeds an `n × n` matrix as the top-left block of a zero matrix one
    /// larger than [`small::MAX_DIM`], forcing the generic multiply path.
    fn pad(n: usize, data: &[f64]) -> Matrix {
        let big = small::MAX_DIM + 1;
        let mut m = Matrix::zeros(big, big);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = data[i * n + j];
            }
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cheap_bounds_bracket_exact_evaluations((n, v) in sized_sparse(10.0)) {
            let m = Matrix::from_vec(n, n, v).expect("sized buffer");
            let b = cheap_spectral_bounds(&m);
            let nrm = norm_2(&m);
            prop_assert!(b.norm_lower <= nrm, "norm_lower {} > norm_2 {}", b.norm_lower, nrm);
            prop_assert!(nrm <= b.norm_upper, "norm_2 {} > norm_upper {}", nrm, b.norm_upper);
            let rho = spectral_radius(&m).unwrap();
            prop_assert!(rho <= b.radius_upper, "rho {} > radius_upper {}", rho, b.radius_upper);
            prop_assert!(b.radius_upper <= b.norm_upper, "radius bound looser than norm bound");
        }

        #[test]
        fn matmul_kernel_matches_generic_bitwise((n, a, b) in sized_sparse_pair(6.0)) {
            // n ≤ MAX_DIM dispatches to the const-generic kernel …
            let am = Matrix::from_vec(n, n, a.clone()).expect("sized buffer");
            let bm = Matrix::from_vec(n, n, b.clone()).expect("sized buffer");
            let fast = am.matmul(&bm).unwrap();
            // … while the padded embedding is too large for any kernel and
            // takes the generic loop; zero padding never contributes terms,
            // so the top-left block must agree bit for bit.
            let slow = pad(n, &a).matmul(&pad(n, &b)).unwrap();
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(fast[(i, j)].to_bits(), slow[(i, j)].to_bits(),
                        "({}, {}) of n = {}", i, j, n);
                }
            }
        }

        #[test]
        fn mul_vec_kernel_matches_generic_bitwise((n, a, x) in sized_sparse_pair(6.0)) {
            let am = Matrix::from_vec(n, n, a.clone()).expect("sized buffer");
            let x = &x[..n];
            let mut fast = vec![0.0_f64; n];
            am.mul_vec_into(x, &mut fast).unwrap();
            let big = small::MAX_DIM + 1;
            let mut xp = vec![0.0_f64; big];
            xp[..n].copy_from_slice(x);
            let mut slow = vec![0.0_f64; big];
            pad(n, &a).mul_vec_into(&xp, &mut slow).unwrap();
            for i in 0..n {
                prop_assert_eq!(fast[i].to_bits(), slow[i].to_bits(), "row {} of n = {}", i, n);
            }
        }

        #[test]
        fn fro_norm_kernel_matches_generic_bitwise((n, a) in sized_sparse(6.0)) {
            let am = Matrix::from_vec(n, n, a.clone()).expect("sized buffer");
            // The padded embedding only appends exact zeros to the sum, so
            // the generic accumulation visits the same values in order.
            prop_assert_eq!(norm_fro(&am).to_bits(), norm_fro(&pad(n, &a)).to_bits());
        }
    }
}

mod svd_properties {
    use super::*;
    use overrun_linalg::Svd;

    fn any_matrix(rows: usize, cols: usize, mag: f64) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-mag..mag, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized buffer"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn svd_reconstructs(a in any_matrix(4, 3, 5.0)) {
            let svd = Svd::new(&a).unwrap();
            let mut back = Matrix::zeros(4, 3);
            for j in 0..svd.singular_values().len() {
                let s = svd.singular_values()[j];
                for i in 0..4 {
                    for k in 0..3 {
                        back[(i, k)] += s * svd.u()[(i, j)] * svd.v()[(k, j)];
                    }
                }
            }
            let scale = a.max_abs().max(1.0);
            prop_assert!(back.approx_eq(&a, 1e-9 * scale, 1e-9));
        }

        #[test]
        fn singular_values_sorted_and_nonnegative(a in any_matrix(3, 5, 4.0)) {
            let svd = Svd::new(&a).unwrap();
            let s = svd.singular_values();
            prop_assert!(s.iter().all(|v| *v >= 0.0));
            for w in s.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
            // σ₁ = ‖A‖₂ and sqrt(Σσ²) = ‖A‖_F.
            prop_assert!((s[0] - norm_2(&a)).abs() < 1e-8 * s[0].max(1.0));
            let fro: f64 = s.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((fro - norm_fro(&a)).abs() < 1e-9 * fro.max(1.0));
        }

        #[test]
        fn rank_bounds(a in any_matrix(4, 4, 3.0)) {
            let r = overrun_linalg::rank(&a).unwrap();
            prop_assert!(r <= 4);
            // det != 0 (well away from zero) implies full rank.
            let d = a.det().unwrap();
            if d.abs() > 1e-6 {
                prop_assert_eq!(r, 4);
            }
        }

        #[test]
        fn pseudo_inverse_is_consistent(a in any_matrix(5, 2, 4.0)) {
            let pinv = Svd::new(&a).unwrap().pseudo_inverse().unwrap();
            // A A⁺ A = A always holds for the Moore–Penrose inverse.
            let back = &a * &pinv * &a;
            let scale = a.max_abs().max(1.0);
            prop_assert!(back.approx_eq(&a, 1e-7 * scale, 1e-7));
        }
    }
}
