//! Engine behavior tests: fault isolation, tightened-budget retry,
//! checkpointing, cache integrity re-verification, resume-after-kill.
//!
//! These use an injected [`CertifyRunner`] (the engine's fault seam), so
//! they are fast and exercise the engine logic — the differential oracle
//! in `tests/sweep_differential.rs` covers the real certifier.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use overrun_control::stability::{CertifyOptions, StabilityReport};
use overrun_control::{plants, stability};
use overrun_jsr::{JsrBounds, ScreenStats, StabilityVerdict};
use overrun_sweep::{
    run_sweep_with, DesignPolicy, GridSpec, SweepOptions,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "overrun-sweep-engine-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap, deterministic stand-in certifier: "bounds" derived from the
/// table size so distinct scenarios get distinct records.
fn fake_report(table: &overrun_control::ControllerTable) -> StabilityReport {
    let n = table.len() as f64;
    StabilityReport {
        bounds: JsrBounds {
            lower: 0.5 + 0.01 * n,
            upper: 0.9 + 0.01 * n,
        },
        verdict: StabilityVerdict::Stable,
        screen: ScreenStats {
            nodes: table.len() as u64,
            ..ScreenStats::default()
        },
    }
}

fn grid(n_rmax: usize) -> Vec<overrun_sweep::PreparedScenario> {
    let spec = GridSpec {
        plants: vec![("uso".into(), plants::unstable_second_order())],
        periods: vec![0.010],
        rmax_factors: (0..n_rmax).map(|i| 1.05 + 0.05 * i as f64).collect(),
        ns_values: vec![2],
        policies: vec![("adaptive".into(), DesignPolicy::PiAdaptive)],
        opts: CertifyOptions::default(),
    };
    spec.expand()
        .iter()
        .map(|s| s.prepare().expect("design"))
        .collect()
}

#[test]
fn panic_is_isolated_and_retry_succeeds() {
    let scenarios = grid(3);
    let calls = AtomicU64::new(0);
    // Every scenario's *first* attempt (full budget) panics, mimicking a
    // sanitize poison; the tightened-budget retry succeeds.
    let report = run_sweep_with(&scenarios, &SweepOptions::default(), &|_, t, o| {
        calls.fetch_add(1, Ordering::SeqCst);
        assert!(
            (o.max_depth == CertifyOptions::default().max_depth) || o.max_depth <= 4,
            "retry must tighten the budget"
        );
        if o.max_depth == CertifyOptions::default().max_depth {
            panic!("[sanitize] injected poison");
        }
        Ok(fake_report(t))
    })
    .expect("sweep must not abort on scenario panics");

    assert_eq!(report.stats.errors, 0);
    assert_eq!(report.stats.retried, 3);
    assert_eq!(calls.load(Ordering::SeqCst), 6, "one retry per scenario");
    for o in &report.outcomes {
        let rec = o.result.as_ref().expect("retry succeeded");
        assert_eq!(rec.attempts, 2);
    }
}

#[test]
fn double_fault_is_a_structured_error_not_an_abort() {
    let scenarios = grid(2);
    // A runner only sees the materialized triple; the content key is how
    // it (and the cache) identifies a scenario.
    let poisoned = scenarios[1].key;
    let report = run_sweep_with(&scenarios, &SweepOptions::default(), &|p, t, _| {
        // Key with the *grid* budget so the tightened retry still matches
        // (the retry passes different opts, but it is the same scenario).
        if overrun_sweep::certification_key(p, t, &CertifyOptions::default()) == poisoned {
            panic!("[sanitize] non-finite value");
        }
        Ok(fake_report(t))
    })
    .expect("sweep survives double faults");

    assert_eq!(report.stats.errors, 1);
    assert!(report.outcomes[0].result.is_ok());
    let err = report.outcomes[1].result.as_ref().expect_err("faulted");
    assert_eq!(err.attempts, 2);
    assert!(matches!(
        err.fault,
        overrun_sweep::ScenarioFault::Panicked(_)
    ));
    assert_eq!(report.errors().len(), 1);
}

#[test]
fn err_results_are_faults_too() {
    let scenarios = grid(1);
    let report = run_sweep_with(
        &scenarios,
        &SweepOptions {
            retry: false,
            ..SweepOptions::default()
        },
        &|_, _, _| {
            Err(overrun_control::Error::Design(
                "no stabilising gain".to_string(),
            ))
        },
    )
    .expect("sweep survives Err results");
    assert_eq!(report.stats.errors, 1);
    let err = report.outcomes[0].result.as_ref().expect_err("faulted");
    assert_eq!(err.attempts, 1);
    assert!(matches!(err.fault, overrun_sweep::ScenarioFault::Failed(_)));
}

#[test]
fn warm_cache_reports_all_hits_and_identical_records() {
    let dir = tmp_dir("warm");
    let scenarios = grid(4);
    let opts = SweepOptions {
        cache_dir: Some(dir.clone()),
        shard_size: 2,
        ..SweepOptions::default()
    };
    let runner: overrun_sweep::CertifyRunner =
        &|_, t: &overrun_control::ControllerTable, _: &CertifyOptions| Ok(fake_report(t));

    let cold = run_sweep_with(&scenarios, &opts, runner).expect("cold run");
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(cold.stats.cache_misses, 4);
    assert_eq!(cold.stats.computed, 4);

    // Second run: 100% hits, and records identical to the cold run's.
    let warm = run_sweep_with(&scenarios, &opts, &|_, _, _| {
        panic!("warm run must not recompute")
    })
    .expect("warm run");
    assert_eq!(warm.stats.cache_hits, 4);
    assert_eq!(warm.stats.cache_misses, 0);
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(
            c.result.as_ref().expect("ok"),
            w.result.as_ref().expect("ok")
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_converges_to_uninterrupted_result() {
    let dir_full = tmp_dir("uninterrupted");
    let dir_kill = tmp_dir("killed");
    let scenarios = grid(6);
    let runner: overrun_sweep::CertifyRunner =
        &|_, t: &overrun_control::ControllerTable, _: &CertifyOptions| Ok(fake_report(t));

    // Reference: one uninterrupted cached run.
    let reference = run_sweep_with(
        &scenarios,
        &SweepOptions {
            cache_dir: Some(dir_full.clone()),
            shard_size: 2,
            ..SweepOptions::default()
        },
        runner,
    )
    .expect("reference run");

    // "Killed" run: complete, then simulate the kill by deleting the
    // records of the last two shards and truncating the checkpoint to its
    // first completion line (plus a torn tail).
    let opts_kill = SweepOptions {
        cache_dir: Some(dir_kill.clone()),
        shard_size: 2,
        resume: true,
        ..SweepOptions::default()
    };
    let first = run_sweep_with(&scenarios, &opts_kill, runner).expect("first run");
    assert_eq!(first.stats.computed, 6);
    for o in &first.outcomes[2..] {
        std::fs::remove_file(dir_kill.join(format!("{}.record", o.key.to_hex())))
            .expect("remove record");
    }
    let ckpt = dir_kill.join("checkpoint.sweep");
    let text = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    let keep: String = {
        let pos = text.find("shard 0 ok\n").expect("has shard 0") + "shard 0 ok\n".len();
        format!("{}shard 1 o", &text[..pos]) // torn tail from the kill
    };
    std::fs::write(&ckpt, keep).expect("truncate checkpoint");

    // Resume: shard 0 replays from cache, shards 1–2 recompute.
    let resumed = run_sweep_with(&scenarios, &opts_kill, runner).expect("resumed run");
    assert_eq!(resumed.stats.resumed_shards, 1);
    assert_eq!(resumed.stats.cache_hits, 2);
    assert_eq!(resumed.stats.computed, 4);
    assert_eq!(resumed.outcomes.len(), reference.outcomes.len());
    for (r, u) in resumed.outcomes.iter().zip(&reference.outcomes) {
        let (r, u) = (r.result.as_ref().expect("ok"), u.result.as_ref().expect("ok"));
        assert_eq!(r.verdict, u.verdict);
        assert_eq!(r.bounds.lower.to_bits(), u.bounds.lower.to_bits());
        assert_eq!(r.bounds.upper.to_bits(), u.bounds.upper.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir_full);
    let _ = std::fs::remove_dir_all(&dir_kill);
}

#[test]
fn corrupt_record_is_reverified_and_replaced_on_load() {
    let dir = tmp_dir("corrupt-reload");
    let scenarios = grid(2);
    let opts = SweepOptions {
        cache_dir: Some(dir.clone()),
        resume: true,
        ..SweepOptions::default()
    };
    let runner: overrun_sweep::CertifyRunner =
        &|_, t: &overrun_control::ControllerTable, _: &CertifyOptions| Ok(fake_report(t));
    let first = run_sweep_with(&scenarios, &opts, runner).expect("first run");

    // Corrupt one record in place.
    let victim = dir.join(format!("{}.record", first.outcomes[0].key.to_hex()));
    let text = std::fs::read_to_string(&victim).expect("read record");
    std::fs::write(&victim, &text[..text.len() - 20]).expect("corrupt record");

    let second = run_sweep_with(&scenarios, &opts, runner).expect("second run");
    assert_eq!(second.stats.corrupt_records, 1);
    assert_eq!(second.stats.cache_hits, 1);
    assert_eq!(second.stats.computed, 1);
    // The replacement matches the original bits.
    let a = first.outcomes[0].result.as_ref().expect("ok");
    let b = second.outcomes[0].result.as_ref().expect("ok");
    assert_eq!(a.bounds.upper.to_bits(), b.bounds.upper.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn erroring_shards_are_not_checkpointed_and_retry_on_rerun() {
    let dir = tmp_dir("error-shard");
    let scenarios = grid(4);
    let opts = SweepOptions {
        cache_dir: Some(dir.clone()),
        shard_size: 2,
        resume: true,
        retry: false,
    };
    let bad = scenarios[3].key;
    // First run: last scenario faults → shard 1 must not be checkpointed
    // and the fault must not be cached.
    let first = run_sweep_with(&scenarios, &opts, &|p, t, o| {
        if overrun_sweep::certification_key(p, t, o) == bad {
            return Err(overrun_control::Error::Design("transient".into()));
        }
        Ok(fake_report(t))
    })
    .expect("first run");
    assert_eq!(first.stats.errors, 1);
    let ckpt = std::fs::read_to_string(dir.join("checkpoint.sweep")).expect("checkpoint");
    assert!(ckpt.contains("shard 0 ok"));
    assert!(!ckpt.contains("shard 1 ok"));
    assert!(!dir.join(format!("{}.record", bad.to_hex())).exists());

    // Rerun with a healthy runner: the faulted scenario is recomputed,
    // the healthy ones hit.
    let second = run_sweep_with(&scenarios, &opts, &|_, t, _| Ok(fake_report(t)))
        .expect("second run");
    assert_eq!(second.stats.errors, 0);
    assert_eq!(second.stats.cache_hits, 3);
    assert_eq!(second.stats.computed, 1);
    let ckpt = std::fs::read_to_string(dir.join("checkpoint.sweep")).expect("checkpoint");
    assert!(ckpt.contains("shard 1 ok"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lookup_answers_real_certifications_bit_identically() {
    // Real certifier on one small scenario: the CertLookup bridge must
    // reproduce `stability::certify` exactly.
    let scenarios = grid(1);
    let report = overrun_sweep::run_sweep(&scenarios, &SweepOptions::default()).expect("sweep");
    let lookup = report.lookup();
    assert_eq!(lookup.len(), 1);
    let s = &scenarios[0];
    let direct = stability::certify(&s.plant, &s.table, &s.opts).expect("direct certify");
    let via = lookup
        .report_for(&s.plant, &s.table, &s.opts)
        .expect("lookup hit");
    assert_eq!(via.verdict, direct.verdict);
    assert_eq!(via.bounds.lower.to_bits(), direct.bounds.lower.to_bits());
    assert_eq!(via.bounds.upper.to_bits(), direct.bounds.upper.to_bits());
    assert_eq!(via.screen, direct.screen);
}
