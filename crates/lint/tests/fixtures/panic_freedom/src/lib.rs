// Fixture source: exactly one panic site. `unwrap` as a plain identifier
// (no call parenthesis) and `std::panic::…` paths must not count.
pub fn one_site(x: Option<u32>) -> u32 {
    let unwrap = 1; // identifier, not a call — not counted
    x.unwrap() + unwrap
}
