//! Regenerates **Figure 1** of the paper: a timeline of control jobs on the
//! oversampled sensing grid (`Ns = 8`) in which the second job overruns and
//! the third release snaps to the first sensor tick after its completion.
//!
//! Prints the ASCII timeline and writes the underlying job trace as CSV.
//!
//! ```text
//! cargo run -p overrun-bench --bin figure1
//! ```

use overrun_bench::{metrics, RunArgs};
use overrun_rtsim::{render_timeline, trace_to_csv, OverrunPolicy, Span, TimelineOptions};

fn main() {
    let args = match RunArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = args.apply_threads();
    args.start_trace();
    let started = std::time::Instant::now();
    // The paper's Figure 1 setting: Ns = 8, job 2 overruns past 2T.
    let t = Span::from_millis(8);
    let policy = match OverrunPolicy::new(t, 8) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("policy construction failed: {e}");
            std::process::exit(1);
        }
    };
    let responses = [
        Span::from_millis(5),      // job 1 completes within T
        Span::from_micros(10_500), // job 2 overruns: finishes after 2T
        Span::from_millis(6),      // job 3 nominal again
        Span::from_millis(4),
    ];
    let trace = match policy.apply(&responses) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace construction failed: {e}");
            std::process::exit(1);
        }
    };
    match render_timeline(&trace, &TimelineOptions::default()) {
        Ok(art) => args.human(&art),
        Err(e) => {
            eprintln!("render failed: {e}");
            std::process::exit(1);
        }
    }
    for job in &trace.jobs {
        args.human(&format!(
            "job {}: release {}, finish {}, h = {}, delta = {}, overran = {}",
            job.index + 1,
            job.release,
            job.finish,
            job.interval,
            job.delta,
            job.overran
        ));
    }
    match args.write_artifact("figure1.csv", &trace_to_csv(&trace)) {
        Ok(path) => args.human(&format!("wrote {}", path.display())),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    let elapsed = started.elapsed();
    let overruns = trace.jobs.iter().filter(|j| j.overran).count();
    let mut km = metrics(&[
        ("jobs", trace.jobs.len() as f64),
        ("overruns", overruns as f64),
    ]);
    km.extend(args.finish_trace("figure1"));
    args.maybe_write_json("figure1", threads, elapsed, &km);
}
