//! Plant zoo: the evaluation plants of the paper plus common benchmarks.
//!
//! The paper does not publish the exact parameters of its two evaluation
//! plants (the unstable PI example and the PMSM of [18, Example 2]); the
//! models here are representative substitutes with the same structure —
//! see `DESIGN.md` ("Substitutions") for the rationale.

use overrun_linalg::Matrix;

use crate::ContinuousSs;

/// The Table-I style plant: a controllable second-order system with one
/// right-half-plane pole (poles at `+5` and `−10` rad/s), sampled at
/// `T = 10 ms` in the experiments.
///
/// ```
/// let p = overrun_control::plants::unstable_second_order();
/// assert!(!p.is_hurwitz().unwrap());
/// assert!(p.is_controllable().unwrap());
/// ```
pub fn unstable_second_order() -> ContinuousSs {
    ContinuousSs::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[50.0, -5.0]]).expect("static plant data"),
        Matrix::col_vec(&[0.0, 1.0]),
        Matrix::row_vec(&[1.0, 0.0]),
    )
    .expect("static plant data")
}

/// A permanent-magnet synchronous motor (PMSM) in the rotating d–q frame,
/// linearised at standstill — the Table-II style plant, sampled at
/// `T = 50 µs` in the experiments.
///
/// States: `[i_d, i_q, ω]` (direct / quadrature currents, rotor speed);
/// inputs: `[v_d, v_q]`; outputs: full state.
///
/// Parameters (typical small drive): `R = 0.5 Ω`, `L_d = L_q = 1 mH`,
/// `ψ = 0.1 Wb`, `p = 4` pole pairs, `J = 10⁻⁴ kg·m²`, `b = 10⁻⁴`.
///
/// ```
/// let p = overrun_control::plants::pmsm();
/// assert!(p.is_hurwitz().unwrap()); // electrically stable, slow mechanics
/// assert_eq!(p.state_dim(), 3);
/// ```
pub fn pmsm() -> ContinuousSs {
    let r = 0.5_f64; // stator resistance [Ω]
    let l = 1e-3_f64; // d/q inductance [H]
    let psi = 0.1_f64; // PM flux linkage [Wb]
    let p = 4.0_f64; // pole pairs
    let j = 1e-4_f64; // rotor inertia [kg m²]
    let b = 1e-4_f64; // viscous friction

    let a = Matrix::from_rows(&[
        &[-r / l, 0.0, 0.0],
        &[0.0, -r / l, -psi * p / l],
        &[0.0, 1.5 * p * psi / j, -b / j],
    ])
    .expect("static plant data");
    let bm = Matrix::from_rows(&[&[1.0 / l, 0.0], &[0.0, 1.0 / l], &[0.0, 0.0]])
        .expect("static plant data");
    let c = Matrix::identity(3);
    ContinuousSs::new(a, bm, c).expect("static plant data")
}

/// The double integrator `ÿ = u` — the canonical motion-control benchmark.
///
/// ```
/// let p = overrun_control::plants::double_integrator();
/// assert_eq!(p.state_dim(), 2);
/// ```
pub fn double_integrator() -> ContinuousSs {
    ContinuousSs::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).expect("static plant data"),
        Matrix::col_vec(&[0.0, 1.0]),
        Matrix::row_vec(&[1.0, 0.0]),
    )
    .expect("static plant data")
}

/// A brushed DC motor with angular-velocity output: states `[ω, i]`
/// (rotor speed, armature current) with electrical and mechanical poles.
///
/// ```
/// let p = overrun_control::plants::dc_motor();
/// assert!(p.is_hurwitz().unwrap());
/// ```
pub fn dc_motor() -> ContinuousSs {
    // J ω̇ = Kt i − b ω;  L i̇ = −Ke ω − R i + v
    let (j, b_f, kt, ke, r, l) = (0.01, 0.1, 0.01, 0.01, 1.0, 0.5);
    ContinuousSs::new(
        Matrix::from_rows(&[&[-b_f / j, kt / j], &[-ke / l, -r / l]])
            .expect("static plant data"),
        Matrix::col_vec(&[0.0, 1.0 / l]),
        Matrix::row_vec(&[1.0, 0.0]),
    )
    .expect("static plant data")
}

/// Linearised inverted pendulum on a cart (upright equilibrium): states
/// `[x, ẋ, θ, θ̇]`, force input, cart position + pole angle outputs.
///
/// ```
/// let p = overrun_control::plants::inverted_pendulum();
/// assert!(!p.is_hurwitz().unwrap());
/// assert!(p.is_controllable().unwrap());
/// ```
pub fn inverted_pendulum() -> ContinuousSs {
    // Standard cart-pole linearisation (M = 0.5 kg, m = 0.2 kg, l = 0.3 m,
    // friction 0.1, g = 9.8), e.g. the CTMS example.
    let (m_cart, m_pole, b, l, g) = (0.5_f64, 0.2_f64, 0.1_f64, 0.3_f64, 9.8_f64);
    let i = m_pole * l * l / 3.0;
    let denom = i * (m_cart + m_pole) + m_cart * m_pole * l * l;
    let a22 = -(i + m_pole * l * l) * b / denom;
    let a23 = m_pole * m_pole * g * l * l / denom;
    let a42 = -m_pole * l * b / denom;
    let a43 = m_pole * g * l * (m_cart + m_pole) / denom;
    let b2 = (i + m_pole * l * l) / denom;
    let b4 = m_pole * l / denom;
    ContinuousSs::new(
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, a22, a23, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, a42, a43, 0.0],
        ])
        .expect("static plant data"),
        Matrix::col_vec(&[0.0, b2, 0.0, b4]),
        Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]])
            .expect("static plant data"),
    )
    .expect("static plant data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_linalg::eigenvalues;

    #[test]
    fn unstable_plant_has_one_rhp_pole() {
        let p = unstable_second_order();
        let eigs = eigenvalues(&p.a).unwrap();
        let rhp = eigs.iter().filter(|e| e.re > 0.0).count();
        assert_eq!(rhp, 1);
        assert!(p.is_controllable().unwrap());
        assert!(p.is_observable().unwrap());
    }

    #[test]
    fn pmsm_is_stable_and_controllable() {
        let p = pmsm();
        assert!(p.is_hurwitz().unwrap());
        assert!(p.is_controllable().unwrap());
        assert_eq!(p.input_dim(), 2);
        assert_eq!(p.output_dim(), 3);
        // Electrical time constant L/R = 2 ms ⇒ fastest real pole −500.
        let eigs = eigenvalues(&p.a).unwrap();
        assert!(eigs.iter().any(|e| (e.re + 500.0).abs() < 1.0));
    }

    #[test]
    fn all_plants_are_controllable() {
        for p in [
            unstable_second_order(),
            pmsm(),
            double_integrator(),
            dc_motor(),
            inverted_pendulum(),
        ] {
            assert!(p.is_controllable().unwrap());
        }
    }

    #[test]
    fn pendulum_is_unstable_with_four_states() {
        let p = inverted_pendulum();
        assert_eq!(p.state_dim(), 4);
        assert!(!p.is_hurwitz().unwrap());
        assert_eq!(p.output_dim(), 2);
    }

    #[test]
    fn dc_motor_is_stable() {
        assert!(dc_motor().is_hurwitz().unwrap());
    }
}
