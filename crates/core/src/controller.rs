//! Controller modes and the per-interval controller table (paper Eq. 6).

use overrun_linalg::Matrix;

use crate::{Error, IntervalSet, Result};

/// One controller mode in state-space form (paper Eq. 6):
///
/// ```text
/// z[k+1] = Ac z[k] + Bc e[k]
/// u[k+1] = Cc z[k] + Dc e[k]
/// ```
///
/// where `e[k] = r − y_m[k]` is the error on the controller's measurement
/// and `z ∈ ℝˢ` is the controller state. The command computed by job `k` is
/// applied one interval later (`u[k+1]`), exactly as in the paper's
/// input–output model.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerMode {
    /// Controller state matrix `Ac ∈ ℝˢˣˢ`.
    pub ac: Matrix,
    /// Controller input matrix `Bc ∈ ℝ^{s×q}`.
    pub bc: Matrix,
    /// Controller output matrix `Cc ∈ ℝ^{r×s}`.
    pub cc: Matrix,
    /// Direct feedthrough `Dc ∈ ℝ^{r×q}`.
    pub dc: Matrix,
}

impl ControllerMode {
    /// Creates and validates a controller mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for inconsistent dimensions.
    pub fn new(ac: Matrix, bc: Matrix, cc: Matrix, dc: Matrix) -> Result<Self> {
        if !ac.is_square() {
            return Err(Error::InvalidConfig(format!(
                "Ac must be square, got {}x{}",
                ac.rows(),
                ac.cols()
            )));
        }
        let s = ac.rows();
        if bc.rows() != s {
            return Err(Error::InvalidConfig(format!(
                "Bc has {} rows, expected {s}",
                bc.rows()
            )));
        }
        if cc.cols() != s {
            return Err(Error::InvalidConfig(format!(
                "Cc has {} cols, expected {s}",
                cc.cols()
            )));
        }
        if dc.rows() != cc.rows() {
            return Err(Error::InvalidConfig(format!(
                "Dc has {} rows but Cc has {}",
                dc.rows(),
                cc.rows()
            )));
        }
        if dc.cols() != bc.cols() {
            return Err(Error::InvalidConfig(format!(
                "Dc has {} cols but Bc has {}",
                dc.cols(),
                bc.cols()
            )));
        }
        Ok(ControllerMode { ac, bc, cc, dc })
    }

    /// A purely static gain `u[k+1] = Dc e[k]` with no controller state.
    ///
    /// # Errors
    ///
    /// Never fails for a non-empty gain; kept fallible for uniformity.
    pub fn static_gain(dc: Matrix) -> Result<Self> {
        let r = dc.rows();
        let q = dc.cols();
        ControllerMode::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, q),
            Matrix::zeros(r, 0),
            dc,
        )
    }

    /// Controller state dimension `s`.
    pub fn state_dim(&self) -> usize {
        self.ac.rows()
    }

    /// Measurement dimension `q` the controller expects.
    pub fn error_dim(&self) -> usize {
        self.bc.cols()
    }

    /// Command dimension `r`.
    pub fn output_dim(&self) -> usize {
        self.cc.rows()
    }

    /// One controller update: `(z[k+1], u[k+1])` from `(z[k], e[k])`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn step(&self, z: &Matrix, e: &Matrix) -> Result<(Matrix, Matrix)> {
        let z_next = if self.state_dim() == 0 {
            Matrix::zeros(0, 1)
        } else {
            self.ac.matmul(z)?.add_mat(&self.bc.matmul(e)?)?
        };
        let u_next = if self.state_dim() == 0 {
            self.dc.matmul(e)?
        } else {
            self.cc.matmul(z)?.add_mat(&self.dc.matmul(e)?)?
        };
        Ok((z_next, u_next))
    }

    /// Allocation-free variant of [`ControllerMode::step`] on slice
    /// buffers: writes `z[k+1]` into `z_next` and `u[k+1]` into `u_next`,
    /// both computed from the *old* state `z`. `scratch` must hold at
    /// least `max(state_dim, output_dim)` entries. The operation order
    /// matches [`ControllerMode::step`] exactly (each product formed
    /// separately, then one elementwise addition), so results are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is shorter than `max(state_dim, output_dim)`.
    pub fn step_into(
        &self,
        z: &[f64],
        e: &[f64],
        scratch: &mut [f64],
        z_next: &mut [f64],
        u_next: &mut [f64],
    ) -> Result<()> {
        let s = self.state_dim();
        if s == 0 {
            self.dc.mul_vec_into(e, u_next)?;
            return Ok(());
        }
        self.ac.mul_vec_into(z, z_next)?;
        self.bc.mul_vec_into(e, &mut scratch[..s])?;
        for (o, v) in z_next.iter_mut().zip(scratch[..s].iter()) {
            *o += *v;
        }
        let r = self.output_dim();
        self.cc.mul_vec_into(z, u_next)?;
        self.dc.mul_vec_into(e, &mut scratch[..r])?;
        for (o, v) in u_next.iter_mut().zip(scratch[..r].iter()) {
            *o += *v;
        }
        Ok(())
    }
}

/// A table of controller modes, one per interval in `H` — the paper's
/// "timer plus table of control parameters" implementation (Sec. I).
///
/// Job `k` selects the mode indexed by the *previous* job's interval
/// `h_{k−1}`, compensating the overrun-induced delay.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// assert_eq!(table.len(), hset.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerTable {
    modes: Vec<ControllerMode>,
    hset: IntervalSet,
}

impl ControllerTable {
    /// Creates a table from one mode per interval in `hset`, in interval
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the mode count differs from
    /// `#H` or modes have inconsistent dimensions.
    pub fn new(modes: Vec<ControllerMode>, hset: IntervalSet) -> Result<Self> {
        if modes.len() != hset.len() {
            return Err(Error::InvalidConfig(format!(
                "{} modes for {} intervals",
                modes.len(),
                hset.len()
            )));
        }
        let (s, q, r) = (
            modes[0].state_dim(),
            modes[0].error_dim(),
            modes[0].output_dim(),
        );
        for (i, m) in modes.iter().enumerate() {
            if (m.state_dim(), m.error_dim(), m.output_dim()) != (s, q, r) {
                return Err(Error::InvalidConfig(format!(
                    "mode {i} dimensions differ from mode 0"
                )));
            }
        }
        Ok(ControllerTable { modes, hset })
    }

    /// A table that uses the *same* mode for every interval — the "fixed
    /// control" baselines of the paper's evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`ControllerTable::new`] validation.
    pub fn fixed(mode: ControllerMode, hset: IntervalSet) -> Result<Self> {
        let modes = vec![mode; hset.len()];
        ControllerTable::new(modes, hset)
    }

    /// The interval set this table is designed for.
    pub fn hset(&self) -> &IntervalSet {
        &self.hset
    }

    /// Number of modes (`#H`).
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The mode for interval index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn mode(&self, i: usize) -> &ControllerMode {
        &self.modes[i]
    }

    /// All modes in interval order.
    pub fn modes(&self) -> &[ControllerMode] {
        &self.modes
    }

    /// Controller state dimension `s`.
    pub fn state_dim(&self) -> usize {
        self.modes[0].state_dim()
    }

    /// Measurement dimension `q`.
    pub fn error_dim(&self) -> usize {
        self.modes[0].error_dim()
    }

    /// Command dimension `r`.
    pub fn output_dim(&self) -> usize {
        self.modes[0].output_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hset() -> IntervalSet {
        IntervalSet::from_timing(0.010, 0.013, 5).unwrap() // {10,12,14} ms
    }

    fn pi_mode(kp: f64, ki: f64, h: f64) -> ControllerMode {
        ControllerMode::new(
            Matrix::identity(1),
            Matrix::from_rows(&[&[h]]).unwrap(),
            Matrix::from_rows(&[&[ki]]).unwrap(),
            Matrix::from_rows(&[&[kp]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mode_validation() {
        assert!(ControllerMode::new(
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1)
        )
        .is_err());
        assert!(ControllerMode::new(
            Matrix::identity(1),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1)
        )
        .is_err());
        assert!(ControllerMode::new(
            Matrix::identity(1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1)
        )
        .is_err());
        assert!(ControllerMode::new(
            Matrix::identity(1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 1),
            Matrix::zeros(1, 2)
        )
        .is_err());
    }

    #[test]
    fn pi_mode_step() {
        let m = pi_mode(2.0, 0.5, 0.01);
        let z = Matrix::col_vec(&[1.0]);
        let e = Matrix::col_vec(&[3.0]);
        let (z1, u1) = m.step(&z, &e).unwrap();
        // z' = z + h e = 1 + 0.03; u' = Kp e + Ki z = 6 + 0.5
        assert!((z1[(0, 0)] - 1.03).abs() < 1e-15);
        assert!((u1[(0, 0)] - 6.5).abs() < 1e-15);
    }

    #[test]
    fn static_gain_mode() {
        let m = ControllerMode::static_gain(Matrix::from_rows(&[&[-2.0, 1.0]]).unwrap()).unwrap();
        assert_eq!(m.state_dim(), 0);
        assert_eq!(m.error_dim(), 2);
        assert_eq!(m.output_dim(), 1);
        let (z, u) = m
            .step(&Matrix::zeros(0, 1), &Matrix::col_vec(&[1.0, 2.0]))
            .unwrap();
        assert_eq!(z.rows(), 0);
        assert!((u[(0, 0)] - 0.0).abs() < 1e-15);
    }

    #[test]
    fn table_construction() {
        let hs = hset();
        let modes = vec![
            pi_mode(1.0, 0.1, 0.010),
            pi_mode(1.0, 0.1, 0.012),
            pi_mode(1.0, 0.1, 0.014),
        ];
        let table = ControllerTable::new(modes, hs.clone()).unwrap();
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        assert_eq!(table.state_dim(), 1);
        assert_eq!(table.error_dim(), 1);
        assert_eq!(table.output_dim(), 1);
        assert_eq!(table.hset(), &hs);
        assert_eq!(table.modes().len(), 3);
    }

    #[test]
    fn table_rejects_wrong_count_or_dims() {
        let hs = hset();
        assert!(ControllerTable::new(vec![pi_mode(1.0, 0.1, 0.010)], hs.clone()).is_err());
        let mixed = vec![
            pi_mode(1.0, 0.1, 0.010),
            pi_mode(1.0, 0.1, 0.012),
            ControllerMode::static_gain(Matrix::from_rows(&[&[1.0]]).unwrap()).unwrap(),
        ];
        assert!(ControllerTable::new(mixed, hs).is_err());
    }

    #[test]
    fn fixed_table_replicates_mode() {
        let hs = hset();
        let table = ControllerTable::fixed(pi_mode(2.0, 0.3, 0.010), hs).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.mode(0), table.mode(2));
    }
}
