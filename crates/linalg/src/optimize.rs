//! Derivative-free optimisation (Nelder–Mead simplex search).
//!
//! Used across the stack for small black-box minimisation problems:
//! per-interval PI gain tuning in `overrun-control` and ellipsoidal-norm
//! optimisation in `overrun-jsr`.

use crate::{Error, Result};

/// Options for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations. Default: 2000.
    pub max_evals: usize,
    /// Terminate when the simplex spread (max−min objective) falls below
    /// this value. Default: `1e-10`.
    pub f_tol: f64,
    /// Initial simplex step per coordinate. Default: 0.5.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 2000,
            f_tol: 1e-10,
            initial_step: 0.5,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Minimises `f` starting from `x0` with the Nelder–Mead simplex method
/// (reflection / expansion / contraction / shrink with the standard
/// coefficients 1, 2, ½, ½).
///
/// The objective may return non-finite values (e.g. a divergence penalty);
/// they are treated as `+∞`.
///
/// # Errors
///
/// Returns [`Error::InvalidData`] for an empty starting point.
///
/// # Example
///
/// ```
/// use overrun_linalg::optimize::{nelder_mead, NelderMeadOptions};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let res = nelder_mead(sphere, &[1.0, -2.0], &NelderMeadOptions::default())?;
/// assert!(res.f < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> Result<OptimResult> {
    let n = x0.len();
    if n == 0 {
        return Err(Error::InvalidData("empty starting point".into()));
    }
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let fx0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        let step = if xi[i].abs() > 1e-12 {
            opts.initial_step * xi[i].abs()
        } else {
            opts.initial_step
        };
        xi[i] += step;
        let fv = eval(&xi, &mut evals);
        simplex.push((xi, fv));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= opts.f_tol * (1.0 + best.abs()) {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / n as f64;
            }
        }
        let xw = simplex[n].0.clone();
        let second_worst = simplex[n - 1].1;

        let combine = |alpha: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&xw)
                .map(|(c, w)| c + alpha * (c - w))
                .collect()
        };

        // Reflection.
        let xr = combine(1.0);
        let fr = eval(&xr, &mut evals);
        if fr < simplex[0].1 {
            // Expansion.
            let xe = combine(2.0);
            let fe = eval(&xe, &mut evals);
            if fe < fr {
                simplex[n] = (xe, fe);
            } else {
                simplex[n] = (xr, fr);
            }
        } else if fr < second_worst {
            simplex[n] = (xr, fr);
        } else {
            // Contraction (outside if reflected improved on the worst,
            // inside otherwise).
            let (xc, fc) = if fr < simplex[n].1 {
                let xc = combine(0.5);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            } else {
                let xc = combine(-0.5);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            };
            if fc < simplex[n].1.min(fr) {
                simplex[n] = (xc, fc);
            } else {
                // Shrink toward the best vertex.
                let x_best = simplex[0].0.clone();
                for vertex in simplex.iter_mut().skip(1) {
                    for (v, b) in vertex.0.iter_mut().zip(&x_best) {
                        *v = b + 0.5 * (*v - b);
                    }
                    vertex.1 = eval(&vertex.0.clone(), &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, f_best) = simplex.swap_remove(0);
    Ok(OptimResult {
        x,
        f: f_best,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        let res = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((res.x[0] - 3.0).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] + 1.0).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn minimises_rosenbrock() {
        let rosen =
            |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let res = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            &NelderMeadOptions {
                max_evals: 5000,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        assert!(res.f < 1e-6, "f = {}", res.f);
    }

    #[test]
    fn handles_infinite_regions() {
        // Objective undefined (−∞ barrier) for x < 0: optimiser must stay
        // out and still find the minimum at x = 1.
        let res = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[4.0],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((res.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[10.0],
            &NelderMeadOptions {
                max_evals: 25,
                ..NelderMeadOptions::default()
            },
        )
        .unwrap();
        // A couple of extra evals can occur within the final iteration.
        assert!(count <= 30, "count = {count}");
    }

    #[test]
    fn empty_input_rejected() {
        assert!(nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default()).is_err());
    }

    #[test]
    fn one_dimensional() {
        let res = nelder_mead(
            |x| (x[0] - 0.5).powi(2) + 2.0,
            &[-3.0],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((res.x[0] - 0.5).abs() < 1e-4);
        assert!((res.f - 2.0).abs() < 1e-8);
    }
}
