//! Linear time-invariant plant models (paper Eq. 1 and Eq. 4/5).

use overrun_linalg::{expm_integral, Matrix};

use crate::{Error, Result};

/// A continuous-time LTI plant
///
/// ```text
/// ẋ(t) = A x(t) + B u(t)
/// y(t) = C x(t)
/// ```
///
/// (paper Eq. 1). `A ∈ ℝⁿˣⁿ`, `B ∈ ℝⁿˣʳ`, `C ∈ ℝ^{q×n}`.
///
/// # Example
///
/// ```
/// use overrun_control::ContinuousSs;
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let sys = ContinuousSs::new(
///     Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]])?,
///     Matrix::col_vec(&[0.0, 1.0]),
///     Matrix::row_vec(&[1.0, 0.0]),
/// )?;
/// let d = sys.discretize(0.01)?;
/// assert_eq!(d.phi.shape(), (2, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousSs {
    /// State matrix `A`.
    pub a: Matrix,
    /// Input matrix `B`.
    pub b: Matrix,
    /// Output matrix `C`.
    pub c: Matrix,
}

impl ContinuousSs {
    /// Creates and validates a continuous state-space model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on shape mismatches.
    pub fn new(a: Matrix, b: Matrix, c: Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::InvalidConfig(format!(
                "A must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if b.rows() != a.rows() {
            return Err(Error::InvalidConfig(format!(
                "B has {} rows but A is {}x{}",
                b.rows(),
                a.rows(),
                a.cols()
            )));
        }
        if c.cols() != a.rows() {
            return Err(Error::InvalidConfig(format!(
                "C has {} cols but A is {}x{}",
                c.cols(),
                a.rows(),
                a.cols()
            )));
        }
        Ok(ContinuousSs { a, b, c })
    }

    /// Number of states `n`.
    pub fn state_dim(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs `r`.
    pub fn input_dim(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `q`.
    pub fn output_dim(&self) -> usize {
        self.c.rows()
    }

    /// Zero-order-hold discretisation over an interval of `h` seconds
    /// (paper Eq. 5): `Φ(h) = e^{Ah}`, `Γ(h) = ∫₀ʰ e^{As} ds · B`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for non-positive or non-finite `h`,
    /// or propagates numerical failures.
    pub fn discretize(&self, h: f64) -> Result<DiscreteSs> {
        if !(h.is_finite() && h > 0.0) {
            return Err(Error::InvalidConfig(format!(
                "sampling interval must be positive and finite, got {h}"
            )));
        }
        let (phi, gamma) = expm_integral(&self.a, &self.b, h)?;
        Ok(DiscreteSs {
            phi,
            gamma,
            c: self.c.clone(),
            h,
        })
    }

    /// Zero-order-hold discretisation with a *fractional* input delay
    /// `τ ∈ [0, h)` (Åström–Wittenmark): the command computed for sample
    /// `k` only takes effect `τ` seconds into the interval, giving
    ///
    /// ```text
    /// x[k+1] = Φ(h) x[k] + Γ₁ u[k−1] + Γ₀ u[k]
    /// Γ₁ = e^{A(h−τ)} ∫₀^τ e^{As} ds B,   Γ₀ = ∫₀^{h−τ} e^{As} ds B
    /// ```
    ///
    /// The paper's computational model is the special case `τ = h` pushed
    /// to the *next* interval (`Γ₀ = 0`, handled by the lifted dynamics);
    /// this method supports the intermediate regimes for extensions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `0 ≤ τ < h`.
    pub fn discretize_with_delay(&self, h: f64, tau: f64) -> Result<(Matrix, Matrix, Matrix)> {
        if !(h.is_finite() && h > 0.0) {
            return Err(Error::InvalidConfig(format!(
                "sampling interval must be positive and finite, got {h}"
            )));
        }
        if !(tau.is_finite() && (0.0..h).contains(&tau)) {
            return Err(Error::InvalidConfig(format!(
                "fractional delay must satisfy 0 <= tau < h, got tau = {tau}, h = {h}"
            )));
        }
        let (phi, _) = overrun_linalg::expm_integral(&self.a, &self.b, h)?;
        if tau == 0.0 {
            let (_, gamma0) = overrun_linalg::expm_integral(&self.a, &self.b, h)?;
            let n = self.state_dim();
            let r = self.input_dim();
            return Ok((phi, Matrix::zeros(n, r), gamma0));
        }
        // Γ₀ over the trailing (h − τ) of the interval.
        let (_, gamma0) = overrun_linalg::expm_integral(&self.a, &self.b, h - tau)?;
        // Γ₁ = e^{A(h−τ)} · ∫₀^τ e^{As} ds B.
        let (phi_tail, _) = overrun_linalg::expm_integral(&self.a, &self.b, h - tau)?;
        let (_, int_tau) = overrun_linalg::expm_integral(&self.a, &self.b, tau)?;
        let gamma1 = phi_tail.matmul(&int_tau)?;
        Ok((phi, gamma1, gamma0))
    }

    /// Rank of the controllability matrix `[B, AB, …, A^{n−1}B]`.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn controllability_rank(&self) -> Result<usize> {
        let n = self.state_dim();
        let mut blocks = Vec::with_capacity(n);
        let mut cur = self.b.clone();
        for _ in 0..n {
            blocks.push(cur.clone());
            cur = self.a.matmul(&cur)?;
        }
        let refs: Vec<&Matrix> = blocks.iter().collect();
        numeric_rank(&Matrix::hstack(&refs)?)
    }

    /// Rank of the observability matrix `[C; CA; …; CA^{n−1}]`.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn observability_rank(&self) -> Result<usize> {
        let n = self.state_dim();
        let mut blocks = Vec::with_capacity(n);
        let mut cur = self.c.clone();
        for _ in 0..n {
            blocks.push(cur.clone());
            cur = cur.matmul(&self.a)?;
        }
        let refs: Vec<&Matrix> = blocks.iter().collect();
        numeric_rank(&Matrix::vstack(&refs)?)
    }

    /// `true` when `(A, B)` is controllable.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn is_controllable(&self) -> Result<bool> {
        Ok(self.controllability_rank()? == self.state_dim())
    }

    /// `true` when `(A, C)` is observable.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn is_observable(&self) -> Result<bool> {
        Ok(self.observability_rank()? == self.state_dim())
    }

    /// `true` when all continuous-time eigenvalues have negative real part.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-computation failures.
    pub fn is_hurwitz(&self) -> Result<bool> {
        Ok(overrun_linalg::eigenvalues(&self.a)?
            .iter()
            .all(|e| e.re < 0.0))
    }
}

/// A ZOH-discretised plant `x[k+1] = Φ x[k] + Γ u[k]`, `y[k] = C x[k]`
/// (paper Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSs {
    /// State transition matrix `Φ(h)`.
    pub phi: Matrix,
    /// Input matrix `Γ(h)`.
    pub gamma: Matrix,
    /// Output matrix `C` (unchanged by sampling).
    pub c: Matrix,
    /// The sampling interval `h` in seconds.
    pub h: f64,
}

impl DiscreteSs {
    /// Number of states.
    pub fn state_dim(&self) -> usize {
        self.phi.rows()
    }

    /// Number of inputs.
    pub fn input_dim(&self) -> usize {
        self.gamma.cols()
    }

    /// Number of outputs.
    pub fn output_dim(&self) -> usize {
        self.c.rows()
    }

    /// One simulation step: returns `x[k+1]` for given `x[k]`, `u[k]`.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn step(&self, x: &Matrix, u: &Matrix) -> Result<Matrix> {
        Ok(self.phi.matmul(x)?.add_mat(&self.gamma.matmul(u)?)?)
    }

    /// Allocation-free variant of [`DiscreteSs::step`] on slice buffers:
    /// writes `Φ x + Γ u` into `out`, using `scratch` for the `Γ u` term.
    /// Each product and the final addition follow the same operation order
    /// as [`DiscreteSs::step`], so results are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn step_into(
        &self,
        x: &[f64],
        u: &[f64],
        scratch: &mut [f64],
        out: &mut [f64],
    ) -> Result<()> {
        self.phi.mul_vec_into(x, out)?;
        self.gamma.mul_vec_into(u, scratch)?;
        for (o, s) in out.iter_mut().zip(scratch.iter()) {
            *o += *s;
        }
        Ok(())
    }
}

/// Numerical rank via SVD (accurate even for graded structural matrices,
/// unlike unpivoted QR).
fn numeric_rank(m: &Matrix) -> Result<usize> {
    Ok(overrun_linalg::rank(m)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double_integrator() -> ContinuousSs {
        ContinuousSs::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Matrix::col_vec(&[0.0, 1.0]),
            Matrix::row_vec(&[1.0, 0.0]),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(ContinuousSs::new(
            Matrix::zeros(2, 3),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2)
        )
        .is_err());
        assert!(ContinuousSs::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(3, 1),
            Matrix::zeros(1, 2)
        )
        .is_err());
        assert!(ContinuousSs::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 3)
        )
        .is_err());
    }

    #[test]
    fn dims() {
        let s = double_integrator();
        assert_eq!(s.state_dim(), 2);
        assert_eq!(s.input_dim(), 1);
        assert_eq!(s.output_dim(), 1);
    }

    #[test]
    fn discretize_double_integrator_closed_form() {
        let s = double_integrator();
        let d = s.discretize(0.1).unwrap();
        assert!((d.phi[(0, 1)] - 0.1).abs() < 1e-15);
        assert!((d.gamma[(0, 0)] - 0.005).abs() < 1e-15);
        assert!((d.gamma[(1, 0)] - 0.1).abs() < 1e-15);
        assert_eq!(d.h, 0.1);
        assert_eq!(d.state_dim(), 2);
        assert_eq!(d.input_dim(), 1);
        assert_eq!(d.output_dim(), 1);
    }

    #[test]
    fn discretize_rejects_bad_h() {
        let s = double_integrator();
        assert!(s.discretize(0.0).is_err());
        assert!(s.discretize(-0.1).is_err());
        assert!(s.discretize(f64::NAN).is_err());
    }

    #[test]
    fn step_advances_state() {
        let d = double_integrator().discretize(0.1).unwrap();
        let x = Matrix::col_vec(&[1.0, 0.0]);
        let u = Matrix::col_vec(&[0.0]);
        let x1 = d.step(&x, &u).unwrap();
        assert!((x1[(0, 0)] - 1.0).abs() < 1e-15);
        let u = Matrix::col_vec(&[1.0]);
        let x2 = d.step(&x, &u).unwrap();
        assert!((x2[(1, 0)] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn controllability_and_observability() {
        let s = double_integrator();
        assert!(s.is_controllable().unwrap());
        assert!(s.is_observable().unwrap());
        // Uncontrollable: input does not reach the second state.
        let s2 = ContinuousSs::new(
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::col_vec(&[1.0, 0.0]),
            Matrix::row_vec(&[1.0, 1.0]),
        )
        .unwrap();
        assert!(!s2.is_controllable().unwrap());
        assert_eq!(s2.controllability_rank().unwrap(), 1);
        // Unobservable: output sees only the first state of a decoupled pair.
        let s3 = ContinuousSs::new(
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::col_vec(&[1.0, 1.0]),
            Matrix::row_vec(&[1.0, 0.0]),
        )
        .unwrap();
        assert!(!s3.is_observable().unwrap());
    }

    #[test]
    fn hurwitz_detection() {
        let stable = ContinuousSs::new(
            Matrix::diag(&[-1.0, -0.5]),
            Matrix::col_vec(&[1.0, 1.0]),
            Matrix::row_vec(&[1.0, 0.0]),
        )
        .unwrap();
        assert!(stable.is_hurwitz().unwrap());
        assert!(!double_integrator().is_hurwitz().unwrap());
    }

    #[test]
    fn semigroup_of_discretizations() {
        let s = double_integrator();
        let d1 = s.discretize(0.004).unwrap();
        let d2 = s.discretize(0.006).unwrap();
        let d3 = s.discretize(0.010).unwrap();
        let lhs = d2.phi.matmul(&d1.phi).unwrap();
        assert!(lhs.approx_eq(&d3.phi, 1e-12, 1e-12));
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;

    fn plant() -> ContinuousSs {
        ContinuousSs::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[-3.0, -0.7]]).unwrap(),
            Matrix::col_vec(&[0.0, 1.0]),
            Matrix::row_vec(&[1.0, 0.0]),
        )
        .unwrap()
    }

    #[test]
    fn zero_delay_reduces_to_plain_zoh() {
        let p = plant();
        let d = p.discretize(0.05).unwrap();
        let (phi, g1, g0) = p.discretize_with_delay(0.05, 0.0).unwrap();
        assert!(phi.approx_eq(&d.phi, 1e-13, 1e-13));
        assert_eq!(g1.max_abs(), 0.0);
        assert!(g0.approx_eq(&d.gamma, 1e-13, 1e-13));
    }

    #[test]
    fn gamma_split_sums_to_full_gamma() {
        // Γ₀ + Γ₁ must equal the full-interval Γ for any τ (same total
        // input energy, just split across the two commands).
        let p = plant();
        let h = 0.04;
        let full = p.discretize(h).unwrap().gamma;
        for tau in [0.001, 0.01, 0.02, 0.039] {
            let (_, g1, g0) = p.discretize_with_delay(h, tau).unwrap();
            let sum = &g1 + &g0;
            assert!(
                sum.approx_eq(&full, 1e-11, 1e-11),
                "tau = {tau}: split does not sum to Γ"
            );
        }
    }

    #[test]
    fn near_full_delay_moves_all_input_to_previous_command() {
        let p = plant();
        let h = 0.04;
        let (_, g1, g0) = p.discretize_with_delay(h, h - 1e-9).unwrap();
        // Almost everything rides on u[k−1].
        assert!(g0.max_abs() < 1e-6);
        let full = p.discretize(h).unwrap().gamma;
        assert!(g1.approx_eq(&full, 1e-6, 1e-6));
    }

    #[test]
    fn delay_validation() {
        let p = plant();
        assert!(p.discretize_with_delay(0.05, 0.05).is_err()); // τ = h
        assert!(p.discretize_with_delay(0.05, -0.01).is_err());
        assert!(p.discretize_with_delay(0.0, 0.0).is_err());
        assert!(p.discretize_with_delay(0.05, f64::NAN).is_err());
    }
}
