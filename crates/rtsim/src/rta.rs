//! Classical response-time analysis (RTA) for fixed-priority scheduling.

use crate::{Error, Result, Span, Task};

/// Total worst-case utilisation of a task set.
pub fn utilization(tasks: &[Task]) -> f64 {
    tasks.iter().map(Task::utilization).sum()
}

/// Worst-case response times under fixed-priority preemptive scheduling
/// (Joseph & Pandya / Audsley iteration), with the release-jitter extension:
///
/// ```text
/// R_i = C_i + Σ_{j ∈ hp(i)} ⌈(R_i + J_j) / T_j⌉ · C_j
/// ```
///
/// `J_j` is task `j`'s maximum release jitter
/// ([`crate::ArrivalModel::Jittered`]); sporadic slack only *increases*
/// separations beyond the minimum inter-arrival time, so the periodic term
/// remains a safe bound for [`crate::ArrivalModel::Sporadic`] interferers.
/// Tasks of **equal priority** are counted as mutual interference (the
/// scheduler breaks ties FIFO by release instant, so either task can delay
/// the other).
///
/// The iteration for a task is abandoned (and the task reported
/// unschedulable) when its response time exceeds `64 × period` — the paper's
/// setting tolerates overruns, so we deliberately allow `R > T`, but a
/// response time that keeps growing indicates an overloaded set for which
/// `Rmax` does not exist.
///
/// Returns one bound per task, in input order.
///
/// # Errors
///
/// * [`Error::InvalidConfig`] for an empty or invalid task set.
/// * [`Error::Unschedulable`] when an iteration diverges.
pub fn response_time_analysis(tasks: &[Task]) -> Result<Vec<Span>> {
    if tasks.is_empty() {
        return Err(Error::InvalidConfig("empty task set".into()));
    }
    for t in tasks {
        t.validate()?;
    }
    // With U > 1 the backlog grows without bound; the RTA fixed point (when
    // one exists) is meaningless because it only describes the first job of
    // a busy period that never ends.
    if utilization(tasks) > 1.0 + 1e-12 {
        let worst = tasks
            .iter()
            .max_by_key(|t| t.priority)
            .expect("non-empty set");
        return Err(Error::Unschedulable {
            task: worst.name.clone(),
        });
    }
    let mut result = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let c_i = task.execution.wcet();
        let bound = task.period * 64;
        let mut r = c_i;
        loop {
            let mut next = c_i;
            for (j, other) in tasks.iter().enumerate() {
                if j != i && other.priority <= task.priority {
                    let jitter = match other.arrival {
                        crate::ArrivalModel::Jittered { jitter } => jitter,
                        _ => Span::ZERO,
                    };
                    let interference =
                        other.execution.wcet() * (r + jitter).div_ceil(other.period);
                    next += interference;
                }
            }
            if next == r {
                break;
            }
            if next > bound {
                return Err(Error::Unschedulable {
                    task: task.name.clone(),
                });
            }
            r = next;
        }
        result.push(r);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecutionModel;

    fn task(name: &str, period_ms: u64, prio: u32, wcet_ms: u64) -> Task {
        Task::new(
            name,
            Span::from_millis(period_ms),
            prio,
            ExecutionModel::Constant(Span::from_millis(wcet_ms)),
        )
    }

    #[test]
    fn single_task_wcrt_is_wcet() {
        let r = response_time_analysis(&[task("t", 10, 0, 3)]).unwrap();
        assert_eq!(r, vec![Span::from_millis(3)]);
    }

    #[test]
    fn textbook_example() {
        // Classic Liu–Layland style set.
        let tasks = vec![
            task("t1", 4, 0, 1),
            task("t2", 6, 1, 2),
            task("t3", 20, 2, 3),
        ];
        let r = response_time_analysis(&tasks).unwrap();
        assert_eq!(r[0], Span::from_millis(1));
        // R2 = 2 + ⌈R2/4⌉·1 → R2 = 3
        assert_eq!(r[1], Span::from_millis(3));
        // R3 = 3 + ⌈R3/4⌉·1 + ⌈R3/6⌉·2 → fixed point:
        // try 3: 3+1+2=6; 6: 3+2+2=7; 7: 3+2+4=9; 9: 3+3+4=10; 10: 3+3+4=10 ✓
        assert_eq!(r[2], Span::from_millis(10));
    }

    #[test]
    fn response_can_exceed_period() {
        // Over-period response (an overrun in the paper's sense) is allowed
        // as long as total utilisation stays below one (U = 0.96 here).
        let tasks = vec![task("hp", 10, 0, 6), task("ctl", 25, 1, 9)];
        let r = response_time_analysis(&tasks).unwrap();
        // R_ctl = 9 + ⌈R/10⌉·6: 9→15→21→27→27 ✓
        assert_eq!(r[1], Span::from_millis(27));
        assert!(r[1] > tasks[1].period);
    }

    #[test]
    fn overload_detected() {
        let tasks = vec![task("a", 10, 0, 8), task("b", 10, 1, 8)];
        assert!(matches!(
            response_time_analysis(&tasks),
            Err(Error::Unschedulable { .. })
        ));
    }

    #[test]
    fn utilization_sum() {
        let tasks = vec![task("a", 10, 0, 2), task("b", 20, 1, 5)];
        assert!((utilization(&tasks) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(response_time_analysis(&[]).is_err());
    }

    #[test]
    fn equal_priority_mutual_interference() {
        // Same priority: the scheduler breaks ties FIFO by release, so both
        // tasks can delay each other — RTA must count both directions.
        let tasks = vec![task("a", 10, 0, 2), task("b", 10, 0, 2)];
        let r = response_time_analysis(&tasks).unwrap();
        assert_eq!(r[0], Span::from_millis(4));
        assert_eq!(r[1], Span::from_millis(4));
    }

    #[test]
    fn jittered_interferer_inflates_bound() {
        use crate::ArrivalModel;
        // hp: C=1, T=5, J=1; ctl: C=4, T=10.
        // R = 4 + ceil((R+1)/5)*1: 4→5; ceil(6/5)=2→6; ceil(7/5)=2→6 ✓
        let tasks = vec![
            Task::new(
                "hp",
                Span::from_millis(5),
                0,
                ExecutionModel::Constant(Span::from_millis(1)),
            )
            .with_arrival(ArrivalModel::Jittered {
                jitter: Span::from_millis(1),
            }),
            task("ctl", 10, 1, 4),
        ];
        let r = response_time_analysis(&tasks).unwrap();
        assert_eq!(r[1], Span::from_millis(6));
        // Without jitter the bound would be 5.
        let tasks_nj = vec![task("hp", 5, 0, 1), task("ctl", 10, 1, 4)];
        let r_nj = response_time_analysis(&tasks_nj).unwrap();
        assert_eq!(r_nj[1], Span::from_millis(5));
    }
}
