//! Regenerates **Table I** of the paper: worst-case performance `J_w` of
//! a PI-controlled unstable system under adaptive periods, comparing the
//! adaptive controller against fixed-gain baselines tuned for `T` and
//! `Rmax`.
//!
//! ```text
//! cargo run -p overrun-bench --bin table1 --release            # full (50 000 seqs)
//! cargo run -p overrun-bench --bin table1 --release -- --quick # smoke
//! ```

use overrun_bench::{metrics, run_header, RunArgs};
use overrun_control::plants;
use overrun_control::scenarios::{format_table1, table1};

fn main() {
    let args = match RunArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = args.apply_threads();
    args.start_trace();
    let plant = plants::unstable_second_order();
    let t = 0.010; // 10 ms control period, as in the paper
    args.human(&format!(
        "Table I — PI on an unstable plant, T = 10 ms, {} sequences x {} jobs (seed {}, {} threads)",
        args.sequences, args.jobs, args.seed, threads
    ));
    let started = std::time::Instant::now();
    let rows = match table1(&plant, t, &args.experiment_config()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();
    args.human(&format_table1(&rows));
    args.human(&format!("elapsed: {elapsed:.1?}"));

    let mut csv = run_header(threads, elapsed);
    csv.push_str("rmax_factor,ns,jw_adaptive,jw_fixed_t,jw_fixed_rmax\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            r.rmax_factor, r.ns, r.jw_adaptive, r.jw_fixed_t, r.jw_fixed_rmax
        ));
    }
    match args.write_artifact("table1.csv", &csv) {
        Ok(path) => args.human(&format!("wrote {}", path.display())),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let worst = rows
        .iter()
        .map(|r| r.jw_adaptive)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut km = metrics(&[("rows", rows.len() as f64), ("max_jw_adaptive", worst)]);
    km.extend(args.finish_trace("table1"));
    args.maybe_write_json("table1", threads, elapsed, &km);
}
