//! Closed-loop simulation driven by interval sequences.
//!
//! The simulator implements the paper's computational model exactly:
//! job `k`, released at `a_k`, samples the plant, computes its command with
//! the controller mode selected by the *previous* interval `h_{k−1}`, and
//! the command takes effect at the next release `a_{k+1} = a_k + h_k`.

use overrun_linalg::Matrix;

use crate::{lifted, ContinuousSs, ControllerTable, DiscreteSs, Error, Result};

/// Initial condition and reference of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimScenario {
    /// Initial plant state `x(0)`.
    pub x0: Matrix,
    /// Constant reference `r` on the controller's measurement
    /// (`e[k] = r − C_m x[k]`). Use zeros for pure regulation.
    pub reference: Matrix,
}

impl SimScenario {
    /// Regulation from a given initial state (`r = 0`).
    pub fn regulation(x0: Matrix, error_dim: usize) -> Self {
        SimScenario {
            x0,
            reference: Matrix::zeros(error_dim, 1),
        }
    }

    /// Step-reference tracking from the origin.
    pub fn step(state_dim: usize, reference: Matrix) -> Self {
        SimScenario {
            x0: Matrix::zeros(state_dim, 1),
            reference,
        }
    }
}

/// One simulated closed-loop trajectory.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Error samples `e[k]` (one per job).
    pub errors: Vec<Matrix>,
    /// Plant states `x[k]` at the release instants.
    pub states: Vec<Matrix>,
    /// Applied commands `u[k]`.
    pub commands: Vec<Matrix>,
    /// Interval indices used (`h_k` per job).
    pub mode_sequence: Vec<usize>,
    /// Quadratic error cost `Σ_k ‖e[k]‖²` (the paper's `J` summand).
    pub cost: f64,
    /// Time-weighted quadratic cost `Σ_k ‖e[k]‖² · h_k` — an approximation
    /// of `∫‖e‖² dt` that stays comparable across different sampling
    /// periods (used for the fixed-period baselines of Table II).
    pub cost_integral: f64,
    /// `true` when the state norm exceeded the divergence threshold.
    pub diverged: bool,
}

/// Cost and stability outcome of a trajectory, without the per-job records
/// — the return type of the allocation-free [`ClosedLoopSim::run_cost`]
/// fast path used by Monte Carlo ensembles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Quadratic error cost `Σ_k ‖e[k]‖²` (`∞` on divergence).
    pub cost: f64,
    /// Time-weighted quadratic cost `Σ_k ‖e[k]‖² · h_k` (`∞` on divergence).
    pub cost_integral: f64,
    /// `true` when the state norm exceeded the divergence threshold.
    pub diverged: bool,
}

/// A reusable closed-loop simulator: plant + controller table with all
/// per-interval discretisations precomputed.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_control::sim::{ClosedLoopSim, SimScenario};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let sim = ClosedLoopSim::new(&plant, &table)?;
/// let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
/// // 50 nominal jobs (mode 0 = no overruns).
/// let traj = sim.run(&scenario, &vec![0; 50])?;
/// assert!(!traj.diverged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopSim {
    plant: ContinuousSs,
    table: ControllerTable,
    measurement: Matrix,
    discretizations: Vec<DiscreteSs>,
    divergence_threshold: f64,
}

impl ClosedLoopSim {
    /// Builds the simulator, precomputing `Φ(h), Γ(h)` for every `h ∈ H`.
    ///
    /// # Errors
    ///
    /// Propagates discretisation and dimension errors.
    pub fn new(plant: &ContinuousSs, table: &ControllerTable) -> Result<Self> {
        let _sp = overrun_trace::span!("sim.build", modes = table.len());
        let measurement = lifted::measurement_matrix(plant, table)?;
        let discretizations = table
            .hset()
            .intervals()
            .iter()
            .map(|&h| plant.discretize(h))
            .collect::<Result<Vec<_>>>()?;
        Ok(ClosedLoopSim {
            plant: plant.clone(),
            table: table.clone(),
            measurement,
            discretizations,
            divergence_threshold: 1e9,
        })
    }

    /// Overrides the state-norm divergence threshold (default `1e9`).
    #[must_use]
    pub fn with_divergence_threshold(mut self, threshold: f64) -> Self {
        self.divergence_threshold = threshold;
        self
    }

    /// The controller table in use.
    pub fn table(&self) -> &ControllerTable {
        &self.table
    }

    /// The plant under control.
    pub fn plant(&self) -> &ContinuousSs {
        &self.plant
    }

    /// Simulates one trajectory along a sequence of interval indices
    /// (`modes[k]` selects `h_k ∈ H`).
    ///
    /// Job `k` computes with the controller mode of `h_{k−1}`; mode 0 — the
    /// nominal period — is assumed for the virtual job before the first
    /// (use [`ClosedLoopSim::run_with_initial_mode`] to override).
    /// Divergence does not abort the run; it is flagged on the returned
    /// [`Trajectory`] and the state is frozen to avoid overflow.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an out-of-range mode index or a
    /// scenario with mismatched dimensions.
    pub fn run(&self, scenario: &SimScenario, modes: &[usize]) -> Result<Trajectory> {
        self.run_with_initial_mode(scenario, modes, 0)
    }

    /// Like [`ClosedLoopSim::run`], but the virtual interval before the
    /// first job is `H[initial_mode]` instead of the nominal period — the
    /// exact constant-mode loop when `initial_mode == modes[k]` for all `k`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an out-of-range mode index or a
    /// scenario with mismatched dimensions.
    pub fn run_with_initial_mode(
        &self,
        scenario: &SimScenario,
        modes: &[usize],
        initial_mode: usize,
    ) -> Result<Trajectory> {
        let mut errors = Vec::with_capacity(modes.len());
        let mut states = Vec::with_capacity(modes.len());
        let mut commands = Vec::with_capacity(modes.len());
        let (cost, cost_integral, diverged) =
            self.run_core(scenario, modes, initial_mode, |e, x, u| {
                errors.push(Matrix::col_vec(e));
                states.push(Matrix::col_vec(x));
                commands.push(Matrix::col_vec(u));
            })?;
        let recorded = states.len();
        Ok(Trajectory {
            errors,
            states,
            commands,
            mode_sequence: modes[..recorded].to_vec(),
            cost,
            cost_integral,
            diverged,
        })
    }

    /// Cost-only fast path: identical dynamics to [`ClosedLoopSim::run`]
    /// but no per-job trajectory records and no per-step allocation —
    /// the entry point Monte Carlo ensembles should use. Costs are
    /// bit-identical to the recording path (both run the same core).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClosedLoopSim::run`].
    pub fn run_cost(&self, scenario: &SimScenario, modes: &[usize]) -> Result<CostSummary> {
        self.run_cost_with_initial_mode(scenario, modes, 0)
    }

    /// Like [`ClosedLoopSim::run_cost`] with an explicit virtual interval
    /// before the first job (see [`ClosedLoopSim::run_with_initial_mode`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClosedLoopSim::run`].
    pub fn run_cost_with_initial_mode(
        &self,
        scenario: &SimScenario,
        modes: &[usize],
        initial_mode: usize,
    ) -> Result<CostSummary> {
        let (cost, cost_integral, diverged) =
            self.run_core(scenario, modes, initial_mode, |_, _, _| {})?;
        Ok(CostSummary {
            cost,
            cost_integral,
            diverged,
        })
    }

    /// The shared stepping core behind [`ClosedLoopSim::run`] and
    /// [`ClosedLoopSim::run_cost`]: slice buffers only, zero allocation
    /// per step. `observe(e, x, u_applied)` is called once per simulated
    /// job (before the plant update, matching the recording order of the
    /// original implementation).
    fn run_core<F: FnMut(&[f64], &[f64], &[f64])>(
        &self,
        scenario: &SimScenario,
        modes: &[usize],
        initial_mode: usize,
        mut observe: F,
    ) -> Result<(f64, f64, bool)> {
        let n = self.plant.state_dim();
        let r = self.plant.input_dim();
        if scenario.x0.shape() != (n, 1) {
            return Err(Error::InvalidConfig(format!(
                "x0 must be {n}x1, got {}x{}",
                scenario.x0.rows(),
                scenario.x0.cols()
            )));
        }
        if scenario.reference.shape() != (self.table.error_dim(), 1) {
            return Err(Error::InvalidConfig(format!(
                "reference must be {}x1, got {}x{}",
                self.table.error_dim(),
                scenario.reference.rows(),
                scenario.reference.cols()
            )));
        }
        if initial_mode >= self.table.len() {
            return Err(Error::InvalidConfig(format!(
                "initial mode {initial_mode} out of range (H has {} entries)",
                self.table.len()
            )));
        }

        let nc = self.table.state_dim();
        let p = self.table.error_dim();
        if self.measurement.rows() != p {
            return Err(Error::InvalidConfig(format!(
                "measurement matrix has {} rows but the controller expects {p}",
                self.measurement.rows()
            )));
        }
        let mut x = scenario.x0.as_slice().to_vec();
        let mut x_next = vec![0.0; n];
        let mut y = vec![0.0; self.measurement.rows()];
        let mut e = vec![0.0; p];
        let mut z = vec![0.0; nc];
        let mut z_next = vec![0.0; nc];
        let mut u_applied = vec![0.0; r];
        let mut u_next = vec![0.0; r];
        let mut scratch = vec![0.0; nc.max(r).max(n)];
        let reference = scenario.reference.as_slice();
        let mut prev_mode = initial_mode;

        let mut cost = 0.0;
        let mut cost_integral = 0.0;
        let mut diverged = false;
        let intervals = self.table.hset().intervals();

        for (k, &mode_idx) in modes.iter().enumerate() {
            if mode_idx >= self.table.len() {
                return Err(Error::InvalidConfig(format!(
                    "mode index {mode_idx} out of range at job {k} (H has {} entries)",
                    self.table.len()
                )));
            }
            // Job k: sample, compute error, run controller with the mode of
            // the previous interval.
            self.measurement.mul_vec_into(&x, &mut y)?;
            for ((ei, &ri), &yi) in e.iter_mut().zip(reference).zip(y.iter()) {
                *ei = ri - yi;
            }
            let mode = self.table.mode(prev_mode);
            mode.step_into(&z, &e, &mut scratch, &mut z_next, &mut u_next)?;
            std::mem::swap(&mut z, &mut z_next);

            observe(&e, &x, &u_applied);
            let e_sq = e.iter().map(|v| v * v).sum::<f64>();
            cost += e_sq;
            cost_integral += e_sq * intervals[mode_idx];

            // Plant evolves over h_k under the currently applied command;
            // the command computed by job k takes effect at the next
            // release a_{k+1} (one interval of input–output delay, paper
            // Sec. III).
            let d = &self.discretizations[mode_idx];
            d.step_into(&x, &u_applied, &mut scratch[..n], &mut x_next)?;
            std::mem::swap(&mut u_applied, &mut u_next);
            prev_mode = mode_idx;

            if !x_next.iter().all(|v| v.is_finite())
                || x_next.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
                    > self.divergence_threshold
            {
                diverged = true;
                // Freeze the state: the trajectory is already classified.
                break;
            }
            std::mem::swap(&mut x, &mut x_next);
        }
        if diverged {
            cost = f64::INFINITY;
            cost_integral = f64::INFINITY;
        }
        Ok((cost, cost_integral, diverged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pi, plants, ControllerMode, ControllerTable, IntervalSet};

    fn setup() -> (ContinuousSs, ControllerTable) {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        (plant, table)
    }

    #[test]
    fn nominal_regulation_converges() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        let traj = sim.run(&scenario, &vec![0; 600]).unwrap();
        assert!(!traj.diverged);
        assert!(traj.cost.is_finite());
        // The error must shrink substantially from its initial value. The
        // achievable contraction for PI on this unstable plant is ρ ≈ 0.99
        // per job, so full decay needs several hundred jobs.
        let first = traj.errors[0].max_abs();
        let last = traj.errors.last().unwrap().max_abs();
        assert!(last < 0.1 * first, "first {first}, last {last}");
    }

    #[test]
    fn zero_initial_state_stays_at_rest() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::zeros(2, 1), 1);
        let traj = sim.run(&scenario, &vec![0; 50]).unwrap();
        assert!(traj.cost.abs() < 1e-20);
        assert!(traj.states.iter().all(|x| x.max_abs() < 1e-12));
    }

    #[test]
    fn overruns_degrade_but_do_not_destabilize() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        let nominal = sim.run(&scenario, &vec![0; 100]).unwrap();
        // Alternating worst-case overruns.
        let modes: Vec<usize> = (0..100).map(|k| if k % 2 == 0 { 1 } else { 0 }).collect();
        let stressed = sim.run(&scenario, &modes).unwrap();
        assert!(!stressed.diverged);
        assert!(stressed.cost >= nominal.cost * 0.5);
    }

    #[test]
    fn open_loop_unstable_plant_diverges_without_control() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
        // Zero-gain "controller": u = 0 forever.
        let zero = ControllerMode::static_gain(Matrix::zeros(1, 1)).unwrap();
        let table = ControllerTable::fixed(zero, hset).unwrap();
        let sim = ClosedLoopSim::new(&plant, &table)
            .unwrap()
            .with_divergence_threshold(1e6);
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        let traj = sim.run(&scenario, &vec![0; 4000]).unwrap();
        assert!(traj.diverged);
        assert!(traj.cost.is_infinite());
    }

    #[test]
    fn run_cost_matches_run_bitwise() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
        let modes: Vec<usize> = (0..200).map(|k| usize::from(k % 3 == 1)).collect();
        let traj = sim.run(&scenario, &modes).unwrap();
        let fast = sim.run_cost(&scenario, &modes).unwrap();
        assert_eq!(fast.cost.to_bits(), traj.cost.to_bits());
        assert_eq!(fast.cost_integral.to_bits(), traj.cost_integral.to_bits());
        assert_eq!(fast.diverged, traj.diverged);
        // With an explicit initial mode, too.
        let traj = sim.run_with_initial_mode(&scenario, &modes, 1).unwrap();
        let fast = sim.run_cost_with_initial_mode(&scenario, &modes, 1).unwrap();
        assert_eq!(fast.cost.to_bits(), traj.cost.to_bits());
    }

    #[test]
    fn mode_index_validation() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        assert!(sim.run(&scenario, &[0, 9]).is_err());
    }

    #[test]
    fn scenario_shape_validation() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        assert!(sim
            .run(&SimScenario::regulation(Matrix::zeros(3, 1), 1), &[0])
            .is_err());
        let bad_ref = SimScenario {
            x0: Matrix::zeros(2, 1),
            reference: Matrix::zeros(2, 1),
        };
        assert!(sim.run(&bad_ref, &[0]).is_err());
    }

    #[test]
    fn trajectory_records_match_requested_length() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[0.1, 0.0]), 1);
        let traj = sim.run(&scenario, &vec![0; 37]).unwrap();
        assert_eq!(traj.errors.len(), 37);
        assert_eq!(traj.states.len(), 37);
        assert_eq!(traj.commands.len(), 37);
        assert_eq!(traj.mode_sequence.len(), 37);
    }

    #[test]
    fn step_tracking_reaches_reference() {
        let (plant, table) = setup();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
        let traj = sim.run(&scenario, &vec![0; 400]).unwrap();
        assert!(!traj.diverged);
        let final_err = traj.errors.last().unwrap().max_abs();
        assert!(final_err < 0.05, "steady-state error {final_err}");
    }
}
