//! Householder QR factorisation.

use crate::{Error, Matrix, Result};

/// QR factorisation `A = Q R` via Householder reflections.
///
/// Works for any `m × n` matrix with `m >= n`; `Q` is `m × m` orthogonal and
/// `R` is `m × n` upper trapezoidal. Used for least-squares solves and as a
/// building block of orthogonal-iteration style algorithms.
///
/// # Example
///
/// ```
/// use overrun_linalg::{Matrix, Qr};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])?;
/// let qr = Qr::new(&a)?;
/// let back = qr.q() * qr.r();
/// assert!(back.approx_eq(&a, 1e-12, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factors an `m × n` matrix with `m >= n`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if `m < n`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(Error::InvalidData(format!(
                "qr requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut r = a.clone();
        let mut q = Matrix::identity(m);
        let mut v = vec![0.0_f64; m];

        for k in 0..n.min(m.saturating_sub(1)) {
            // Build the Householder vector for column k.
            let mut norm_x = 0.0_f64;
            for i in k..m {
                norm_x = norm_x.hypot(r[(i, k)]);
            }
            if norm_x == 0.0 {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
            let mut v_norm_sq = 0.0_f64;
            for i in k..m {
                v[i] = r[(i, k)];
                if i == k {
                    v[i] -= alpha;
                }
                v_norm_sq += v[i] * v[i];
            }
            if v_norm_sq == 0.0 {
                continue;
            }
            let beta = 2.0 / v_norm_sq;
            // R := (I - beta v vᵀ) R
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let s = beta * dot;
                for i in k..m {
                    let val = r[(i, j)] - s * v[i];
                    r[(i, j)] = val;
                }
            }
            // Q := Q (I - beta v vᵀ)
            for i in 0..m {
                let mut dot = 0.0;
                for l in k..m {
                    dot += q[(i, l)] * v[l];
                }
                let s = beta * dot;
                for l in k..m {
                    let val = q[(i, l)] - s * v[l];
                    q[(i, l)] = val;
                }
            }
        }
        // Clean tiny subdiagonal residue for exact triangularity.
        for j in 0..n {
            for i in (j + 1)..m {
                r[(i, j)] = 0.0;
            }
        }
        Ok(Qr { q, r })
    }

    /// The orthogonal factor `Q` (`m × m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-trapezoidal factor `R` (`m × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong-sized `b` and
    /// [`Error::Singular`] if `R` is rank deficient.
    pub fn solve_least_squares(&self, b: &Matrix) -> Result<Matrix> {
        let (m, _) = self.q.shape();
        let n = self.r.cols();
        if b.rows() != m {
            return Err(Error::DimensionMismatch {
                op: "qr_solve",
                lhs: self.q.shape(),
                rhs: b.shape(),
            });
        }
        let qtb = self.q.transpose().matmul(b)?;
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            for i in (0..n).rev() {
                let mut s = qtb[(i, j)];
                for k in (i + 1)..n {
                    s -= self.r[(i, k)] * x[(k, j)];
                }
                let d = self.r[(i, i)];
                // Purely relative threshold (a small-magnitude but
                // well-conditioned R must not be rejected); MIN_POSITIVE
                // keeps the all-zero matrix classified as singular.
                let scale = self.r.max_abs().max(f64::MIN_POSITIVE);
                let tiny = f64::EPSILON * scale * (m.max(n) as f64);
                if d.abs() < tiny {
                    return Err(Error::Singular);
                }
                x[(i, j)] = s / d;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs() {
        let a = Matrix::from_rows(&[&[12.0, -51.0, 4.0], &[6.0, 167.0, -68.0], &[-4.0, 24.0, -41.0]])
            .unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!((qr.q() * qr.r()).approx_eq(&a, 1e-10, 1e-10));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_fn(4, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q().transpose() * qr.q();
        assert!(qtq.approx_eq(&Matrix::identity(4), 1e-12, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 + 1.0);
        let qr = Qr::new(&a).unwrap();
        for i in 0..5 {
            for j in 0..3.min(i) {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2x + 1 exactly through three collinear points.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]).unwrap();
        let b = Matrix::col_vec(&[1.0, 3.0, 5.0]);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_residual_minimised() {
        // Points not on a line; the normal equations give the unique solution.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]).unwrap();
        let b = Matrix::col_vec(&[0.0, 1.0, 3.0]);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        // Solve normal equations AᵀA x = Aᵀ b independently.
        let ata = a.transpose() * &a;
        let atb = a.transpose() * &b;
        let x_ref = ata.solve(&atb).unwrap();
        assert!(x.approx_eq(&x_ref, 1e-12, 1e-12));
    }

    #[test]
    fn rejects_wide() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn singular_r_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let b = Matrix::col_vec(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            qr.solve_least_squares(&b),
            Err(Error::Singular)
        ));
    }
}

#[cfg(test)]
mod small_magnitude_tests {
    use super::*;

    #[test]
    fn well_conditioned_tiny_matrix_solvable() {
        // Condition number 1, entries 1e-20: must NOT be declared singular.
        let a = Matrix::from_rows(&[&[1e-20, 0.0], &[0.0, 1e-20], &[0.0, 0.0]]).unwrap();
        let b = Matrix::col_vec(&[1e-20, 2e-20, 0.0]);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_still_singular() {
        let a = Matrix::zeros(3, 2);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&Matrix::zeros(3, 1)),
            Err(Error::Singular)
        ));
    }
}
