//! Derivative-free optimisation for gain tuning.
//!
//! The paper tunes PI gains per interval "following standard heuristic
//! procedures" (Sec. IV-B). The actual Nelder–Mead implementation lives in
//! [`overrun_linalg::optimize`] (it is also used by the ellipsoidal-norm
//! search in `overrun-jsr`); this module re-exports it with thin
//! error-type adaptation for the control layer.

pub use overrun_linalg::optimize::{NelderMeadOptions, OptimResult};

use crate::Result;

/// Minimises `f` starting from `x0` — see
/// [`overrun_linalg::optimize::nelder_mead`] for the algorithm details.
///
/// # Errors
///
/// Returns [`crate::Error::Linalg`] for an empty starting point.
///
/// # Example
///
/// ```
/// use overrun_control::tuning::{nelder_mead, NelderMeadOptions};
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let res = nelder_mead(sphere, &[1.0, -2.0], &NelderMeadOptions::default())?;
/// assert!(res.f < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    f: F,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> Result<OptimResult> {
    Ok(overrun_linalg::optimize::nelder_mead(f, x0, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_export_minimises_quadratic() {
        let res = nelder_mead(
            |x| (x[0] - 3.0).powi(2),
            &[0.0],
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((res.x[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn error_adaptation() {
        assert!(nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default()).is_err());
    }
}
