//! Cross-crate determinism tests for the parallel execution layer: every
//! parallelised pipeline — Monte Carlo `J_w`, the Gripenberg JSR
//! certificate, and the controller-table builders — must return
//! bit-identical results for any worker-thread count.
//!
//! The thread override is process-global, so all tests share one lock and
//! always restore the default before releasing it.

use std::sync::Mutex;

use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_jsr::{gripenberg, GripenbergOptions, MatrixSet};
use overrun_linalg::Matrix;
use overrun_par::set_thread_override;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at each thread count in `counts` and returns the results,
/// restoring the default thread selection afterwards.
fn at_thread_counts<R>(counts: &[usize], mut f: impl FnMut() -> R) -> Vec<R> {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let out = counts
        .iter()
        .map(|&t| {
            set_thread_override(Some(t));
            f()
        })
        .collect();
    set_thread_override(None);
    out
}

/// Monte Carlo worst-case evaluation is bit-identical at 1 and 4 threads:
/// per-sequence RNG seeds and fixed-chunk reduction make the report
/// independent of how work is scheduled.
#[test]
fn monte_carlo_jw_bit_identical_across_threads() {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    let opts = WorstCaseOptions {
        num_sequences: 200, // several chunks, the last one partial
        jobs_per_sequence: 60,
        seed: 2021,
        rmin_fraction: 0.05,
    };

    let reports = at_thread_counts(&[1, 4], || {
        evaluate_worst_case(&sim, &scenario, &opts).unwrap()
    });

    let (serial, parallel) = (&reports[0], &reports[1]);
    assert_eq!(serial.worst_cost.to_bits(), parallel.worst_cost.to_bits());
    assert_eq!(serial.mean_cost.to_bits(), parallel.mean_cost.to_bits());
    assert_eq!(
        serial.worst_integral_cost.to_bits(),
        parallel.worst_integral_cost.to_bits()
    );
    assert_eq!(serial.diverged, parallel.diverged);
    assert!(serial.worst_cost.is_finite());
}

/// The parallel Gripenberg frontier expansion returns the same certified
/// `[LB, UB]` interval (bitwise) as the serial path on the Table-II lifted
/// matrix sets.
#[test]
fn gripenberg_bounds_match_serial_on_table2_sets() {
    let plant = plants::pmsm();
    let t = 50e-6;
    for (factor, ns) in [(1.3, 2u32), (1.6, 2)] {
        let hset = IntervalSet::from_timing(t, factor * t, ns).unwrap();
        let table = lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).unwrap();
        let meas = lifted::measurement_matrix(&plant, &table).unwrap();
        let set =
            MatrixSet::new(lifted::build_omega_set(&plant, &table, &meas).unwrap()).unwrap();
        let opts = GripenbergOptions {
            max_depth: 8,
            ..Default::default()
        };

        let bounds = at_thread_counts(&[1, 4], || gripenberg(&set, &opts).unwrap());

        assert_eq!(
            bounds[0].lower.to_bits(),
            bounds[1].lower.to_bits(),
            "LB differs at Rmax = {factor}T, Ns = {ns}"
        );
        assert_eq!(
            bounds[0].upper.to_bits(),
            bounds[1].upper.to_bits(),
            "UB differs at Rmax = {factor}T, Ns = {ns}"
        );
        assert!(bounds[0].lower <= bounds[0].upper);
    }
}

/// The parallel per-`h` table builders produce the same modes (bitwise,
/// entry by entry) as a serial construction.
#[test]
fn table_builders_bit_identical_across_threads() {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.6 * 50e-6, 5).unwrap();
    let weights = pmsm_table2_weights();

    let tables = at_thread_counts(&[1, 4], || {
        lqr::design_adaptive(&plant, &hset, &weights).unwrap()
    });

    assert_eq!(tables[0].len(), tables[1].len());
    for (a, b) in tables[0].modes().iter().zip(tables[1].modes()) {
        for (ma, mb) in [
            (&a.ac, &b.ac),
            (&a.bc, &b.bc),
            (&a.cc, &b.cc),
            (&a.dc, &b.dc),
        ] {
            assert_eq!(ma.shape(), mb.shape());
            for (va, vb) in ma.as_slice().iter().zip(mb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}
