//! Random response-time sequence generation (the paper's evaluation
//! workload: 50 000 random sequences of 50 jobs each).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Error, Result, Span};

/// Distribution of per-job response times.
///
/// The paper's evaluation draws response times directly (it deliberately
/// avoids assuming anything about *how* they arise); these models mirror
/// that methodology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResponseTimeModel {
    /// Uniform over `[min, max]` — the paper's random sequences.
    Uniform {
        /// Best-case response time `Rmin`.
        min: Span,
        /// Worst-case response time `Rmax`.
        max: Span,
    },
    /// Sporadic overruns: with probability `overrun_prob` uniform over
    /// `(period, max]`, otherwise uniform over `[min, period]`.
    Sporadic {
        /// Best-case response time.
        min: Span,
        /// Nominal period `T` (the overrun threshold).
        period: Span,
        /// Worst-case response time `Rmax > T`.
        max: Span,
        /// Probability that a job overruns.
        overrun_prob: f64,
    },
    /// A fixed, repeating sequence (for adversarial or recorded patterns).
    Fixed(Vec<Span>),
    /// Two-state Markov-modulated response times: a *nominal* regime with
    /// responses uniform in `[min, period]` and a *degraded* regime
    /// (uniform in `(period, max]`) that persists — capturing bursty
    /// interference (cache storms, interrupt floods) where overruns
    /// cluster instead of arriving independently.
    Markov {
        /// Best-case response time.
        min: Span,
        /// Nominal period `T` (the overrun threshold).
        period: Span,
        /// Worst-case response time `Rmax > T`.
        max: Span,
        /// Probability of entering the degraded regime from nominal.
        enter_prob: f64,
        /// Probability of leaving the degraded regime back to nominal.
        leave_prob: f64,
    },
}

impl ResponseTimeModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for inverted ranges, zero bounds, an
    /// out-of-range probability, or an empty fixed sequence.
    pub fn validate(&self) -> Result<()> {
        match self {
            ResponseTimeModel::Uniform { min, max } => {
                if min.is_zero() {
                    return Err(Error::InvalidConfig("Rmin must be positive".into()));
                }
                if min > max {
                    return Err(Error::InvalidConfig(format!(
                        "response range inverted: {min} > {max}"
                    )));
                }
            }
            ResponseTimeModel::Sporadic {
                min,
                period,
                max,
                overrun_prob,
            } => {
                validate_overrun_range(*min, *period, *max)?;
                validate_probability("overrun", *overrun_prob)?;
            }
            ResponseTimeModel::Fixed(seq) => {
                if seq.is_empty() {
                    return Err(Error::InvalidConfig("fixed sequence is empty".into()));
                }
                if seq.iter().any(|s| s.is_zero()) {
                    return Err(Error::InvalidConfig(
                        "fixed sequence contains a zero response time".into(),
                    ));
                }
            }
            ResponseTimeModel::Markov {
                min,
                period,
                max,
                enter_prob,
                leave_prob,
            } => {
                validate_overrun_range(*min, *period, *max)?;
                validate_probability("enter", *enter_prob)?;
                validate_probability("leave", *leave_prob)?;
            }
        }
        Ok(())
    }

    /// The largest response time the model can produce.
    pub fn rmax(&self) -> Span {
        match self {
            ResponseTimeModel::Uniform { max, .. } => *max,
            ResponseTimeModel::Sporadic { max, .. } => *max,
            ResponseTimeModel::Fixed(seq) => {
                seq.iter().copied().fold(Span::ZERO, Span::max)
            }
            ResponseTimeModel::Markov { max, .. } => *max,
        }
    }
}

/// Seeded generator of response-time sequences.
///
/// # Example
///
/// ```
/// use overrun_rtsim::{ResponseTimeModel, SequenceGenerator, Span};
///
/// # fn main() -> Result<(), overrun_rtsim::Error> {
/// let model = ResponseTimeModel::Uniform {
///     min: Span::from_millis(1),
///     max: Span::from_millis(13),
/// };
/// let mut gen = SequenceGenerator::new(model, 42)?;
/// let seq = gen.sequence(50);
/// assert_eq!(seq.len(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequenceGenerator {
    model: ResponseTimeModel,
    rng: SmallRng,
    cursor: usize,
    degraded: bool,
}

impl SequenceGenerator {
    /// Creates a generator with a validated model and deterministic seed.
    ///
    /// # Errors
    ///
    /// Propagates [`ResponseTimeModel::validate`].
    pub fn new(model: ResponseTimeModel, seed: u64) -> Result<Self> {
        model.validate()?;
        Ok(SequenceGenerator {
            model,
            rng: SmallRng::seed_from_u64(seed),
            cursor: 0,
            degraded: false,
        })
    }

    /// Draws the next response time.
    pub fn next_response(&mut self) -> Span {
        match &self.model {
            ResponseTimeModel::Uniform { min, max } => {
                uniform(&mut self.rng, *min, *max)
            }
            ResponseTimeModel::Sporadic {
                min,
                period,
                max,
                overrun_prob,
            } => {
                if self.rng.gen_bool(*overrun_prob) {
                    // (T, Rmax]: offset by one nanosecond to stay strictly
                    // above the period.
                    uniform(
                        &mut self.rng,
                        *period + Span::from_nanos(1),
                        *max,
                    )
                } else {
                    uniform(&mut self.rng, *min, *period)
                }
            }
            ResponseTimeModel::Fixed(seq) => {
                let v = seq[self.cursor % seq.len()];
                self.cursor += 1;
                v
            }
            ResponseTimeModel::Markov {
                min,
                period,
                max,
                enter_prob,
                leave_prob,
            } => {
                if self.degraded {
                    if self.rng.gen_bool(*leave_prob) {
                        self.degraded = false;
                    }
                } else if self.rng.gen_bool(*enter_prob) {
                    self.degraded = true;
                }
                if self.degraded {
                    uniform(&mut self.rng, *period + Span::from_nanos(1), *max)
                } else {
                    uniform(&mut self.rng, *min, *period)
                }
            }
        }
    }

    /// Draws a sequence of `len` response times.
    pub fn sequence(&mut self, len: usize) -> Vec<Span> {
        // Counted once per sequence, never per draw, so the hot RNG loop
        // stays trace-free.
        overrun_trace::counter!("rtsim.draws", len as u64);
        (0..len).map(|_| self.next_response()).collect()
    }

    /// The underlying model.
    pub fn model(&self) -> &ResponseTimeModel {
        &self.model
    }
}

/// Common validation of the `Rmin ≤ T < Rmax` envelope shared by the
/// overrun-capable models.
fn validate_overrun_range(min: Span, period: Span, max: Span) -> Result<()> {
    if min.is_zero() {
        return Err(Error::InvalidConfig("Rmin must be positive".into()));
    }
    if min > period {
        return Err(Error::InvalidConfig("Rmin exceeds the period".into()));
    }
    if max <= period {
        return Err(Error::InvalidConfig(
            "overrun models require Rmax > T".into(),
        ));
    }
    Ok(())
}

fn validate_probability(name: &str, p: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidConfig(format!(
            "{name} probability {p} outside [0, 1]"
        )));
    }
    Ok(())
}

fn uniform(rng: &mut SmallRng, min: Span, max: Span) -> Span {
    if min >= max {
        return min;
    }
    Span::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range() {
        let mut g = SequenceGenerator::new(
            ResponseTimeModel::Uniform {
                min: Span::from_millis(2),
                max: Span::from_millis(13),
            },
            1,
        )
        .unwrap();
        for r in g.sequence(1000) {
            assert!(r >= Span::from_millis(2) && r <= Span::from_millis(13));
        }
    }

    #[test]
    fn sporadic_overrun_fraction() {
        let mut g = SequenceGenerator::new(
            ResponseTimeModel::Sporadic {
                min: Span::from_millis(1),
                period: Span::from_millis(10),
                max: Span::from_millis(16),
                overrun_prob: 0.2,
            },
            7,
        )
        .unwrap();
        let n = 10_000;
        let seq = g.sequence(n);
        let overruns = seq.iter().filter(|r| **r > Span::from_millis(10)).count();
        let frac = overruns as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "overrun fraction {frac}");
        assert!(seq.iter().all(|r| *r <= Span::from_millis(16)));
    }

    #[test]
    fn fixed_sequence_cycles() {
        let pattern = vec![Span::from_millis(5), Span::from_millis(11)];
        let mut g =
            SequenceGenerator::new(ResponseTimeModel::Fixed(pattern.clone()), 0).unwrap();
        let seq = g.sequence(5);
        assert_eq!(seq[0], pattern[0]);
        assert_eq!(seq[1], pattern[1]);
        assert_eq!(seq[2], pattern[0]);
        assert_eq!(seq[4], pattern[0]);
    }

    #[test]
    fn validation() {
        assert!(ResponseTimeModel::Uniform {
            min: Span::ZERO,
            max: Span::from_millis(1),
        }
        .validate()
        .is_err());
        assert!(ResponseTimeModel::Uniform {
            min: Span::from_millis(5),
            max: Span::from_millis(1),
        }
        .validate()
        .is_err());
        assert!(ResponseTimeModel::Sporadic {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(10), // not > T
            overrun_prob: 0.5,
        }
        .validate()
        .is_err());
        assert!(ResponseTimeModel::Fixed(vec![]).validate().is_err());
        assert!(ResponseTimeModel::Fixed(vec![Span::ZERO]).validate().is_err());
    }

    #[test]
    fn rmax_accessor() {
        assert_eq!(
            ResponseTimeModel::Fixed(vec![Span::from_millis(3), Span::from_millis(9)]).rmax(),
            Span::from_millis(9)
        );
        assert_eq!(
            ResponseTimeModel::Uniform {
                min: Span::from_millis(1),
                max: Span::from_millis(4),
            }
            .rmax(),
            Span::from_millis(4)
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let model = ResponseTimeModel::Uniform {
            min: Span::from_millis(1),
            max: Span::from_millis(20),
        };
        let a = SequenceGenerator::new(model.clone(), 5).unwrap().sequence(100);
        let b = SequenceGenerator::new(model, 5).unwrap().sequence(100);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod markov_tests {
    use super::*;

    fn model() -> ResponseTimeModel {
        ResponseTimeModel::Markov {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(16),
            enter_prob: 0.05,
            leave_prob: 0.5,
        }
    }

    #[test]
    fn markov_validation() {
        model().validate().unwrap();
        assert!(ResponseTimeModel::Markov {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(10), // not > T
            enter_prob: 0.1,
            leave_prob: 0.5,
        }
        .validate()
        .is_err());
        assert!(ResponseTimeModel::Markov {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(16),
            enter_prob: 1.5,
            leave_prob: 0.5,
        }
        .validate()
        .is_err());
        assert_eq!(model().rmax(), Span::from_millis(16));
    }

    #[test]
    fn markov_overruns_cluster() {
        // With enter = 0.05 and leave = 0.5, overruns arrive in short
        // bursts: the probability that an overrun is followed by another
        // must exceed the marginal overrun probability.
        let mut g = SequenceGenerator::new(model(), 3).unwrap();
        let seq = g.sequence(50_000);
        let over: Vec<bool> = seq.iter().map(|r| *r > Span::from_millis(10)).collect();
        let marginal = over.iter().filter(|&&o| o).count() as f64 / over.len() as f64;
        let mut after_over = 0usize;
        let mut over_over = 0usize;
        for w in over.windows(2) {
            if w[0] {
                after_over += 1;
                if w[1] {
                    over_over += 1;
                }
            }
        }
        let conditional = over_over as f64 / after_over.max(1) as f64;
        assert!(
            conditional > 2.0 * marginal,
            "no clustering: conditional {conditional:.3} vs marginal {marginal:.3}"
        );
        // Envelope respected.
        assert!(seq.iter().all(|r| *r >= Span::from_millis(1) && *r <= Span::from_millis(16)));
    }

    #[test]
    fn markov_deterministic_per_seed() {
        let a = SequenceGenerator::new(model(), 9).unwrap().sequence(200);
        let b = SequenceGenerator::new(model(), 9).unwrap().sequence(200);
        assert_eq!(a, b);
    }
}
