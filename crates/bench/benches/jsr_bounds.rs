//! Criterion benchmarks for the JSR bound computations (the stability
//! certificate of paper Sec. V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_jsr::{
    bruteforce_bounds, gripenberg, BruteforceOptions, GripenbergOptions, MatrixSet,
};

/// The Table-II lifted matrix set for one configuration.
fn lifted_set(factor: f64, ns: u32) -> MatrixSet {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, factor * 50e-6, ns).expect("valid grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    let meas = lifted::measurement_matrix(&plant, &table).expect("measurement");
    MatrixSet::new(lifted::build_omega_set(&plant, &table, &meas).expect("omegas"))
        .expect("matrix set")
}

fn bench_bruteforce_depth(c: &mut Criterion) {
    let set = lifted_set(1.3, 2);
    let mut group = c.benchmark_group("eq12_bruteforce");
    for depth in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| {
                bruteforce_bounds(
                    &set,
                    &BruteforceOptions {
                        max_depth: d,
                        ..Default::default()
                    },
                )
                .expect("bounds")
            })
        });
    }
    group.finish();
}

fn bench_gripenberg_variants(c: &mut Criterion) {
    let set = lifted_set(1.3, 2);
    let mut group = c.benchmark_group("gripenberg");
    group.bench_function("plain_norm", |b| {
        b.iter(|| {
            gripenberg(
                &set,
                &GripenbergOptions {
                    ellipsoid: false,
                    max_depth: 10,
                    ..Default::default()
                },
            )
            .expect("bounds")
        })
    });
    group.bench_function("ellipsoid_norm", |b| {
        b.iter(|| {
            gripenberg(
                &set,
                &GripenbergOptions {
                    max_depth: 10,
                    ..Default::default()
                },
            )
            .expect("bounds")
        })
    });
    group.finish();
}

fn bench_full_certification(c: &mut Criterion) {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, 1.3 * 50e-6, 2).expect("grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    c.bench_function("certify_table2_cell", |b| {
        b.iter(|| stability::certify(&plant, &table, &Default::default()).expect("certify"))
    });
}

criterion_group! {
    name = benches;
    // The certification kernels run for seconds per iteration; a small
    // sample keeps `cargo bench` tractable without losing signal.
    config = Criterion::default().sample_size(10);
    targets = bench_bruteforce_depth, bench_gripenberg_variants, bench_full_certification
}
criterion_main!(benches);
