// Fixture source: one determinism finding, suppressed inline.
// lint: allow(determinism)
use std::collections::HashMap;

pub type Cache = HashMap<u32, u32>; // lint: allow(determinism)

pub fn decoy() -> u32 {
    7
}
