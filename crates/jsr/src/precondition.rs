//! Joint diagonal preconditioning of a matrix set.

use overrun_linalg::Matrix;

use crate::{MatrixSet, Result};

/// Computes a common diagonal similarity `D` that balances the entry-wise
/// magnitude sum `S = Σᵢ |Aᵢ|` of the set and applies it to every matrix.
///
/// The JSR is invariant under any common similarity transform, but norm-based
/// *upper* bounds are not — a badly scaled set can make `‖·‖`-products
/// orders of magnitude looser than necessary. Balancing the aggregate matrix
/// is a cheap, deterministic preconditioner that typically shrinks the
/// first-level upper bound substantially.
///
/// Returns the scaled set together with the diagonal of `D` so callers can
/// map certificates back to original coordinates.
///
/// # Errors
///
/// Propagates validation errors from [`MatrixSet::similarity_scaled`].
pub fn precondition(set: &MatrixSet) -> Result<(MatrixSet, Vec<f64>)> {
    let n = set.dim();
    // Aggregate magnitude matrix.
    let mut s = Matrix::zeros(n, n);
    for m in set {
        for i in 0..n {
            for j in 0..n {
                s[(i, j)] += m[(i, j)].abs();
            }
        }
    }
    // Parlett–Reinsch-style balancing on the aggregate (powers of 2 only, so
    // the transform is exact in floating point).
    let mut d = vec![1.0_f64; n];
    let radix = 2.0_f64;
    for _sweep in 0..50 {
        let mut done = true;
        for i in 0..n {
            let mut c = 0.0;
            let mut r = 0.0;
            for j in 0..n {
                if j != i {
                    c += s[(j, i)].abs();
                    r += s[(i, j)].abs();
                }
            }
            if c == 0.0 || r == 0.0 {
                continue;
            }
            let mut f = 1.0_f64;
            let mut c2 = c;
            while c2 < r / radix {
                f *= radix;
                c2 *= radix * radix;
            }
            while c2 > r * radix {
                f /= radix;
                c2 /= radix * radix;
            }
            if f != 1.0 && (c * f + r / f) < 0.95 * (c + r) {
                done = false;
                d[i] *= f;
                for j in 0..n {
                    let v = s[(i, j)] / f;
                    s[(i, j)] = v;
                }
                for j in 0..n {
                    let v = s[(j, i)] * f;
                    s[(j, i)] = v;
                }
            }
        }
        if done {
            break;
        }
    }
    let scaled = set.similarity_scaled(&d)?;
    Ok((scaled, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_linalg::{norm_1, spectral_radius};

    #[test]
    fn preconditioning_preserves_spectra() {
        let a = Matrix::from_rows(&[&[0.5, 1000.0], &[0.00001, 0.3]]).unwrap();
        let b = Matrix::from_rows(&[&[0.1, 2000.0], &[0.00002, 0.4]]).unwrap();
        let set = MatrixSet::new(vec![a.clone(), b.clone()]).unwrap();
        let (scaled, _d) = precondition(&set).unwrap();
        for (orig, sc) in set.iter().zip(scaled.iter()) {
            let r0 = spectral_radius(orig).unwrap();
            let r1 = spectral_radius(sc).unwrap();
            assert!((r0 - r1).abs() < 1e-9 * r0.max(1.0));
        }
    }

    #[test]
    fn preconditioning_tightens_norms_on_skewed_set() {
        let a = Matrix::from_rows(&[&[0.5, 1e6], &[1e-7, 0.3]]).unwrap();
        let set = MatrixSet::new(vec![a.clone()]).unwrap();
        let (scaled, _) = precondition(&set).unwrap();
        assert!(norm_1(&scaled.matrices()[0]) < norm_1(&a));
    }

    #[test]
    fn preconditioning_is_noop_for_balanced() {
        let a = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let set = MatrixSet::new(vec![a.clone()]).unwrap();
        let (scaled, d) = precondition(&set).unwrap();
        assert!(scaled.matrices()[0].approx_eq(&a, 1e-15, 0.0));
        assert!(d.iter().all(|&x| x == 1.0));
    }
}
