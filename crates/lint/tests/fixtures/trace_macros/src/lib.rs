// Fixture source: instrumented but clean. The trace macros appear both in
// an ordinary function (determinism scope) and inside the registered
// hot-path function `hot_kernel` — none of them may trip a rule.
pub fn search_phase(depth: usize, frontier: usize) -> f64 {
    let _sp = overrun_trace::span!("fixture.depth", depth = depth, frontier = frontier);
    overrun_trace::counter!("fixture.nodes", frontier as u64);
    overrun_trace::progress!("fixture.lb", 0.5);
    depth as f64
}

pub fn hot_kernel(out: &mut [f64]) {
    let _sp = overrun_trace::span!("fixture.kernel", len = out.len());
    for o in out.iter_mut() {
        *o *= 2.0;
    }
    overrun_trace::histogram!("fixture.scale", out.len() as f64);
}
