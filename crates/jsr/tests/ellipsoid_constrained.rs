//! Known-answer and property tests for the ellipsoidal-norm optimiser
//! (`jsr::ellipsoid`) and the constrained-switching bounds
//! (`jsr::constrained`).
//!
//! The properties pinned here are the two soundness contracts the
//! certification pipeline leans on: the optimised ellipsoid really induces
//! a *norm* (positive, homogeneous, triangle inequality — otherwise its
//! "upper bound" would certify nothing), and the constrained JSR never
//! beats the unconstrained one (`ρ_C ≤ ρ`: restricting the switching
//! language can only remove products).

use overrun_jsr::{
    bruteforce_bounds, constrained_bounds, kronecker_sum_bounds, optimize_ellipsoid,
    BruteforceOptions, ConstrainedOptions, EllipsoidOptions, MatrixSet,
};
use overrun_linalg::{norm_2, spectral_radius, Matrix};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Known-answer cases
// ---------------------------------------------------------------------------

/// For a diagonal singleton the 2-norm is already optimal: the search must
/// return (essentially) the spectral radius, not something looser.
#[test]
fn ellipsoid_known_answer_diagonal() {
    let a = Matrix::diag(&[0.5, 0.25]);
    let set = MatrixSet::new(vec![a]).unwrap();
    let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
    assert!((e.norm_bound - 0.5).abs() < 1e-6, "bound = {}", e.norm_bound);
}

/// A scaled rotation has `ρ = 0.9 = ‖A‖₂`; no ellipsoid can do better, and
/// the optimiser must not do worse.
#[test]
fn ellipsoid_known_answer_scaled_rotation() {
    let (c, s) = (0.6_f64, 0.8_f64); // cos/sin of a rational angle
    let a = Matrix::from_rows(&[&[0.9 * c, 0.9 * s], &[-0.9 * s, 0.9 * c]]).unwrap();
    let set = MatrixSet::new(vec![a]).unwrap();
    let e = optimize_ellipsoid(&set, &EllipsoidOptions::default()).unwrap();
    assert!((e.norm_bound - 0.9).abs() < 1e-6, "bound = {}", e.norm_bound);
}

/// Known answer for the Blondel–Nesterov cut: for a singleton,
/// `ρ(A ⊗ A) = ρ(A)²`, so both bounds collapse onto the spectral radius.
#[test]
fn kronecker_known_answer_rotation() {
    let a = Matrix::from_rows(&[&[0.0, 0.9], &[-0.9, 0.0]]).unwrap();
    let set = MatrixSet::new(vec![a]).unwrap();
    let b = kronecker_sum_bounds(&set).unwrap();
    assert!((b.lower - 0.9).abs() < 1e-8, "{b:?}");
    assert!((b.upper - 0.9).abs() < 1e-8, "{b:?}");
}

/// Forced alternation (`prev != next`) between a contractive and an
/// expansive diagonal mode: the admissible infinite words are the two
/// alternations, so `ρ_C = sqrt(ρ(A₁·A₀)) = sqrt(0.8)` exactly.
#[test]
fn constrained_known_answer_forced_alternation() {
    let nominal = Matrix::diag(&[0.4, 0.2]);
    let overrun = Matrix::diag(&[2.0, 1.0]);
    let set = MatrixSet::new(vec![nominal, overrun]).unwrap();
    let b = constrained_bounds(&set, &|p, n| p != n, &ConstrainedOptions::default()).unwrap();
    let expected = (0.4 * 2.0_f64).sqrt();
    assert!(b.certifies_stable(), "bounds {b}");
    assert!(b.lower <= expected + 1e-9, "{b:?} vs {expected}");
    assert!(expected <= b.upper + 1e-9, "{b:?} vs {expected}");
    assert!(b.upper - b.lower < 0.05, "alternation bounds are tight: {b:?}");
}

/// A "no two consecutive overruns" weakly-hard contract on an overrun mode
/// that is only *marginally* expansive: depth enumeration must certify the
/// pair even though the unconstrained JSR is exactly the overrun radius.
#[test]
fn constrained_known_answer_no_repeat() {
    let nominal = Matrix::diag(&[0.3, 0.3]);
    let overrun = Matrix::diag(&[1.5, 1.5]);
    let set = MatrixSet::new(vec![nominal.clone(), overrun.clone()]).unwrap();
    let b = constrained_bounds(
        &set,
        &|prev, next| !(prev == 1 && next == 1),
        &ConstrainedOptions::default(),
    )
    .unwrap();
    // Worst admissible cycle: (overrun · nominal)^∞ → sqrt(1.5 · 0.3).
    let expected = (1.5 * 0.3_f64).sqrt();
    assert!(b.certifies_stable(), "bounds {b}");
    assert!((b.lower - expected).abs() < 1e-6, "{b:?} vs {expected}");
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

fn matrix(n: usize, mag: f64) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-mag..mag, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v).expect("sized buffer"))
}

fn vector(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0..2.0f64, n)
        .prop_map(|v| Matrix::col_vec(&v))
}

/// `‖x‖_P = ‖L x‖₂` for the optimised ellipsoid.
fn p_norm(l: &Matrix, x: &Matrix) -> f64 {
    norm_2(&l.matmul(x).expect("dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimised ellipsoid induces a genuine vector norm: positive on
    /// non-zero vectors, absolutely homogeneous, and subadditive.
    #[test]
    fn ellipsoid_norm_is_a_norm(
        a in matrix(2, 1.0),
        b in matrix(2, 1.0),
        x in vector(2),
        y in vector(2),
        c in -3.0..3.0f64,
    ) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions {
            max_evals: 400, // small budget: the properties hold for any L
            ..EllipsoidOptions::default()
        }).unwrap();

        let nx = p_norm(&e.l, &x);
        let ny = p_norm(&e.l, &y);
        // Positive definiteness (L is invertible by construction).
        if norm_2(&x) > 1e-9 {
            prop_assert!(nx > 0.0, "‖x‖_P = {nx} for x ≠ 0");
        }
        // Absolute homogeneity.
        let ncx = p_norm(&e.l, &x.scale(c));
        prop_assert!((ncx - c.abs() * nx).abs() <= 1e-9 * (1.0 + ncx),
            "‖c·x‖_P = {ncx} vs |c|·‖x‖_P = {}", c.abs() * nx);
        // Triangle inequality.
        let nxy = p_norm(&e.l, &x.add_mat(&y).unwrap());
        prop_assert!(nxy <= nx + ny + 1e-9 * (1.0 + nx + ny),
            "‖x+y‖_P = {nxy} > {nx} + {ny}");
    }

    /// The ellipsoid's reported bound really is the induced-norm maximum:
    /// for every member, `‖A x‖_P ≤ norm_bound · ‖x‖_P`, hence also
    /// `ρ(Aᵢ) ≤ norm_bound`.
    #[test]
    fn ellipsoid_bound_dominates_members(
        a in matrix(2, 1.0),
        b in matrix(2, 1.0),
        x in vector(2),
    ) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let e = optimize_ellipsoid(&set, &EllipsoidOptions {
            max_evals: 400,
            ..EllipsoidOptions::default()
        }).unwrap();
        for m in set.iter() {
            let rho = spectral_radius(m).unwrap();
            prop_assert!(rho <= e.norm_bound + 1e-7 * (1.0 + rho),
                "ρ = {rho} > bound = {}", e.norm_bound);
            let nx = p_norm(&e.l, &x);
            let nax = p_norm(&e.l, &m.matmul(&x).unwrap());
            prop_assert!(nax <= e.norm_bound * nx + 1e-7 * (1.0 + nax),
                "‖Ax‖_P = {nax} > bound · ‖x‖_P = {}", e.norm_bound * nx);
        }
    }

    /// Restricting the switching language never increases the radius: the
    /// constrained lower bound stays below the unconstrained upper bound
    /// for the weakly-hard "no two consecutive overruns" predicate.
    #[test]
    fn constrained_never_beats_unconstrained(
        a in matrix(2, 1.2),
        b in matrix(2, 1.2),
    ) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let free = bruteforce_bounds(&set, &BruteforceOptions {
            max_depth: 8,
            ..BruteforceOptions::default()
        }).unwrap();
        let con = constrained_bounds(
            &set,
            &|prev, next| !(prev == 1 && next == 1),
            &ConstrainedOptions { max_depth: 8, ..ConstrainedOptions::default() },
        ).unwrap();
        prop_assert!(con.lower <= con.upper + 1e-9, "con = {con:?}");
        prop_assert!(con.lower <= free.upper + 1e-9,
            "ρ_C lower {con:?} beats unconstrained upper {free:?}");
    }

    /// With the all-true predicate the admissible language is unrestricted,
    /// so the constrained interval must overlap the brute-force interval —
    /// both contain the same true JSR.
    #[test]
    fn all_true_predicate_matches_unconstrained(
        a in matrix(2, 1.0),
        b in matrix(2, 1.0),
    ) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let free = bruteforce_bounds(&set, &BruteforceOptions {
            max_depth: 8,
            ..BruteforceOptions::default()
        }).unwrap();
        let con = constrained_bounds(
            &set,
            &|_, _| true,
            &ConstrainedOptions { max_depth: 8, ..ConstrainedOptions::default() },
        ).unwrap();
        prop_assert!(con.lower <= free.upper + 1e-6, "con={con:?} free={free:?}");
        prop_assert!(free.lower <= con.upper + 1e-6, "con={con:?} free={free:?}");
    }
}
