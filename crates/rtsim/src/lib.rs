//! A small real-time systems simulator for control-task timing studies.
//!
//! This crate provides the *platform substrate* of the DATE 2021 paper
//! reproduction: everything needed to generate realistic response-time
//! sequences for a control task running on a shared, fixed-priority,
//! preemptive single-core platform, plus the paper's **overrun-adaptive
//! release policy** (Sec. IV-A):
//!
//! * exact integer-nanosecond time arithmetic ([`Time`], [`Span`]),
//! * task models with stochastic execution times ([`Task`],
//!   [`ExecutionModel`] — including a bimodal "sporadic overrun" model),
//! * an event-driven fixed-priority preemptive [`Scheduler`],
//! * classical response-time analysis ([`response_time_analysis`]) to obtain
//!   the worst-case response time `Rmax` that parameterises the set `H`,
//! * the continuous-stream-inspired release policy ([`OverrunPolicy`])
//!   producing per-job intervals `h_k = T + Δ_k`, and
//! * timeline rendering ([`render_timeline`]) reproducing Figure 1.
//!
//! # Example
//!
//! ```
//! use overrun_rtsim::{OverrunPolicy, Span};
//!
//! # fn main() -> Result<(), overrun_rtsim::Error> {
//! let policy = OverrunPolicy::new(Span::from_millis(10), 5)?; // T = 10 ms, Ns = 5
//! // A job that finishes within T keeps the nominal period...
//! assert_eq!(policy.next_interval(Span::from_millis(7))?, Span::from_millis(10));
//! // ...an overrunning job defers the next release to the sensor grid.
//! assert_eq!(policy.next_interval(Span::from_millis(11))?, Span::from_millis(12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod overrun;
mod rta;
mod scheduler;
mod sequence;
mod task;
mod time;
mod trace;
pub mod weakly_hard;

pub use error::Error;
pub use exec::ExecutionModel;
pub use overrun::{JobRecord, OverrunPolicy, ReleaseTrace};
pub use rta::{response_time_analysis, utilization};
pub use scheduler::{ScheduleTrace, Scheduler, SchedulerConfig, TaskStats};
pub use sequence::{ResponseTimeModel, SequenceGenerator};
pub use task::{ArrivalModel, Task, TaskId};
pub use time::{Span, Time};
pub use trace::{gantt, render_timeline, trace_to_csv, TimelineOptions};
pub use weakly_hard::{empirical_contract, max_overruns_in_window, WeaklyHard};

/// Convenience alias for `Result<T, overrun_rtsim::Error>`.
pub type Result<T> = std::result::Result<T, Error>;
