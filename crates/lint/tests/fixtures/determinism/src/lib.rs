// Fixture source: exactly one determinism violation (the HashMap below).
// The same tokens inside comments and strings must NOT fire:
// HashMap, Instant::now, std::env
use std::collections::HashMap;

pub fn decoy() -> &'static str {
    "HashMap and std::env in a string are invisible to the lexer"
}
