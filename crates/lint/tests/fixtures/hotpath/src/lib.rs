// Fixture source: exactly one hot-path violation (Vec::new in hot_kernel).
pub fn hot_kernel(out: &mut [f64]) {
    let scratch: Vec<f64> = Vec::new();
    for o in out.iter_mut() {
        *o += scratch.len() as f64;
    }
}

pub fn cold_setup() -> Vec<f64> {
    Vec::new() // identical token sequence, unregistered fn — no finding
}
