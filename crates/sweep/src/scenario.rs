//! Declarative scenario grids and their content keys.
//!
//! A [`Scenario`] names one certification problem declaratively (plant,
//! period, `Rmax` factor, `Ns`, design policy, Gripenberg budget). Because
//! every controller design in the workspace is deterministic, materializing
//! a scenario always yields bit-identical matrices — so the content key is
//! computed over the *materialized* inputs (`plant`, `ControllerTable`,
//! [`CertifyOptions`]). That choice is load-bearing: the bench binaries
//! certify tables they built themselves, and [`certification_key`] lets
//! them address the very same cache entries without ever naming a policy.

use overrun_control::lqr::LqrWeights;
use overrun_control::stability::CertifyOptions;
use overrun_control::{pi, ContinuousSs, ControllerMode, ControllerTable, IntervalSet};
use overrun_linalg::Matrix;

use crate::hash::{Canon, ContentHash};

/// Which interval a fixed-gain design is tuned for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainSchedule {
    /// Tuned for the nominal period `T`.
    Nominal,
    /// Tuned for the worst interval `Rmax`.
    Rmax,
}

/// How the controller table of a scenario is designed.
#[derive(Debug, Clone)]
pub enum DesignPolicy {
    /// Adaptive PI: per-interval integrator advance (paper Eq. 7).
    PiAdaptive,
    /// Fixed PI gains tuned for one interval, executed adaptively.
    PiFixed(GainSchedule),
    /// Adaptive delayed LQR: one Riccati solve per interval.
    LqrAdaptive {
        /// Cost weights of the LQR design.
        weights: LqrWeights,
    },
    /// Fixed LQR gains tuned for one interval, executed adaptively.
    LqrFixed {
        /// Cost weights of the LQR design.
        weights: LqrWeights,
        /// Interval the single gain is tuned for.
        schedule: GainSchedule,
    },
    /// A literal static output feedback `u = Dc · e` in every mode —
    /// handy for constructing certified-unstable scenarios in tests.
    StaticGain(Matrix),
}

impl DesignPolicy {
    /// Short policy tag used in scenario labels.
    pub fn tag(&self) -> &'static str {
        match self {
            DesignPolicy::PiAdaptive => "pi-adaptive",
            DesignPolicy::PiFixed(GainSchedule::Nominal) => "pi-fixed-t",
            DesignPolicy::PiFixed(GainSchedule::Rmax) => "pi-fixed-rmax",
            DesignPolicy::LqrAdaptive { .. } => "lqr-adaptive",
            DesignPolicy::LqrFixed {
                schedule: GainSchedule::Nominal,
                ..
            } => "lqr-fixed-t",
            DesignPolicy::LqrFixed {
                schedule: GainSchedule::Rmax,
                ..
            } => "lqr-fixed-rmax",
            DesignPolicy::StaticGain(_) => "static-gain",
        }
    }
}

/// One declarative certification problem.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human label ("pmsm r1.6 ns2 lqr-adaptive", ...).
    pub label: String,
    /// Continuous-time plant.
    pub plant: ContinuousSs,
    /// Nominal period `T` in seconds.
    pub period: f64,
    /// `Rmax = rmax_factor · T`.
    pub rmax_factor: f64,
    /// Sensor oversampling factor (`Ts = T / ns`).
    pub ns: u32,
    /// Controller design policy.
    pub policy: DesignPolicy,
    /// Gripenberg certification budget.
    pub opts: CertifyOptions,
}

/// A scenario with its controller table materialized and key computed —
/// the unit the engine actually runs. Bench binaries that already hold a
/// `(plant, table, opts)` triple construct this directly via
/// [`PreparedScenario::new`].
#[derive(Debug, Clone)]
pub struct PreparedScenario {
    /// Human label.
    pub label: String,
    /// Continuous-time plant.
    pub plant: ContinuousSs,
    /// Materialized controller table.
    pub table: ControllerTable,
    /// Gripenberg certification budget.
    pub opts: CertifyOptions,
    /// Content key over the materialized inputs.
    pub key: ContentHash,
}

impl PreparedScenario {
    /// Wraps a pre-built `(plant, table, opts)` triple, computing its key.
    pub fn new(
        label: impl Into<String>,
        plant: ContinuousSs,
        table: ControllerTable,
        opts: CertifyOptions,
    ) -> PreparedScenario {
        let key = certification_key(&plant, &table, &opts);
        PreparedScenario {
            label: label.into(),
            plant,
            table,
            opts,
            key,
        }
    }
}

impl Scenario {
    /// Materializes the scenario's controller table and content key.
    ///
    /// # Errors
    ///
    /// Propagates design failures (invalid timing, Riccati failure, ...).
    pub fn prepare(&self) -> overrun_control::Result<PreparedScenario> {
        let rmax = self.rmax_factor * self.period;
        let hset = IntervalSet::from_timing(self.period, rmax, self.ns)?;
        let table = match &self.policy {
            DesignPolicy::PiAdaptive => pi::design_adaptive(&self.plant, &hset)?,
            DesignPolicy::PiFixed(sched) => {
                let h = match sched {
                    GainSchedule::Nominal => self.period,
                    GainSchedule::Rmax => rmax,
                };
                pi::design_fixed(&self.plant, &hset, h)?
            }
            DesignPolicy::LqrAdaptive { weights } => {
                overrun_control::lqr::design_adaptive(&self.plant, &hset, weights)?
            }
            DesignPolicy::LqrFixed { weights, schedule } => {
                let h = match schedule {
                    GainSchedule::Nominal => self.period,
                    GainSchedule::Rmax => rmax,
                };
                overrun_control::lqr::design_fixed(&self.plant, &hset, weights, h)?
            }
            DesignPolicy::StaticGain(dc) => {
                let mode = ControllerMode::static_gain(dc.clone())?;
                ControllerTable::fixed(mode, hset)?
            }
        };
        Ok(PreparedScenario::new(
            self.label.clone(),
            self.plant.clone(),
            table,
            self.opts.clone(),
        ))
    }
}

/// A declarative grid: the cartesian product of its axes.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Named plants.
    pub plants: Vec<(String, ContinuousSs)>,
    /// Nominal periods `T` in seconds.
    pub periods: Vec<f64>,
    /// `Rmax / T` factors.
    pub rmax_factors: Vec<f64>,
    /// Sensor oversampling factors.
    pub ns_values: Vec<u32>,
    /// Named design policies.
    pub policies: Vec<(String, DesignPolicy)>,
    /// Shared certification budget.
    pub opts: CertifyOptions,
}

impl GridSpec {
    /// Expands the grid into scenarios, deterministic in axis order:
    /// plants (outermost) → periods → rmax factors → ns → policies.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (pname, plant) in &self.plants {
            for &t in &self.periods {
                for &factor in &self.rmax_factors {
                    for &ns in &self.ns_values {
                        for (polname, policy) in &self.policies {
                            out.push(Scenario {
                                label: format!("{pname} t{t} r{factor} ns{ns} {polname}"),
                                plant: plant.clone(),
                                period: t,
                                rmax_factor: factor,
                                ns,
                                policy: policy.clone(),
                                opts: self.opts.clone(),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Computes the content key of one certification: a framed FNV-128 hash
/// over the crate version, the plant matrices, the materialized controller
/// table (every mode's `Ac/Bc/Cc/Dc` plus the interval set), and the
/// [`CertifyOptions`] budget — all `f64`s by exact bit pattern.
///
/// The key deliberately covers only what [`overrun_control::stability::certify`]
/// reads, so the declarative and pre-materialized paths address identical
/// cache entries.
pub fn certification_key(
    plant: &ContinuousSs,
    table: &ControllerTable,
    opts: &CertifyOptions,
) -> ContentHash {
    let mut c = Canon::new();
    c.tag("overrun-sweep-key");
    c.str_field(env!("CARGO_PKG_VERSION"));
    c.tag("plant")
        .matrix_field(&plant.a)
        .matrix_field(&plant.b)
        .matrix_field(&plant.c);
    c.tag("hset");
    let hset = table.hset();
    c.f64_field(hset.period())
        .f64_field(hset.sensor_period())
        .f64_field(hset.rmax());
    c.u64_field(hset.len() as u64);
    for &h in hset.intervals() {
        c.f64_field(h);
    }
    c.tag("table").u64_field(table.len() as u64);
    for mode in table.modes() {
        c.matrix_field(&mode.ac)
            .matrix_field(&mode.bc)
            .matrix_field(&mode.cc)
            .matrix_field(&mode.dc);
    }
    c.tag("opts")
        .f64_field(opts.delta)
        .u64_field(opts.max_depth as u64)
        .u64_field(opts.max_products as u64)
        .u64_field(opts.max_power as u64);
    c.finish()
}

/// Hash identifying a whole prepared grid (order-sensitive over the
/// scenario keys) — the checkpoint's validity token.
pub fn grid_key(scenarios: &[PreparedScenario]) -> ContentHash {
    let mut c = Canon::new();
    c.tag("overrun-sweep-grid");
    c.u64_field(scenarios.len() as u64);
    for s in scenarios {
        c.u64_field(s.key.0 as u64);
        c.u64_field((s.key.0 >> 64) as u64);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_control::plants;

    fn base_scenario() -> Scenario {
        Scenario {
            label: "uso".to_string(),
            plant: plants::unstable_second_order(),
            period: 0.010,
            rmax_factor: 1.3,
            ns: 2,
            policy: DesignPolicy::PiAdaptive,
            opts: CertifyOptions::default(),
        }
    }

    #[test]
    fn prepare_is_deterministic_and_key_stable() -> overrun_control::Result<()> {
        let s = base_scenario();
        let a = s.prepare()?;
        let b = s.prepare()?;
        assert_eq!(a.key, b.key);
        // The pre-materialized path addresses the same cache entry.
        assert_eq!(a.key, certification_key(&b.plant, &b.table, &b.opts));
        Ok(())
    }

    #[test]
    fn key_separates_inputs() -> overrun_control::Result<()> {
        let s = base_scenario();
        let base = s.prepare()?.key;

        let mut wider = s.clone();
        wider.rmax_factor = 1.6;
        assert_ne!(wider.prepare()?.key, base);

        let mut finer = s.clone();
        finer.ns = 5;
        assert_ne!(finer.prepare()?.key, base);

        let mut other_policy = s.clone();
        other_policy.policy = DesignPolicy::PiFixed(GainSchedule::Nominal);
        assert_ne!(other_policy.prepare()?.key, base);

        let mut other_budget = s;
        other_budget.opts.max_depth = 5;
        assert_ne!(other_budget.prepare()?.key, base);
        Ok(())
    }

    #[test]
    fn grid_expansion_shape_and_order() {
        let spec = GridSpec {
            plants: vec![
                ("uso".into(), plants::unstable_second_order()),
                ("dint".into(), plants::double_integrator()),
            ],
            periods: vec![0.010],
            rmax_factors: vec![1.1, 1.3],
            ns_values: vec![2],
            policies: vec![
                ("adaptive".into(), DesignPolicy::PiAdaptive),
                ("fixed-t".into(), DesignPolicy::PiFixed(GainSchedule::Nominal)),
            ],
            opts: CertifyOptions::default(),
        };
        let scenarios = spec.expand();
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(scenarios[0].label, "uso t0.01 r1.1 ns2 adaptive");
        assert_eq!(scenarios[1].label, "uso t0.01 r1.1 ns2 fixed-t");
        assert_eq!(scenarios[4].label, "dint t0.01 r1.1 ns2 adaptive");
    }
}
