//! Ablation of the stability-analysis machinery (not a paper table, but
//! quantifies the design choices called out in `DESIGN.md`): for the
//! Table-II matrix sets, how tight are
//!
//! 1. the paper-Eq.-12 brute-force bounds at increasing depth,
//! 2. plain Gripenberg (2-norm),
//! 3. Gripenberg in the optimised ellipsoidal norm, and
//! 4. the power-lifted refinement used by `stability::certify`?
//!
//! Each method reports its norm-screening counters: how many exact Schur
//! evaluations the O(n²) certified bounds avoided without changing a bit
//! of the certified interval.
//!
//! ```text
//! cargo run -p overrun-bench --bin jsr_ablation --release
//! ```

use overrun_bench::{metrics, RunArgs};
use overrun_control::lqr;
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_jsr::{
    bruteforce_bounds_with_stats, gripenberg_with_stats, refined_bounds_with_stats,
    BruteforceOptions, GripenbergOptions, MatrixSet, RefineOptions, ScreenStats,
};

fn main() {
    let args = match RunArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = args.apply_threads();
    args.start_trace();
    let plant = plants::pmsm();
    let t = 50e-6;
    args.human(&format!(
        "JSR method ablation on the Table-II lifted sets (PMSM, adaptive LQR, {threads} threads)"
    ));
    args.human(&format!(
        "{:<14} {:>3} | {:^23} | {:^23} | {:^23} | {:^23}",
        "config", "#H", "Eq.12 depth 6", "Gripenberg (2-norm)", "Gripenberg (ellipsoid)", "power-lifted refine"
    ));
    let started = std::time::Instant::now();
    let mut total = ScreenStats::default();
    let mut configs = 0usize;
    for (factor, ns) in [(1.1, 2u32), (1.3, 2), (1.6, 2), (1.1, 5), (1.3, 5), (1.6, 5)] {
        let hset = match IntervalSet::from_timing(t, factor * t, ns) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("bad config: {e}");
                continue;
            }
        };
        let mut run = || -> Result<(), Box<dyn std::error::Error>> {
            let table = lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights())?;
            let meas = lifted::measurement_matrix(&plant, &table)?;
            let omegas = lifted::build_omega_set(&plant, &table, &meas)?;
            let set = MatrixSet::new(omegas)?;

            let (eq12, s_eq12) = bruteforce_bounds_with_stats(
                &set,
                &BruteforceOptions {
                    max_depth: 6,
                    ..Default::default()
                },
            )?;
            let (plain, s_plain) = gripenberg_with_stats(
                &set,
                &GripenbergOptions {
                    ellipsoid: false,
                    ..Default::default()
                },
            )?;
            let (ell, s_ell) = gripenberg_with_stats(&set, &GripenbergOptions::default())?;
            let (refined, s_refined) = refined_bounds_with_stats(
                &set,
                &RefineOptions {
                    decision_threshold: None,
                    ..Default::default()
                },
            )?;
            args.human(&format!(
                "{factor:.1}T  Ts=T/{ns} {:>3} | {eq12} | {plain} | {ell} | {refined}",
                set.len(),
            ));
            args.human(&format!("    eq12:    {s_eq12}"));
            args.human(&format!("    plain:   {s_plain}"));
            args.human(&format!("    ellips:  {s_ell}"));
            args.human(&format!("    refined: {s_refined}"));
            for s in [&s_eq12, &s_plain, &s_ell, &s_refined] {
                total.absorb(s);
            }
            configs += 1;
            Ok(())
        };
        if let Err(e) = run() {
            eprintln!("{factor:.1}T Ts=T/{ns}: failed: {e}");
        }
    }
    let elapsed = started.elapsed();
    args.human(&format!(
        "total: {total}\nelapsed: {elapsed:.1?} ({configs} configs)"
    ));
    let mut km = metrics(&[
        ("configs", configs as f64),
        ("schur_evals", total.schur_evals() as f64),
        ("schur_skipped", total.schur_skipped() as f64),
        ("screen_hit_rate", total.hit_rate()),
    ]);
    km.extend(args.finish_trace("jsr_ablation"));
    args.maybe_write_json("jsr_ablation", threads, elapsed, &km);
}
