use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::{Error, Result};

/// A dense, row-major matrix of `f64`.
///
/// `Matrix` is the workhorse of the whole stack: plants, controllers and
/// lifted closed-loop dynamics are all plain matrices. The type favours
/// explicitness over cleverness — shape errors are reported through
/// [`Error`] by the named methods ([`Matrix::matmul`], [`Matrix::add_mat`],
/// …). Two ergonomic surfaces panic instead, mirroring the standard
/// library: indexing (`m[(i, j)]`) panics on out-of-bounds access like
/// slices do, and the arithmetic operators (`+`, `-`, `*`, `+=`, `-=`)
/// panic on shape mismatch — use the fallible methods when shapes are not
/// statically known.
///
/// # Example
///
/// ```
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if the rows have inconsistent lengths
    /// or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::InvalidData("empty row set".into()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(Error::InvalidData(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::InvalidData(format!(
                "buffer of length {} cannot fill a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in entries.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Creates an `n × 1` column vector from a slice.
    pub fn col_vec(entries: &[f64]) -> Self {
        Matrix {
            rows: entries.len(),
            cols: 1,
            data: entries.to_vec(),
        }
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row_vec(entries: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: entries.len(),
            data: entries.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the entry at `(i, j)`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Applies `f` entry-wise, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_add_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs` written into `out`, without allocating.
    ///
    /// `out` is fully overwritten; it must already have shape
    /// `self.rows() × rhs.cols()`. The accumulation order is identical to
    /// [`Matrix::matmul`], so results are bit-identical to the allocating
    /// version.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `self.cols() != rhs.rows()`
    /// or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if out.rows != self.rows || out.cols != rhs.cols {
            return Err(Error::DimensionMismatch {
                op: "matmul_into(out)",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        self.matmul_add_into(rhs, out)
    }

    /// Accumulating product: `out += self * rhs`, without allocating.
    ///
    /// Same shape requirements and accumulation order as
    /// [`Matrix::matmul_into`], but the prior contents of `out` are kept.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on inner-dimension or output
    /// shape disagreement.
    pub fn matmul_add_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if out.rows != self.rows || out.cols != rhs.cols {
            return Err(Error::DimensionMismatch {
                op: "matmul_into(out)",
                lhs: (self.rows, rhs.cols),
                rhs: out.shape(),
            });
        }
        #[cfg(feature = "sanitize")]
        {
            crate::sanitize::check_input("matmul_add_into", "lhs", &self.data);
            crate::sanitize::check_input("matmul_add_into", "rhs", &rhs.data);
            crate::sanitize::check_input("matmul_add_into", "accumulator", &out.data);
        }
        // Square matrices up to `small::MAX_DIM` take the fixed-size kernel
        // (bit-identical accumulation order, see `small`).
        if self.rows == self.cols
            && rhs.rows == rhs.cols
            && crate::small::matmul_acc_dispatch(self.rows, &self.data, &rhs.data, &mut out.data)
        {
            #[cfg(feature = "sanitize")]
            crate::sanitize::check_output("matmul_add_into", &out.data);
            return Ok(());
        }
        // i-k-j loop order: streams through rhs rows, cache-friendly for
        // row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self.data[i * self.cols + k];
                if a_ik == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a_ik * r;
                }
            }
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_output("matmul_add_into", &out.data);
        Ok(())
    }

    /// Matrix–vector product `self * x` written into `out`, without
    /// allocating. Slice-based so simulation hot loops can keep state in
    /// plain buffers. Accumulation order matches [`Matrix::matmul`] applied
    /// to an `n × 1` column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.cols()` or
    /// `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if out.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "mul_vec_into(out)",
                lhs: (self.rows, 1),
                rhs: (out.len(), 1),
            });
        }
        out.fill(0.0);
        self.mul_vec_acc_into(x, out)
    }

    /// Accumulating matrix–vector product: `out += self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on length disagreement.
    pub fn mul_vec_acc_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(Error::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "mul_vec_into(out)",
                lhs: (self.rows, 1),
                rhs: (out.len(), 1),
            });
        }
        #[cfg(feature = "sanitize")]
        {
            crate::sanitize::check_input("mul_vec_acc_into", "lhs", &self.data);
            crate::sanitize::check_input("mul_vec_acc_into", "x", x);
            crate::sanitize::check_input("mul_vec_acc_into", "accumulator", out);
        }
        if self.rows == self.cols
            && crate::small::mul_vec_acc_dispatch(self.rows, &self.data, x, out)
        {
            #[cfg(feature = "sanitize")]
            crate::sanitize::check_output("mul_vec_acc_into", out);
            return Ok(());
        }
        for (i, o) in out.iter_mut().enumerate() {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = *o;
            // Zero-skip as in `matmul`, so results (including non-finite
            // propagation) are bit-identical to the allocating path.
            for (&a, &xv) in arow.iter().zip(x) {
                if a == 0.0 {
                    continue;
                }
                acc += a * xv;
            }
            *o = acc;
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_output("mul_vec_acc_into", out);
        Ok(())
    }

    /// Scales every entry by `s` in place (no allocation).
    pub fn scale_in_place(&mut self, s: f64) {
        #[cfg(feature = "sanitize")]
        {
            crate::sanitize::check_scalar("scale_in_place", "scale factor", s);
            crate::sanitize::check_input("scale_in_place", "self", &self.data);
        }
        for a in &mut self.data {
            *a *= s;
        }
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_output("scale_in_place", &self.data);
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape disagreement.
    pub fn add_mat(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Entry-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape disagreement.
    pub fn sub_mat(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        #[cfg(feature = "sanitize")]
        {
            crate::sanitize::check_input(op, "lhs", &self.data);
            crate::sanitize::check_input(op, "rhs", &rhs.data);
        }
        let result = Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        };
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_output(op, &result.data);
        Ok(result)
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Extracts the sub-matrix with rows `r0..r0+nr` and columns `c0..c0+nc`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if the requested block exceeds the
    /// matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Result<Matrix> {
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(Error::InvalidData(format!(
                "block {nr}x{nc} at ({r0},{c0}) exceeds {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + nc];
            out.data[i * nc..(i + 1) * nc].copy_from_slice(src);
        }
        Ok(out)
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(Error::InvalidData(format!(
                "block {}x{} at ({r0},{c0}) exceeds {}x{}",
                block.rows, block.cols, self.rows, self.cols
            )));
        }
        for i in 0..block.rows {
            let src = &block.data[i * block.cols..(i + 1) * block.cols];
            let dst_off = (r0 + i) * self.cols + c0;
            self.data[dst_off..dst_off + block.cols].copy_from_slice(src);
        }
        Ok(())
    }

    /// Stacks `blocks` horizontally (same row count).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] on empty input or row-count mismatch.
    pub fn hstack(blocks: &[&Matrix]) -> Result<Matrix> {
        if blocks.is_empty() {
            return Err(Error::InvalidData("hstack of zero blocks".into()));
        }
        let rows = blocks[0].rows;
        if blocks.iter().any(|b| b.rows != rows) {
            return Err(Error::InvalidData("hstack row mismatch".into()));
        }
        let cols = blocks.iter().map(|b| b.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for b in blocks {
            out.set_block(0, c0, b)?;
            c0 += b.cols;
        }
        Ok(out)
    }

    /// Stacks `blocks` vertically (same column count).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] on empty input or column-count mismatch.
    pub fn vstack(blocks: &[&Matrix]) -> Result<Matrix> {
        if blocks.is_empty() {
            return Err(Error::InvalidData("vstack of zero blocks".into()));
        }
        let cols = blocks[0].cols;
        if blocks.iter().any(|b| b.cols != cols) {
            return Err(Error::InvalidData("vstack column mismatch".into()));
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for b in blocks {
            out.set_block(r0, 0, b)?;
            r0 += b.rows;
        }
        Ok(out)
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a_ij = self.data[i * self.cols + j];
                if a_ij == 0.0 {
                    continue;
                }
                for p in 0..rhs.rows {
                    for q in 0..rhs.cols {
                        out.data[(i * rhs.rows + p) * out.cols + (j * rhs.cols + q)] =
                            a_ij * rhs.data[p * rhs.cols + q];
                    }
                }
            }
        }
        out
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Stacks the columns of the matrix into a single column vector
    /// (the `vec(·)` operator).
    pub fn vectorize(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            for i in 0..self.rows {
                data.push(self.data[i * self.cols + j]);
            }
        }
        Matrix {
            rows: self.rows * self.cols,
            cols: 1,
            data,
        }
    }

    /// Inverse of `vec`: reshapes an `rc × 1` vector into `r × c`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidData`] if the vector length is not `r * c`.
    pub fn from_vectorized(v: &Matrix, r: usize, c: usize) -> Result<Matrix> {
        if v.cols != 1 || v.rows != r * c {
            return Err(Error::InvalidData(format!(
                "cannot reshape {}x{} into {r}x{c}",
                v.rows, v.cols
            )));
        }
        let mut out = Matrix::zeros(r, c);
        for j in 0..c {
            for i in 0..r {
                out.data[i * c + j] = v.data[j * r + i];
            }
        }
        Ok(out)
    }

    /// Symmetrises the matrix in place: `(A + Aᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize of a non-square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self.data[i * self.cols + j] + self.data[j * self.cols + i]);
                self.data[i * self.cols + j] = avg;
                self.data[j * self.cols + i] = avg;
            }
        }
    }

    /// Largest absolute entry (`max |a_ij|`); zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Checks entry-wise closeness: `|a_ij - b_ij| <= atol + rtol * |b_ij|`.
    pub fn approx_eq(&self, rhs: &Matrix, atol: f64, rtol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| (a - b).abs() <= atol + rtol * b.abs())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.6e}", self.data[i * self.cols + j])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.6}", self.data[i * self.cols + j])?;
            }
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $delegate:ident) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                self.$delegate(rhs).expect(concat!(
                    "shape mismatch in `",
                    stringify!($method),
                    "`; use `",
                    stringify!($delegate),
                    "` for a fallible version"
                ))
            }
        }
        impl $trait<Matrix> for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Matrix> for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                (&self).$method(rhs)
            }
        }
        impl $trait<Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                self.$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_mat);
impl_binop!(Sub, sub, sub_mat);
impl_binop!(Mul, mul, matmul);

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Mul<&Matrix> for f64 {
    type Output = Matrix;
    fn mul(self, m: &Matrix) -> Matrix {
        m.scale(self)
    }
}

impl Mul<Matrix> for f64 {
    type Output = Matrix;
    fn mul(self, m: Matrix) -> Matrix {
        m.scale(self)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Neg for Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in +=");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in -=");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, Error::InvalidData(_)));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(Error::DimensionMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i * 7 + j * 13) % 5) as f64 - 2.0 + 0.1 * i as f64);
        let b = Matrix::from_fn(3, 5, |i, j| 1.0 / (1.0 + (i + 2 * j) as f64));
        let expected = a.matmul(&b).unwrap();
        let mut out = Matrix::zeros(4, 5);
        // Pre-poison to prove the buffer is fully overwritten.
        out.as_mut_slice().fill(f64::NAN);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, expected);
        // Accumulating variant adds on top (accumulation interleaves with
        // the existing contents, so only approximately 2x).
        a.matmul_add_into(&b, &mut out).unwrap();
        assert!(out.approx_eq(&expected.scale(2.0), 1e-14, 1e-14));
        // Shape errors on both inner dimension and output shape.
        assert!(a.matmul_into(&Matrix::zeros(4, 4), &mut out).is_err());
        let mut bad = Matrix::zeros(2, 2);
        assert!(a.matmul_into(&b, &mut bad).is_err());
    }

    #[test]
    fn small_kernel_dispatch_matches_generic_bitwise() {
        // A square product with n <= 8 dispatches to the fixed-size kernel.
        // The same output columns computed inside a rectangular product take
        // the generic loop (rhs not square), with an identical per-entry
        // accumulation sequence — so the two must agree bit for bit.
        for n in 1..=9usize {
            let a = Matrix::from_fn(n, n, |i, j| {
                if (i * n + j) % 4 == 0 {
                    0.0
                } else {
                    ((i * 7 + j * 3) % 11) as f64 / 7.0 - 0.6
                }
            });
            let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 13) % 17) as f64 / 5.0 - 1.4);
            let square = a.matmul(&b).unwrap();
            let wide = Matrix::hstack(&[&b, &Matrix::zeros(n, 1)]).unwrap();
            let padded = a.matmul(&wide).unwrap();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        square[(i, j)].to_bits(),
                        padded[(i, j)].to_bits(),
                        "matmul differs at n={n} ({i},{j})"
                    );
                }
            }
            // Vector kernel vs the generic product against an n×1 column.
            let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.3 - 0.7).collect();
            let col = a.matmul(&Matrix::col_vec(&x)).unwrap();
            let mut out = vec![f64::NAN; n];
            a.mul_vec_into(&x, &mut out).unwrap();
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(
                    o.to_bits(),
                    col.as_slice()[i].to_bits(),
                    "mul_vec differs at n={n} ({i})"
                );
            }
        }
    }

    #[test]
    fn mul_vec_into_matches_matmul_column() {
        let a = Matrix::from_fn(3, 4, |i, j| if (i + j) % 3 == 0 { 0.0 } else { (i + j) as f64 });
        let x = [1.5, -2.0, 0.25, 3.0];
        let expected = a.matmul(&Matrix::col_vec(&x)).unwrap();
        let mut out = [f64::NAN; 3];
        a.mul_vec_into(&x, &mut out).unwrap();
        assert_eq!(&out[..], expected.as_slice());
        a.mul_vec_acc_into(&x, &mut out).unwrap();
        assert_eq!(&out[..], expected.scale(2.0).as_slice());
        assert!(a.mul_vec_into(&x[..3], &mut out).is_err());
        assert!(a.mul_vec_into(&x, &mut out[..2]).is_err());
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 - 2.5);
        let expected = a.scale(-0.75);
        let mut b = a.clone();
        b.scale_in_place(-0.75);
        assert_eq!(b, expected);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn operators_match_methods() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        assert_eq!(&a + &b, a.add_mat(&b).unwrap());
        assert_eq!(&a - &b, a.sub_mat(&b).unwrap());
        assert_eq!(&a * &b, a.clone());
        assert_eq!(&a * 2.0, a.scale(2.0));
        assert_eq!(2.0 * &a, a.scale(2.0));
        assert_eq!(-&a, a.scale(-1.0));
    }

    #[test]
    fn block_ops() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let sub = a.submatrix(1, 2, 2, 2).unwrap();
        assert_eq!(sub, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]).unwrap());
        let mut z = Matrix::zeros(4, 4);
        z.set_block(2, 2, &sub).unwrap();
        assert_eq!(z[(2, 2)], 6.0);
        assert_eq!(z[(3, 3)], 11.0);
        assert!(z.set_block(3, 3, &sub).is_err());
        assert!(a.submatrix(3, 3, 2, 2).is_err());
    }

    #[test]
    fn stacking() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let h = Matrix::hstack(&[&a, &b]).unwrap();
        assert_eq!(h.shape(), (2, 3));
        let v = Matrix::vstack(&[&a, &Matrix::zeros(1, 2)]).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert!(Matrix::hstack(&[&a, &Matrix::zeros(3, 1)]).is_err());
        assert!(Matrix::vstack(&[&a, &Matrix::zeros(1, 3)]).is_err());
    }

    #[test]
    fn kron_identity_is_block_diag() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let k = Matrix::identity(2).kron(&a);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k[(0, 0)], 1.0);
        assert_eq!(k[(2, 2)], 1.0);
        assert_eq!(k[(0, 2)], 0.0);
        assert_eq!(k[(3, 2)], 3.0);
    }

    #[test]
    fn vectorize_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = a.vectorize();
        // column-major stacking
        assert_eq!(v.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
        let back = Matrix::from_vectorized(&v, 2, 2).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn symmetrize_and_max_abs() {
        let mut a = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, -5.0]]).unwrap();
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
        assert_eq!(a.max_abs(), 5.0);
    }

    #[test]
    fn approx_eq_tolerances() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-12;
        assert!(a.approx_eq(&b, 1e-10, 0.0));
        assert!(!a.approx_eq(&b, 1e-14, 0.0));
        assert!(!a.approx_eq(&Matrix::zeros(3, 3), 1.0, 1.0));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Matrix::identity(1);
        assert!(!format!("{a}").is_empty());
        assert!(format!("{a:?}").contains("Matrix 1x1"));
    }

    #[test]
    fn diag_and_vectors() {
        let d = Matrix::diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let c = Matrix::col_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        let r = Matrix::row_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
    }
}
