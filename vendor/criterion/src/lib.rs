//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! resolved; a path dependency substitutes this one. It implements a
//! plain wall-clock harness: each benchmark runs one warm-up iteration,
//! then `sample_size` timed iterations, and reports the mean time per
//! iteration on stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench: <group>/<id> ... <mean> ns/iter (n = <samples>)
//! ```
//!
//! There is no statistical analysis, outlier rejection or HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier of a parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/<function>/<parameter>` style id.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying only the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `samples` calls of `routine` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// The benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        run_one(None, &id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnOnce(&mut Bencher, &P),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, samples: usize, f: F) {
    let mut b = Bencher {
        samples,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.mean_ns.is_nan() {
        println!("bench: {label} ... no measurement (Bencher::iter never called)");
    } else {
        println!("bench: {label} ... {:.0} ns/iter (n = {samples})", b.mean_ns);
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident;
      config = $config:expr;
      targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("counter", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| calls += n);
        });
        group.finish();
        assert_eq!(calls, 3 * 7);
    }
}
