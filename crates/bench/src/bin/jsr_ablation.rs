//! Ablation of the stability-analysis machinery (not a paper table, but
//! quantifies the design choices called out in `DESIGN.md`): for the
//! Table-II matrix sets, how tight are
//!
//! 1. the paper-Eq.-12 brute-force bounds at increasing depth,
//! 2. plain Gripenberg (2-norm),
//! 3. Gripenberg in the optimised ellipsoidal norm, and
//! 4. the power-lifted refinement used by `stability::certify`?
//!
//! ```text
//! cargo run -p overrun-bench --bin jsr_ablation --release
//! ```

use overrun_control::lqr;
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_jsr::{
    bruteforce_bounds, gripenberg, refined_bounds, BruteforceOptions, GripenbergOptions,
    MatrixSet, RefineOptions,
};

fn main() {
    let plant = plants::pmsm();
    let t = 50e-6;
    println!("JSR method ablation on the Table-II lifted sets (PMSM, adaptive LQR)");
    println!(
        "{:<14} {:>3} | {:^23} | {:^23} | {:^23} | {:^23}",
        "config", "#H", "Eq.12 depth 6", "Gripenberg (2-norm)", "Gripenberg (ellipsoid)", "power-lifted refine"
    );
    for (factor, ns) in [(1.1, 2u32), (1.3, 2), (1.6, 2), (1.1, 5), (1.3, 5), (1.6, 5)] {
        let hset = match IntervalSet::from_timing(t, factor * t, ns) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("bad config: {e}");
                continue;
            }
        };
        let run = || -> Result<(), Box<dyn std::error::Error>> {
            let table = lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights())?;
            let meas = lifted::measurement_matrix(&plant, &table)?;
            let omegas = lifted::build_omega_set(&plant, &table, &meas)?;
            let set = MatrixSet::new(omegas)?;

            let eq12 = bruteforce_bounds(
                &set,
                &BruteforceOptions {
                    max_depth: 6,
                    ..Default::default()
                },
            )?;
            let plain = gripenberg(
                &set,
                &GripenbergOptions {
                    ellipsoid: false,
                    ..Default::default()
                },
            )?;
            let ell = gripenberg(&set, &GripenbergOptions::default())?;
            let refined = refined_bounds(
                &set,
                &RefineOptions {
                    decision_threshold: None,
                    ..Default::default()
                },
            )?;
            println!(
                "{factor:.1}T  Ts=T/{ns} {:>3} | {eq12} | {plain} | {ell} | {refined}",
                set.len(),
            );
            Ok(())
        };
        if let Err(e) = run() {
            eprintln!("{factor:.1}T Ts=T/{ns}: failed: {e}");
        }
    }
}
