//! Criterion benchmarks for the lazy-exact norm screening: the cheap O(n²)
//! certified bracket against the exact Schur-based evaluations it replaces,
//! and the end-to-end effect of screening on the Gripenberg and Eq.-12
//! searches over a Table-II lifted set.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use overrun_control::prelude::*;
use overrun_control::scenarios::pmsm_table2_weights;
use overrun_jsr::{
    bruteforce_bounds, gripenberg, BruteforceOptions, GripenbergOptions, MatrixSet,
};
use overrun_linalg::{cheap_spectral_bounds, norm_2, spectral_radius, Matrix};

/// The Table-II lifted matrix set for one configuration.
fn lifted_set(factor: f64, ns: u32) -> MatrixSet {
    let plant = plants::pmsm();
    let hset = IntervalSet::from_timing(50e-6, factor * 50e-6, ns).expect("valid grid");
    let table =
        lqr::design_adaptive(&plant, &hset, &pmsm_table2_weights()).expect("design");
    let meas = lifted::measurement_matrix(&plant, &table).expect("measurement");
    MatrixSet::new(lifted::build_omega_set(&plant, &table, &meas).expect("omegas"))
        .expect("matrix set")
}

/// A deterministic dense test matrix (no RNG needed).
fn dense(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let k = (i * n + j) as f64;
            m[(i, j)] = ((k * 0.734_21).sin() - 0.3) / n as f64;
        }
    }
    m
}

fn bench_bracket_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_eval");
    for n in [4usize, 8, 16] {
        let m = dense(n);
        group.bench_with_input(BenchmarkId::new("cheap_bracket", n), &m, |b, m| {
            b.iter(|| black_box(cheap_spectral_bounds(m)))
        });
        group.bench_with_input(BenchmarkId::new("exact_norm_2", n), &m, |b, m| {
            b.iter(|| black_box(norm_2(m)))
        });
        group.bench_with_input(BenchmarkId::new("exact_radius", n), &m, |b, m| {
            b.iter(|| black_box(spectral_radius(m).expect("radius")))
        });
    }
    group.finish();
}

fn bench_screened_searches(c: &mut Criterion) {
    let set = lifted_set(1.3, 2);
    let mut group = c.benchmark_group("norm_screening");
    group.sample_size(10);
    for screen in [false, true] {
        let label = if screen { "on" } else { "off" };
        group.bench_function(BenchmarkId::new("gripenberg", label), |b| {
            b.iter(|| {
                gripenberg(
                    &set,
                    &GripenbergOptions {
                        max_depth: 10,
                        screen,
                        ..Default::default()
                    },
                )
                .expect("bounds")
            })
        });
        group.bench_function(BenchmarkId::new("eq12_depth6", label), |b| {
            b.iter(|| {
                bruteforce_bounds(
                    &set,
                    &BruteforceOptions {
                        max_depth: 6,
                        screen,
                        ..Default::default()
                    },
                )
                .expect("bounds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bracket_vs_exact, bench_screened_searches);
criterion_main!(benches);
