//! Shared atomic counter bundles for instrumented libraries.
//!
//! A [`CounterBundle`] is a fixed set of named relaxed `AtomicU64`s that a
//! library can thread through a parallel computation (e.g. the screening
//! counters shared by Gripenberg workers) independently of whether the
//! `trace` feature is on. With the feature on, [`CounterBundle::emit`]
//! forwards the accumulated values to the active sink as counter deltas;
//! with it off, `emit` is a no-op and the bundle is just cheap shared
//! arithmetic.

use std::sync::atomic::{AtomicU64, Ordering};

/// `N` named monotonic counters safe to bump from any thread.
#[derive(Debug)]
pub struct CounterBundle<const N: usize> {
    names: [&'static str; N],
    values: [AtomicU64; N],
}

impl<const N: usize> CounterBundle<N> {
    /// Creates a zeroed bundle with one name per slot.
    pub fn new(names: [&'static str; N]) -> Self {
        Self {
            names,
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `delta` to slot `i` (relaxed; totals are read after joins).
    #[inline]
    pub fn add(&self, i: usize, delta: u64) {
        self.values[i].fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1 to slot `i`.
    #[inline]
    pub fn incr(&self, i: usize) {
        self.add(i, 1);
    }

    /// Current value of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.values[i].load(Ordering::Relaxed)
    }

    /// The name of slot `i`.
    pub fn name(&self, i: usize) -> &'static str {
        self.names[i]
    }

    /// Forwards every non-zero slot to the active trace sink as a counter
    /// delta. Intended for per-run bundles, called once when the run's
    /// results are snapshotted. No-op when the `trace` feature is off or
    /// no sink is installed.
    pub fn emit(&self) {
        #[cfg(feature = "trace")]
        for i in 0..N {
            let v = self.get(i);
            if v != 0 {
                crate::sink::__counter(self.names[i], v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let b = CounterBundle::new(["a", "b", "c"]);
        b.incr(0);
        b.add(2, 41);
        b.incr(2);
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 0);
        assert_eq!(b.get(2), 42);
        assert_eq!(b.name(1), "b");
        // emit() must be callable in both feature modes.
        b.emit();
    }
}
