//! # overrun-trace — zero-cost structured tracing for the overrun workspace
//!
//! Spans, monotonic counters, fixed-bucket histograms, and progress
//! events for the long-running pipelines (Gripenberg certification,
//! Monte Carlo cost evaluation, controller-table synthesis), compiled to
//! **zero code unless the `trace` cargo feature is enabled**.
//!
//! ```ignore
//! let _sp = overrun_trace::span!("jsr.depth", depth = d, frontier = frontier.len());
//! overrun_trace::counter!("mc.sequences", chunk_len as u64);
//! overrun_trace::histogram!("lqr.riccati_residual", residual);
//! overrun_trace::progress!("jsr.lb", lb);
//! ```
//!
//! With `trace` **off** (the default) every macro expands to an inert
//! expression — field arguments are captured by a never-called closure so
//! they type-check and stay "used", but nothing is evaluated and no trace
//! machinery exists in the binary. With `trace` **on**, events land in a
//! thread-local buffer that drains into a process-wide sink; the binary
//! that owns the run calls [`install`] with a [`Clock`] before the work
//! and [`finish`] after it to obtain the [`Trace`] (JSONL export, span
//! tree, counter totals).
//!
//! ## Determinism
//!
//! The certified numeric crates must not read wall clocks (`overrun-lint`
//! bans `Instant` there). This crate keeps them compliant: instrumented
//! code only names the macros; time enters solely through the injected
//! [`Clock`] owned by the binary. The default [`NoopClock`] stamps every
//! event `0`, giving byte-reproducible traces in tests. Enabling tracing
//! never changes numeric results — instrumentation only observes.
//!
//! ## Threads
//!
//! Events buffer per thread and flush on a size threshold, on thread
//! exit, and via [`flush_thread`] — `overrun-par` calls the latter as
//! each pooled worker finishes, so worker-side counters survive the join
//! while results remain bit-identical at any thread count. Install the
//! sink before spawning workers and join them before [`finish`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod counter;
mod event;
mod json;
mod report;
mod sink;

#[cfg(feature = "trace")]
pub use clock::MonotonicClock;
pub use clock::{Clock, NoopClock};
pub use counter::CounterBundle;
pub use event::{Event, Hist, Name, HIST_BUCKETS};
pub use report::{SpanBalance, SpanNode, Trace};
pub use sink::{finish, flush_thread, install, is_active, SpanGuard};

#[cfg(feature = "trace")]
#[doc(hidden)]
pub use sink::{__counter, __histogram, __progress, __span_open};

/// Opens a span; dropping the returned guard closes it.
///
/// `span!("name")` or `span!("name", key = expr, ...)` — field values are
/// converted with `as f64`. Bind the result: `let _sp = span!("phase");`.
/// Field expressions must be side-effect free: with the `trace` feature
/// off they are captured, never evaluated.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::__span_open($name, &[$((stringify!($key), ($value) as f64)),*])
    };
}

/// Inert expansion: captures the field expressions without evaluating
/// them and yields a no-op guard.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        $(let _ = || ($value);)*
        $crate::SpanGuard::noop()
    }};
}

/// Adds `delta` (a `u64`) to the named monotonic counter.
///
/// Batch at natural boundaries (per chunk, per depth) rather than per
/// iteration; the delta expression must be side-effect free.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr $(,)?) => {
        $crate::__counter($name, $delta)
    };
}

/// Inert expansion: captures the delta expression without evaluating it.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! counter {
    ($name:literal, $delta:expr $(,)?) => {{
        let _ = || ($delta);
    }};
}

/// Records one sample into the named log-scale histogram.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr $(,)?) => {
        $crate::__histogram($name, ($value) as f64)
    };
}

/// Inert expansion: captures the sample expression without evaluating it.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr $(,)?) => {{
        let _ = || ($value);
    }};
}

/// Records a time-stamped progress observation (best bound so far,
/// residual, ...). The aggregator keeps the latest value per name.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! progress {
    ($name:literal, $value:expr $(,)?) => {
        $crate::__progress($name, ($value) as f64)
    };
}

/// Inert expansion: captures the value expression without evaluating it.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! progress {
    ($name:literal, $value:expr $(,)?) => {{
        let _ = || ($value);
    }};
}

#[cfg(test)]
mod macro_tests {
    #[test]
    fn macros_expand_in_both_feature_modes() {
        let n = 3usize;
        let _sp = crate::span!("test.span", items = n, fixed = 2.5);
        crate::counter!("test.counter", n as u64);
        crate::histogram!("test.hist", 0.125);
        crate::progress!("test.progress", 1.0 + n as f64);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn feature_off_macros_do_not_evaluate_arguments() {
        fn boom() -> f64 {
            // Will never run: inert macros only capture their arguments.
            unreachable!("argument was evaluated with trace off")
        }
        let _sp = crate::span!("test.span", v = boom());
        crate::counter!("test.counter", boom() as u64);
        crate::histogram!("test.hist", boom());
        crate::progress!("test.progress", boom());
    }
}
