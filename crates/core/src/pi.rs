//! Adaptive PI controller design (paper Eq. 7).
//!
//! The PI controller — "more than 90% of all industrial controllers" —
//! has one mode per interval `h ∈ H`:
//!
//! ```text
//! z[k+1] = z[k] + h_{k−1} · e[k]
//! u[k+1] = K̄P(h_{k−1}) e[k] + K̄I(h_{k−1}) z[k]
//! ```
//!
//! The integrator advances by the *actual* elapsed interval (forward Euler
//! over `h_{k−1}` rather than `T`), which is exactly the paper's
//! compensation of the previous job's overrun. Gains are tuned per interval
//! with a heuristic search (grid seed + Nelder–Mead polish), standing in
//! for the paper's "standard heuristic procedures".

use overrun_linalg::{spectral_radius, Matrix};

use crate::tuning::{nelder_mead, NelderMeadOptions};
use crate::{lifted, ContinuousSs, ControllerMode, ControllerTable, Error, IntervalSet, Result};

/// Builds the PI controller mode of paper Eq. (7) for interval `h`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for a non-positive interval.
///
/// # Example
///
/// ```
/// use overrun_control::pi;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let mode = pi::mode_for_gains(120.0, 200.0, 0.012)?;
/// assert_eq!(mode.state_dim(), 1);
/// # Ok(())
/// # }
/// ```
pub fn mode_for_gains(kp: f64, ki: f64, h: f64) -> Result<ControllerMode> {
    if !(h.is_finite() && h > 0.0) {
        return Err(Error::InvalidConfig(format!(
            "PI interval must be positive, got {h}"
        )));
    }
    ControllerMode::new(
        Matrix::identity(1),
        Matrix::from_rows(&[&[h]]).map_err(Error::Linalg)?,
        Matrix::from_rows(&[&[ki]]).map_err(Error::Linalg)?,
        Matrix::from_rows(&[&[kp]]).map_err(Error::Linalg)?,
    )
}

/// Hard ceiling on the spectral-radius margin used in tuning phase B.
const RHO_CEILING: f64 = 0.998;

/// Fraction of the available contraction headroom `1 − ρ_min` conceded to
/// performance tuning; the rest is kept as slack for the switching
/// (JSR) certificate.
const MARGIN_FACTOR: f64 = 0.15;

/// Closed-loop spectral radius of the PI gains `(kp, ki)` running the
/// constant-interval loop at `h` (`∞` when the mode cannot be built or the
/// eigenvalue solve fails) — the shared objective kernel of both tuning
/// phases.
fn closed_loop_rho(plant: &ContinuousSs, h: f64, kp: f64, ki: f64) -> f64 {
    match mode_for_gains(kp, ki, h) {
        Ok(mode) => match lifted::build_omega(plant, &mode, h, &plant.c) {
            Ok(omega) => spectral_radius(&omega).unwrap_or(f64::INFINITY),
            Err(_) => f64::INFINITY,
        },
        Err(_) => f64::INFINITY,
    }
}

/// Signed log-grid of candidate gain magnitudes shared by both tuning
/// phases.
const GAIN_GRID: [f64; 8] = [0.5, 2.0, 8.0, 30.0, 100.0, 300.0, 1000.0, 3000.0];

/// Scans the signed gain grid with an arbitrary objective, returning the
/// best `(value, kp, ki)` triple.
fn grid_scan<F: FnMut(f64, f64) -> f64>(mut objective: F) -> (f64, f64, f64) {
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for &kp_mag in &GAIN_GRID {
        for &ki_mag in &GAIN_GRID {
            for &sp in &[1.0, -1.0] {
                for &si in &[1.0, -1.0] {
                    let (kp, ki) = (sp * kp_mag, si * ki_mag);
                    let f = objective(kp, ki);
                    if f < best.0 {
                        best = (f, kp, ki);
                    }
                }
            }
        }
    }
    best
}

/// Smallest achievable constant-`h` closed-loop spectral radius for the PI
/// structure on this plant (signed log-grid seed + Nelder–Mead polish), and
/// the derived tuning margin.
fn contraction_margin(plant: &ContinuousSs, h: f64) -> Result<f64> {
    let _sp = overrun_trace::span!("pi.margin", h_us = h * 1e6);
    let seed = grid_scan(|kp, ki| closed_loop_rho(plant, h, kp, ki));
    if seed.0 >= 1.0 {
        return Err(Error::Design(format!(
            "no stabilising PI gains found for interval h = {h}"
        )));
    }
    let rho_opt = nelder_mead(
        |x| closed_loop_rho(plant, h, x[0], x[1]),
        &[seed.1, seed.2],
        &NelderMeadOptions {
            max_evals: 300,
            f_tol: 1e-10,
            initial_step: 0.3,
        },
    )?;
    overrun_trace::counter!("pi.margin_evals", rho_opt.evals as u64);
    let rho_min = rho_opt.f.min(seed.0);
    Ok((rho_min + MARGIN_FACTOR * (1.0 - rho_min)).min(RHO_CEILING))
}

/// Nominal closed-loop cost of a PI mode running at a *constant* interval
/// `h`: the step-response integral square error over `steps` jobs plus a
/// terminal penalty weighting the residual steady-state error, with an
/// infinite penalty for divergence. Used as the tuning objective.
fn nominal_step_cost(
    plant: &ContinuousSs,
    mode: &ControllerMode,
    h: f64,
    steps: usize,
) -> f64 {
    let Ok(d) = plant.discretize(h) else {
        return f64::INFINITY;
    };
    let mut x = Matrix::zeros(plant.state_dim(), 1);
    let mut z = Matrix::zeros(1, 1);
    let mut u_applied = Matrix::zeros(1, 1);
    let mut cost = 0.0;
    let mut e_val = 0.0;
    for _ in 0..steps {
        let Ok(y) = plant.c.matmul(&x) else {
            return f64::INFINITY;
        };
        e_val = 1.0 - y[(0, 0)];
        let e = Matrix::col_vec(&[e_val]);
        let Ok((z_new, u_new)) = mode.step(&z, &e) else {
            return f64::INFINITY;
        };
        z = z_new;
        cost += e_val * e_val;
        let Ok(x_next) = d.step(&x, &u_applied) else {
            return f64::INFINITY;
        };
        // The command computed by job k applies from the next release on.
        u_applied = u_new;
        if !x_next.is_finite() || x_next.max_abs() > 1e9 {
            return f64::INFINITY;
        }
        x = x_next;
    }
    // Terminal penalty: an O(steps) weight on the residual error makes a
    // biased proportional-only solution (which minimises the short-window
    // ISE) lose against true integral action.
    cost + steps as f64 * e_val * e_val
}

/// Tunes `(K̄P, K̄I)` for one interval in two phases:
///
/// 1. **Margin discovery** — a signed log-grid seed plus Nelder–Mead
///    minimisation of the constant-`h` closed-loop spectral radius, yielding
///    the smallest achievable `ρ_min` for the PI structure on this plant.
/// 2. **Performance tuning** — Nelder–Mead on the nominal step cost,
///    constrained (by penalty) to
///    `ρ < ρ_min + MARGIN_FACTOR·(1 − ρ_min)` with `MARGIN_FACTOR = 0.15`
///    (capped at 0.998), so the mode keeps contraction slack for the
///    switching-stability certificate without sacrificing tracking.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for non-SISO plants and
/// [`Error::Design`] when no stabilising gain pair exists on the search
/// grid (e.g. the plant is not PI-stabilisable at this interval).
pub fn tune_for_interval(plant: &ContinuousSs, h: f64) -> Result<(f64, f64)> {
    if plant.input_dim() != 1 || plant.output_dim() != 1 {
        return Err(Error::InvalidConfig(
            "PI design requires a SISO plant".into(),
        ));
    }
    let margin = contraction_margin(plant, h)?;
    tune_with_margin(plant, h, margin, None)
}

/// Phase-2 tuning: minimise the tracking cost at constant `h` subject (by
/// penalty) to `ρ(Ω(h)) < margin`. An optional seed skips the grid scan.
fn tune_with_margin(
    plant: &ContinuousSs,
    h: f64,
    margin: f64,
    seed: Option<(f64, f64)>,
) -> Result<(f64, f64)> {
    let _sp = overrun_trace::span!("pi.tune", h_us = h * 1e6);
    let steps = 400;
    let objective = |kp: f64, ki: f64| -> f64 {
        let rho = closed_loop_rho(plant, h, kp, ki);
        if rho >= margin {
            return 1e6 * rho.min(10.0);
        }
        match mode_for_gains(kp, ki, h) {
            Ok(mode) => nominal_step_cost(plant, &mode, h, steps),
            Err(_) => f64::INFINITY,
        }
    };
    let mut best = match seed {
        Some((kp, ki)) => (objective(kp, ki), kp, ki),
        None => (f64::INFINITY, 0.0, 0.0),
    };
    if seed.is_none() || !best.0.is_finite() || best.0 >= 1e6 {
        let grid_best = grid_scan(objective);
        if grid_best.0 < best.0 {
            best = grid_best;
        }
    }
    let result = nelder_mead(
        |x| objective(x[0], x[1]),
        &[best.1, best.2],
        &NelderMeadOptions {
            max_evals: 400,
            f_tol: 1e-9,
            initial_step: 0.25,
        },
    )?;
    overrun_trace::counter!("pi.nm_evals", result.evals as u64);
    if result.f >= 1e6 && best.0 >= 1e6 {
        return Err(Error::Design(format!(
            "no PI gains satisfy the contraction margin {margin:.4} at h = {h}"
        )));
    }
    if result.f < best.0 {
        Ok((result.x[0], result.x[1]))
    } else {
        Ok((best.1, best.2))
    }
}

/// Designs the **adaptive** PI table: one `(K̄P(h), K̄I(h))` pair per
/// interval, each with its integrator stepped by the matching `h`.
///
/// # Errors
///
/// Propagates [`tune_for_interval`] failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// assert_eq!(table.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn design_adaptive(plant: &ContinuousSs, hset: &IntervalSet) -> Result<ControllerTable> {
    if plant.input_dim() != 1 || plant.output_dim() != 1 {
        return Err(Error::InvalidConfig(
            "PI design requires a SISO plant".into(),
        ));
    }
    let _sp = overrun_trace::span!("table.pi", modes = hset.len());
    // One contraction margin for the whole schedule (computed at the
    // nominal interval): every mode keeps the same slack, so chained
    // refinement cannot drift toward the stability boundary. Each longer
    // interval is tuned seeded from its predecessor, yielding the smooth
    // gain schedule K̄(h) of the paper's Eq. (7).
    let intervals = hset.intervals();
    let margin = contraction_margin(plant, intervals[0])?;
    let mut gains = Vec::with_capacity(intervals.len());
    let (mut kp, mut ki) = tune_with_margin(plant, intervals[0], margin, None)?;
    gains.push((kp, ki));
    for &h in &intervals[1..] {
        let (kp_h, ki_h) = tune_with_margin(plant, h, margin, Some((kp, ki)))?;
        kp = kp_h;
        ki = ki_h;
        gains.push((kp, ki));
    }
    // The tuning chain above is inherently sequential (each interval's
    // gains seed the next), but the final mode construction is a pure
    // per-(h, gains) map and parallelises cleanly.
    let pairs: Vec<(f64, (f64, f64))> =
        intervals.iter().copied().zip(gains.iter().copied()).collect();
    let modes = overrun_par::try_parallel_map(&pairs, |_, &(h, (kp, ki))| {
        mode_for_gains(kp, ki, h)
    })?;
    ControllerTable::new(modes, hset.clone())
}

/// Designs a **fixed** PI table: gains tuned for a single design interval
/// `h_design` (the paper's "as if the control period was given — either `T`
/// or `Rmax`"), replicated over every interval in `H`. The integrator also
/// steps by `h_design` regardless of the actual elapsed time — that is
/// precisely the inconsistency the adaptive design removes.
///
/// # Errors
///
/// Propagates [`tune_for_interval`] failures.
pub fn design_fixed(
    plant: &ContinuousSs,
    hset: &IntervalSet,
    h_design: f64,
) -> Result<ControllerTable> {
    let (kp, ki) = tune_for_interval(plant, h_design)?;
    let mode = mode_for_gains(kp, ki, h_design)?;
    ControllerTable::fixed(mode, hset.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    #[test]
    fn mode_matches_eq7_structure() {
        let m = mode_for_gains(2.0, 3.0, 0.012).unwrap();
        assert_eq!(m.ac, Matrix::identity(1));
        assert_eq!(m.bc[(0, 0)], 0.012);
        assert_eq!(m.cc[(0, 0)], 3.0);
        assert_eq!(m.dc[(0, 0)], 2.0);
        assert!(mode_for_gains(1.0, 1.0, 0.0).is_err());
        assert!(mode_for_gains(1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn tuned_gains_stabilize_unstable_plant() {
        let plant = plants::unstable_second_order();
        let (kp, ki) = tune_for_interval(&plant, 0.010).unwrap();
        let mode = mode_for_gains(kp, ki, 0.010).unwrap();
        let omega = lifted::build_omega(&plant, &mode, 0.010, &plant.c).unwrap();
        let rho = spectral_radius(&omega).unwrap();
        assert!(rho < 1.0, "ρ = {rho} with gains ({kp}, {ki})");
    }

    #[test]
    fn adaptive_design_covers_all_intervals() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.016, 2).unwrap(); // {10,15,20} ms
        let table = design_adaptive(&plant, &hset).unwrap();
        assert_eq!(table.len(), 3);
        // Each mode must stabilise its own constant-interval loop.
        for (i, &h) in hset.intervals().iter().enumerate() {
            let omega = lifted::build_omega(&plant, table.mode(i), h, &plant.c).unwrap();
            assert!(
                spectral_radius(&omega).unwrap() < 1.0,
                "mode {i} unstable at its own interval"
            );
        }
        // Integrator steps differ across modes (they encode h).
        assert!(table.mode(0).bc[(0, 0)] < table.mode(2).bc[(0, 0)]);
    }

    #[test]
    fn fixed_design_replicates_one_mode() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = design_fixed(&plant, &hset, 0.010).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.mode(0), table.mode(1));
        assert_eq!(table.mode(0).bc[(0, 0)], 0.010);
    }

    #[test]
    fn pi_rejects_mimo_plants() {
        let plant = plants::pmsm();
        assert!(tune_for_interval(&plant, 0.001).is_err());
    }

    #[test]
    fn stable_plant_also_tunable() {
        let plant = plants::dc_motor();
        let (kp, ki) = tune_for_interval(&plant, 0.05).unwrap();
        let mode = mode_for_gains(kp, ki, 0.05).unwrap();
        let omega = lifted::build_omega(&plant, &mode, 0.05, &plant.c).unwrap();
        assert!(spectral_radius(&omega).unwrap() < 1.0);
    }
}
