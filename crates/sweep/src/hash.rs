//! Content hashing of certification inputs.
//!
//! Scenario keys are 128-bit FNV-1a digests of a canonical byte stream:
//! every `f64` enters as its exact IEEE-754 bit pattern (little-endian), so
//! two scenarios collide exactly when their inputs are bit-identical — the
//! same discipline that makes the certified bounds reproducible makes the
//! cache address reproducible. No external hash crate is involved; FNV-1a
//! over `u128` is a dozen lines of `std`.
//!
//! Every stream is framed: each field is preceded by a short ASCII tag and
//! every variable-length section by its length, so distinct input shapes
//! cannot alias into the same byte sequence.

use overrun_linalg::Matrix;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash identifying one certification scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Renders the hash as 32 lowercase hex digits (the cache file stem).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the 32-hex-digit form produced by [`ContentHash::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Incremental canonical writer feeding the FNV-1a state.
#[derive(Debug, Clone)]
pub struct Canon {
    state: u128,
}

impl Default for Canon {
    fn default() -> Self {
        Canon { state: FNV_OFFSET }
    }
}

impl Canon {
    /// Creates a fresh canonical stream.
    pub fn new() -> Self {
        Canon::default()
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Writes a framing tag (field name / variant discriminator).
    pub fn tag(&mut self, tag: &str) -> &mut Self {
        self.str_field(tag);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str_field(&mut self, s: &str) -> &mut Self {
        self.u64_field(s.len() as u64);
        self.bytes(s.as_bytes());
        self
    }

    /// Writes a `u64` as 8 little-endian bytes.
    pub fn u64_field(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes());
        self
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn f64_field(&mut self, v: f64) -> &mut Self {
        self.u64_field(v.to_bits());
        self
    }

    /// Writes a matrix: shape followed by every entry's bit pattern in
    /// row-major order.
    pub fn matrix_field(&mut self, m: &Matrix) -> &mut Self {
        self.u64_field(m.rows() as u64);
        self.u64_field(m.cols() as u64);
        for &v in m.as_slice() {
            self.f64_field(v);
        }
        self
    }

    /// Finalises the stream into a [`ContentHash`].
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = Canon::new().tag("x").finish();
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
        assert_eq!(ContentHash::from_hex(&hex[..31]), None);
    }

    #[test]
    fn streams_are_order_and_frame_sensitive() {
        let ab = Canon::new().str_field("a").str_field("b").finish();
        let ba = Canon::new().str_field("b").str_field("a").finish();
        // Length framing: ["ab"] must differ from ["a", "b"].
        let joined = Canon::new().str_field("ab").finish();
        assert_ne!(ab, ba);
        assert_ne!(ab, joined);
    }

    #[test]
    fn f64_hash_is_bit_exact() {
        let a = Canon::new().f64_field(0.1).finish();
        let b = Canon::new().f64_field(0.1 + 1e-18).finish(); // same f64
        let c = Canon::new().f64_field(0.1 + 1e-17).finish(); // next f64
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Signed zero and NaN patterns are distinguished too.
        assert_ne!(
            Canon::new().f64_field(0.0).finish(),
            Canon::new().f64_field(-0.0).finish()
        );
    }

    #[test]
    fn matrix_shape_disambiguates() {
        let row = Matrix::row_vec(&[1.0, 2.0]);
        let col = Matrix::col_vec(&[1.0, 2.0]);
        let hr = Canon::new().matrix_field(&row).finish();
        let hc = Canon::new().matrix_field(&col).finish();
        assert_ne!(hr, hc);
    }

    #[test]
    fn determinism() {
        let h1 = Canon::new()
            .tag("t")
            .f64_field(1.5)
            .u64_field(7)
            .matrix_field(&Matrix::identity(2))
            .finish();
        let h2 = Canon::new()
            .tag("t")
            .f64_field(1.5)
            .u64_field(7)
            .matrix_field(&Matrix::identity(2))
            .finish();
        assert_eq!(h1, h2);
    }
}
