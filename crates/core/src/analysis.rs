//! Closed-form performance analysis of the lifted closed loop.
//!
//! For a *constant* interval (no overruns, or a worst-case constant overrun
//! pattern) the closed loop is LTI in the lifted state
//! `ξ(k+1) = Ω(h) ξ(k)`, so the infinite-horizon quadratic error cost has
//! the exact Lyapunov closed form
//!
//! ```text
//! Σ_k ‖e[k]‖² = Σ_k ξ(k)ᵀ S ξ(k) = ξ(0)ᵀ P ξ(0),   ΩᵀPΩ − P + S = 0
//! ```
//!
//! with `S = (C_m row-selector)ᵀ(C_m …)` picking the measurement error out
//! of the lifted state. This gives an analytical oracle for the simulator
//! (they must agree to machine precision on constant-mode runs) and an
//! instant, ensemble-free performance metric for design-space sweeps.

use overrun_linalg::{solve_discrete_lyapunov, Matrix};

use crate::{lifted, ContinuousSs, ControllerMode, ControllerTable, Error, Result};

/// Exact infinite-horizon error cost `Σ_k ‖e[k]‖²` of one controller mode
/// running at a constant interval `h`, from the initial plant state `x0`
/// (controller at rest, actuator at zero).
///
/// Matches [`crate::sim::ClosedLoopSim`] run with a constant mode sequence
/// in the limit of infinitely many jobs.
///
/// # Errors
///
/// * [`Error::InvalidConfig`] on dimension mismatches.
/// * [`Error::Design`] when the constant-`h` loop is not Schur stable (the
///   cost diverges).
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_control::analysis::constant_mode_cost;
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let x0 = Matrix::col_vec(&[1.0, 0.0]);
/// let exact = constant_mode_cost(&plant, table.mode(0), 0.010, &x0)?;
/// assert!(exact.is_finite() && exact > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn constant_mode_cost(
    plant: &ContinuousSs,
    mode: &ControllerMode,
    h: f64,
    x0: &Matrix,
) -> Result<f64> {
    let n = plant.state_dim();
    let r = plant.input_dim();
    let s = mode.state_dim();
    if x0.shape() != (n, 1) {
        return Err(Error::InvalidConfig(format!(
            "x0 must be {n}x1, got {}x{}",
            x0.rows(),
            x0.cols()
        )));
    }
    let measurement = if mode.error_dim() == plant.output_dim() {
        plant.c.clone()
    } else if mode.error_dim() == n {
        Matrix::identity(n)
    } else {
        return Err(Error::InvalidConfig(format!(
            "controller error dimension {} matches neither outputs nor states",
            mode.error_dim()
        )));
    };
    let omega = lifted::build_omega(plant, mode, h, &measurement)?;
    let dim = n + s + 2 * r;

    // Stage cost on the lifted state: e[k] = −C_m x[k] ⇒
    // S = [C_m, 0, 0, 0]ᵀ [C_m, 0, 0, 0].
    let mut selector = Matrix::zeros(measurement.rows(), dim);
    selector
        .set_block(0, 0, &measurement)
        .map_err(Error::Linalg)?;
    let stage = selector.transpose().matmul(&selector)?;

    // P solves Ωᵀ P Ω − P + S = 0 (so that P = Σ (Ωᵀ)ᵏ S Ωᵏ); exists iff
    // ρ(Ω) < 1.
    let p = solve_discrete_lyapunov(&omega, &stage).map_err(|e| {
        Error::Design(format!(
            "constant-interval loop at h = {h} is not Schur stable: {e}"
        ))
    })?;

    // Initial lifted state: [x0; z̃0; ũ0; u0] where job 0 computes
    // (z1, u1) from e0 = −C_m x0 and the actuator starts at zero.
    let e0 = measurement.matmul(x0)?.scale(-1.0);
    let (z1, u1) = mode.step(&Matrix::zeros(s, 1), &e0)?;
    let mut xi0 = Matrix::zeros(dim, 1);
    xi0.set_block(0, 0, x0).map_err(Error::Linalg)?;
    if s > 0 {
        xi0.set_block(n, 0, &z1).map_err(Error::Linalg)?;
    }
    xi0.set_block(n + s, 0, &u1).map_err(Error::Linalg)?;

    Ok(xi0.transpose().matmul(&p.matmul(&xi0)?)?[(0, 0)])
}

/// Exact per-mode costs of a whole table: entry `i` is the cost of
/// permanently running interval `h_i` with its own mode — the "constant
/// worst case" diagonal of the design space.
///
/// # Errors
///
/// Propagates [`constant_mode_cost`] failures.
pub fn per_mode_costs(
    plant: &ContinuousSs,
    table: &ControllerTable,
    x0: &Matrix,
) -> Result<Vec<f64>> {
    table
        .hset()
        .intervals()
        .iter()
        .enumerate()
        .map(|(i, &h)| constant_mode_cost(plant, table.mode(i), h, x0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ClosedLoopSim, SimScenario};
    use crate::{pi, plants, ControllerTable, IntervalSet};

    #[test]
    fn closed_form_matches_long_simulation() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let x0 = Matrix::col_vec(&[1.0, 0.0]);

        let exact = constant_mode_cost(&plant, table.mode(0), 0.010, &x0).unwrap();

        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(x0, 1);
        // Long horizon: the tail beyond 4000 jobs is negligible.
        let traj = sim.run(&scenario, &vec![0; 4000]).unwrap();
        assert!(!traj.diverged);
        let rel = (exact - traj.cost).abs() / exact;
        assert!(rel < 1e-3, "closed form {exact} vs simulated {}", traj.cost);
        assert!(exact >= traj.cost - 1e-9, "closed form must dominate any finite prefix");
    }

    #[test]
    fn per_mode_costs_cover_table() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.016, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let x0 = Matrix::col_vec(&[1.0, 0.0]);
        let costs = per_mode_costs(&plant, &table, &x0).unwrap();
        assert_eq!(costs.len(), hset.len());
        assert!(costs.iter().all(|c| c.is_finite() && *c > 0.0));
    }

    #[test]
    fn unstable_constant_loop_reported() {
        // Zero gains on an unstable plant: the Lyapunov equation must fail.
        let plant = plants::unstable_second_order();
        let zero = crate::ControllerMode::static_gain(Matrix::zeros(1, 1)).unwrap();
        let x0 = Matrix::col_vec(&[1.0, 0.0]);
        assert!(matches!(
            constant_mode_cost(&plant, &zero, 0.010, &x0),
            Err(Error::Design(_))
        ));
    }

    #[test]
    fn shape_validation() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let bad_x0 = Matrix::col_vec(&[1.0, 0.0, 0.0]);
        assert!(constant_mode_cost(&plant, table.mode(0), 0.010, &bad_x0).is_err());
        drop(ControllerTable::fixed(table.mode(0).clone(), hset));
    }

    #[test]
    fn zero_initial_state_zero_cost() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        let cost =
            constant_mode_cost(&plant, table.mode(0), 0.010, &Matrix::zeros(2, 1)).unwrap();
        assert!(cost.abs() < 1e-12);
    }

    #[test]
    fn lqr_state_feedback_mode_supported() {
        let plant = plants::pmsm();
        let w = crate::lqr::LqrWeights::identity(3, 2, 0.01);
        let mode = crate::lqr::mode_for_interval(&plant, 50e-6, &w).unwrap();
        let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);
        let cost = constant_mode_cost(&plant, &mode, 50e-6, &x0).unwrap();
        assert!(cost.is_finite() && cost > 0.0);
    }
}
