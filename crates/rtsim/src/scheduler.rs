//! Event-driven fixed-priority preemptive scheduler.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Error, OverrunPolicy, ReleaseTrace, Result, Span, Task, TaskId, Time};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Jobs are released while their release instant is strictly before the
    /// horizon; the run then drains the pending queue.
    pub horizon: Span,
    /// Seed for the per-run execution-time RNG (runs are reproducible).
    pub seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            horizon: Span::from_secs(1),
            seed: 0,
        }
    }
}

/// A completed job as recorded by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedJob {
    /// Task that owns this job.
    pub task: TaskId,
    /// Release instant.
    pub release: Time,
    /// Completion instant.
    pub finish: Time,
    /// Response time (`finish − release`).
    pub response: Span,
    /// Execution demand that was served.
    pub executed: Span,
}

/// Per-task aggregate statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskStats {
    /// Number of completed jobs.
    pub jobs: usize,
    /// Smallest observed response time.
    pub min_response: Span,
    /// Largest observed response time.
    pub max_response: Span,
    /// Mean response time in seconds.
    pub avg_response_secs: f64,
    /// Jobs whose response time exceeded the task period.
    pub overruns: usize,
}

/// Full result of a simulation run.
#[derive(Debug, Clone)]
pub struct ScheduleTrace {
    /// All completed jobs in completion order.
    pub jobs: Vec<CompletedJob>,
    task_count: usize,
}

impl ScheduleTrace {
    /// Response-time sequence of one task, in release order.
    pub fn response_times(&self, task: TaskId) -> Vec<Span> {
        let mut jobs: Vec<&CompletedJob> =
            self.jobs.iter().filter(|j| j.task == task).collect();
        jobs.sort_by_key(|j| j.release);
        jobs.iter().map(|j| j.response).collect()
    }

    /// Aggregate statistics for one task, or `None` when it completed no
    /// jobs.
    pub fn stats(&self, task: TaskId, period: Span) -> Option<TaskStats> {
        let responses = self.response_times(task);
        if responses.is_empty() {
            return None;
        }
        let min = responses.iter().copied().fold(responses[0], Span::min);
        let max = responses.iter().copied().fold(Span::ZERO, Span::max);
        let avg =
            responses.iter().map(|r| r.as_secs_f64()).sum::<f64>() / responses.len() as f64;
        let overruns = responses.iter().filter(|r| **r > period).count();
        Some(TaskStats {
            jobs: responses.len(),
            min_response: min,
            max_response: max,
            avg_response_secs: avg,
            overruns,
        })
    }

    /// Number of tasks that participated in the run.
    pub fn task_count(&self) -> usize {
        self.task_count
    }
}

/// Run state of one task.
struct TaskState {
    /// Next (pending) release instant, `None` once past the horizon or, for
    /// the adaptive task, while a job is still in flight.
    next_release: Option<Time>,
    /// Next nominal activation (the jitter-free grid point); release jitter
    /// is re-drawn per job relative to this, so it never accumulates.
    next_nominal: Time,
    /// Queue of released-but-unfinished jobs: (release, remaining,
    /// total-demand). Interferers may queue several; the adaptive control
    /// task never has more than one.
    queue: std::collections::VecDeque<(Time, Span, Span)>,
}

/// An event-driven, fixed-priority, preemptive single-core scheduler.
///
/// One task may be designated *adaptive* via
/// [`Scheduler::with_adaptive_task`]: its releases then follow the paper's
/// [`OverrunPolicy`] instead of strict periodicity — an overrunning job
/// suppresses the next release until the first sensor tick after its
/// completion.
///
/// # Example
///
/// ```
/// use overrun_rtsim::{ExecutionModel, Scheduler, SchedulerConfig, Span, Task};
///
/// # fn main() -> Result<(), overrun_rtsim::Error> {
/// let tasks = vec![
///     Task::new("interrupt", Span::from_millis(5), 0,
///               ExecutionModel::Constant(Span::from_millis(1))),
///     Task::new("control", Span::from_millis(10), 1,
///               ExecutionModel::Constant(Span::from_millis(4))),
/// ];
/// let sched = Scheduler::new(tasks)?;
/// let trace = sched.run(&SchedulerConfig { horizon: Span::from_millis(100), seed: 1 })?;
/// let ctl = sched.task_id("control").expect("task exists");
/// // Worst case: 4 ms own demand + 2 preemptions of 1 ms = 6 ms.
/// assert!(trace.response_times(ctl).iter().all(|r| *r <= Span::from_millis(6)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    tasks: Vec<Task>,
    adaptive: Option<(TaskId, OverrunPolicy)>,
}

impl Scheduler {
    /// Creates a scheduler over a validated task set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty set or any invalid
    /// task.
    pub fn new(tasks: Vec<Task>) -> Result<Self> {
        if tasks.is_empty() {
            return Err(Error::InvalidConfig("empty task set".into()));
        }
        for t in &tasks {
            t.validate()?;
        }
        Ok(Scheduler {
            tasks,
            adaptive: None,
        })
    }

    /// Designates `task` as the overrun-adaptive control task with
    /// oversampling factor `ns`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an unknown task id or an invalid
    /// grid (see [`OverrunPolicy::new`]).
    pub fn with_adaptive_task(mut self, task: TaskId, ns: u32) -> Result<Self> {
        let t = self
            .tasks
            .get(task.0)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown task id {task}")))?;
        // The paper assumes the first sensor sampling is synchronised with
        // the first control release; an offset would put every release off
        // the sensor grid (and the rebuilt release timeline in
        // `run_control_trace` starts at t = 0).
        if !t.offset.is_zero() {
            return Err(Error::InvalidConfig(format!(
                "adaptive task `{}` must have zero offset (sensor-grid sync)",
                t.name
            )));
        }
        if !matches!(t.arrival, crate::ArrivalModel::Periodic) {
            return Err(Error::InvalidConfig(format!(
                "adaptive task `{}` must use the periodic arrival model;                  its releases are governed by the overrun policy",
                t.name
            )));
        }
        let policy = OverrunPolicy::new(t.period, ns)?;
        self.adaptive = Some((task, policy));
        Ok(self)
    }

    /// Looks up a task id by name.
    pub fn task_id(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// The task definitions, in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Runs the simulation.
    ///
    /// Jobs are released while their release instant is before
    /// `config.horizon`; the pending queue is then drained so every recorded
    /// job is complete.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invariant`] if the run exceeds an internal event
    /// budget (a sign of runaway utilisation).
    pub fn run(&self, config: &SchedulerConfig) -> Result<ScheduleTrace> {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let horizon = Time::ZERO + config.horizon;
        let n = self.tasks.len();
        let mut states: Vec<TaskState> = self
            .tasks
            .iter()
            .map(|t| TaskState {
                next_release: Some(Time::ZERO + t.offset),
                next_nominal: Time::ZERO + t.offset,
                queue: std::collections::VecDeque::new(),
            })
            .collect();
        let mut jobs = Vec::new();
        let mut now = Time::ZERO;
        let mut events = 0usize;
        let event_budget = 100_000_000usize;

        loop {
            events += 1;
            if events > event_budget {
                return Err(Error::Invariant(
                    "event budget exceeded; task set appears overloaded beyond recovery".into(),
                ));
            }
            // Release every job due at or before `now`.
            for (i, st) in states.iter_mut().enumerate() {
                while let Some(rel) = st.next_release {
                    if rel > now || rel >= horizon {
                        break;
                    }
                    let demand = self.tasks[i].execution.sample(&mut rng);
                    st.queue.push_back((rel, demand, demand));
                    match &self.adaptive {
                        Some((id, _)) if id.0 == i => {
                            // Adaptive task: next release decided at completion.
                            st.next_release = None;
                        }
                        _ => {
                            // Advance the nominal grid by the (possibly
                            // random) separation, then add fresh jitter —
                            // jitter is relative to the grid and never
                            // accumulates.
                            let sep = self.tasks[i].next_separation(&mut rng);
                            let jitter = self.tasks[i].release_jitter(&mut rng);
                            st.next_nominal += sep;
                            st.next_release = Some(st.next_nominal + jitter);
                        }
                    }
                }
            }

            // Highest-priority pending job (priority, then release, then id).
            let running = (0..n)
                .filter(|i| !states[*i].queue.is_empty())
                .min_by_key(|i| {
                    let (rel, _, _) = states[*i].queue[0];
                    (self.tasks[*i].priority, rel, *i)
                });

            // Earliest strictly-future release event.
            let next_release = states
                .iter()
                .filter_map(|s| s.next_release)
                .filter(|r| *r < horizon)
                .min();

            match running {
                None => match next_release {
                    Some(r) => {
                        now = now.max(r);
                    }
                    None => break, // idle and nothing left to release
                },
                Some(i) => {
                    let (release, remaining, demand) = states[i].queue[0];
                    let completion = now + remaining;
                    // Run until completion or the next release (which may
                    // preempt), whichever comes first.
                    let until = match next_release {
                        Some(r) if r < completion && r > now => r,
                        _ => completion,
                    };
                    let ran = until.duration_since(now);
                    if until == completion {
                        states[i].queue.pop_front();
                        jobs.push(CompletedJob {
                            task: TaskId(i),
                            release,
                            finish: completion,
                            response: completion.duration_since(release),
                            executed: demand,
                        });
                        // Adaptive task: compute the next release now.
                        if let Some((id, policy)) = &self.adaptive {
                            if id.0 == i {
                                let response = completion.duration_since(release);
                                let interval = policy.next_interval(response)?;
                                let next = release + interval;
                                if next < horizon {
                                    states[i].next_release = Some(next);
                                }
                            }
                        }
                    } else {
                        states[i].queue[0] = (release, remaining - ran, demand);
                    }
                    now = until;
                }
            }
        }

        Ok(ScheduleTrace {
            jobs,
            task_count: n,
        })
    }

    /// Runs the simulation and extracts the adaptive control task's release
    /// trace (requires [`Scheduler::with_adaptive_task`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when no adaptive task is configured,
    /// plus any [`Scheduler::run`] error.
    pub fn run_control_trace(&self, config: &SchedulerConfig) -> Result<ReleaseTrace> {
        let (id, policy) = self
            .adaptive
            .as_ref()
            .ok_or_else(|| Error::InvalidConfig("no adaptive task configured".into()))?;
        let trace = self.run(config)?;
        let responses = trace.response_times(*id);
        policy.apply(&responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecutionModel;

    fn constant(ms: u64) -> ExecutionModel {
        ExecutionModel::Constant(Span::from_millis(ms))
    }

    #[test]
    fn single_task_runs_periodically() {
        let sched = Scheduler::new(vec![Task::new("t", Span::from_millis(10), 0, constant(3))])
            .unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(100),
                seed: 0,
            })
            .unwrap();
        let id = sched.task_id("t").unwrap();
        let rs = trace.response_times(id);
        assert_eq!(rs.len(), 10);
        assert!(rs.iter().all(|r| *r == Span::from_millis(3)));
        let stats = trace.stats(id, Span::from_millis(10)).unwrap();
        assert_eq!(stats.jobs, 10);
        assert_eq!(stats.overruns, 0);
        assert_eq!(stats.min_response, Span::from_millis(3));
        assert_eq!(stats.max_response, Span::from_millis(3));
        assert!((stats.avg_response_secs - 0.003).abs() < 1e-12);
    }

    #[test]
    fn blocking_shifts_low_priority_start() {
        // High-priority 1 ms every 5 ms; low-priority 4 ms every 10 ms.
        // t=0: hp runs [0,1), lp runs [1,5) and completes exactly as the
        // second hp job arrives ⇒ R_lp = 5 ms (hp demand 1 ms + own 4 ms).
        let sched = Scheduler::new(vec![
            Task::new("hp", Span::from_millis(5), 0, constant(1)),
            Task::new("lp", Span::from_millis(10), 1, constant(4)),
        ])
        .unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(50),
                seed: 0,
            })
            .unwrap();
        let lp = sched.task_id("lp").unwrap();
        let rs = trace.response_times(lp);
        assert!(!rs.is_empty());
        assert!(rs.iter().all(|r| *r == Span::from_millis(5)), "{rs:?}");
    }

    #[test]
    fn preemption_inflates_low_priority_response() {
        // hp: 2 ms every 5 ms; lp: 4 ms every 10 ms.
        // t=0: hp [0,2), lp [2,5), preempted by hp [5,7), lp [7,8) ⇒ R = 8.
        let sched = Scheduler::new(vec![
            Task::new("hp", Span::from_millis(5), 0, constant(2)),
            Task::new("lp", Span::from_millis(10), 1, constant(4)),
        ])
        .unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(50),
                seed: 0,
            })
            .unwrap();
        let lp = sched.task_id("lp").unwrap();
        let rs = trace.response_times(lp);
        assert!(!rs.is_empty());
        assert!(rs.iter().all(|r| *r == Span::from_millis(8)), "{rs:?}");
    }

    #[test]
    fn response_times_match_rta_bound() {
        let tasks = vec![
            Task::new("t0", Span::from_millis(4), 0, constant(1)),
            Task::new("t1", Span::from_millis(6), 1, constant(2)),
            Task::new("t2", Span::from_millis(20), 2, constant(3)),
        ];
        let wcrt = crate::response_time_analysis(&tasks).unwrap();
        let sched = Scheduler::new(tasks).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(600),
                seed: 0,
            })
            .unwrap();
        for (i, bound) in wcrt.iter().enumerate() {
            let rs = trace.response_times(TaskId(i));
            assert!(
                rs.iter().all(|r| *r <= *bound),
                "task {i}: observed {:?} > bound {bound}",
                rs.iter().max(),
            );
        }
        // The synchronous release (critical instant) is simulated at t = 0,
        // so the first job of the lowest-priority task attains its WCRT.
        let rs2 = trace.response_times(TaskId(2));
        assert_eq!(rs2[0], wcrt[2]);
    }

    #[test]
    fn adaptive_task_defers_release_after_overrun() {
        // Control task alone with a demand that exceeds its period on the
        // first job only (uniform degenerate via bimodal not needed — use a
        // high-priority interferer burst instead).
        let tasks = vec![
            Task::new("burst", Span::from_millis(100), 0, constant(8)),
            Task::new("ctl", Span::from_millis(10), 1, constant(4)),
        ];
        let sched = Scheduler::new(tasks).unwrap();
        let ctl = sched.task_id("ctl").unwrap();
        let sched = sched.with_adaptive_task(ctl, 5).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(100),
                seed: 0,
            })
            .unwrap();
        let rs = trace.response_times(ctl);
        // First job: preempted by 8 ms burst ⇒ R = 12 ms (> T = 10 ms).
        assert_eq!(rs[0], Span::from_millis(12));
        // Its successor must be released at ⌈12/2⌉·2 = 12 ms, not at 10 ms.
        let jobs: Vec<_> = trace.jobs.iter().filter(|j| j.task == ctl).collect();
        assert_eq!(jobs[1].release, Time::from_nanos(12_000_000));
        // Subsequent jobs are undisturbed.
        assert!(rs[1..].iter().all(|r| *r == Span::from_millis(4)));
    }

    #[test]
    fn run_control_trace_satisfies_invariants() {
        let tasks = vec![
            Task::new(
                "noise",
                Span::from_millis(7),
                0,
                ExecutionModel::Uniform {
                    min: Span::from_millis(1),
                    max: Span::from_millis(3),
                },
            ),
            Task::new("ctl", Span::from_millis(10), 1, constant(5)),
        ];
        let sched = Scheduler::new(tasks).unwrap();
        let ctl = sched.task_id("ctl").unwrap();
        let sched = sched.with_adaptive_task(ctl, 5).unwrap();
        let trace = sched
            .run_control_trace(&SchedulerConfig {
                horizon: Span::from_secs(2),
                seed: 3,
            })
            .unwrap();
        assert!(trace.jobs.len() > 100);
        trace.check_invariants().unwrap();
    }

    #[test]
    fn run_control_trace_requires_adaptive_task() {
        let sched = Scheduler::new(vec![Task::new("t", Span::from_millis(10), 0, constant(1))])
            .unwrap();
        assert!(sched.run_control_trace(&SchedulerConfig::default()).is_err());
    }

    #[test]
    fn empty_task_set_rejected() {
        assert!(Scheduler::new(vec![]).is_err());
    }

    #[test]
    fn unknown_adaptive_id_rejected() {
        let sched = Scheduler::new(vec![Task::new("t", Span::from_millis(10), 0, constant(1))])
            .unwrap();
        assert!(sched.with_adaptive_task(TaskId(5), 2).is_err());
    }

    #[test]
    fn deterministic_runs_same_seed() {
        let mk = || {
            let tasks = vec![
                Task::new(
                    "a",
                    Span::from_millis(5),
                    0,
                    ExecutionModel::Uniform {
                        min: Span::from_micros(500),
                        max: Span::from_millis(2),
                    },
                ),
                Task::new("b", Span::from_millis(10), 1, constant(3)),
            ];
            Scheduler::new(tasks).unwrap()
        };
        let cfg = SchedulerConfig {
            horizon: Span::from_millis(500),
            seed: 99,
        };
        let t1 = mk().run(&cfg).unwrap();
        let t2 = mk().run(&cfg).unwrap();
        assert_eq!(t1.jobs, t2.jobs);
        assert_eq!(t1.task_count(), 2);
    }

    #[test]
    fn offsets_shift_first_release() {
        let tasks = vec![Task::new("t", Span::from_millis(10), 0, constant(1))
            .with_offset(Span::from_millis(4))];
        let sched = Scheduler::new(tasks).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_millis(30),
                seed: 0,
            })
            .unwrap();
        assert_eq!(trace.jobs[0].release, Time::from_nanos(4_000_000));
    }
}

#[cfg(test)]
mod arrival_tests {
    use super::*;
    use crate::{ArrivalModel, ExecutionModel};

    #[test]
    fn jitter_does_not_accumulate() {
        // One jittered task: every release must lie in [kT, kT + J].
        let period = Span::from_millis(10);
        let jitter = Span::from_millis(2);
        let tasks = vec![Task::new(
            "j",
            period,
            0,
            ExecutionModel::Constant(Span::from_millis(1)),
        )
        .with_arrival(ArrivalModel::Jittered { jitter })];
        let sched = Scheduler::new(tasks).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_secs(2),
                seed: 5,
            })
            .unwrap();
        let id = sched.task_id("j").unwrap();
        let mut releases: Vec<Time> = trace
            .jobs
            .iter()
            .filter(|j| j.task == id)
            .map(|j| j.release)
            .collect();
        releases.sort();
        assert!(releases.len() > 150);
        for (k, rel) in releases.iter().enumerate() {
            let nominal = Time::ZERO + period * k as u64;
            assert!(*rel >= nominal, "release {k} before its grid point");
            assert!(
                *rel <= nominal + jitter,
                "release {k} drifted: {rel} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn sporadic_separations_respect_minimum() {
        let period = Span::from_millis(10);
        let tasks = vec![Task::new(
            "s",
            period,
            0,
            ExecutionModel::Constant(Span::from_millis(1)),
        )
        .with_arrival(ArrivalModel::Sporadic {
            max_slack: Span::from_millis(5),
        })];
        let sched = Scheduler::new(tasks).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_secs(2),
                seed: 9,
            })
            .unwrap();
        let id = sched.task_id("s").unwrap();
        let mut releases: Vec<Time> = trace
            .jobs
            .iter()
            .filter(|j| j.task == id)
            .map(|j| j.release)
            .collect();
        releases.sort();
        assert!(releases.len() > 100);
        let mut saw_slack = false;
        for w in releases.windows(2) {
            let sep = w[1].duration_since(w[0]);
            assert!(sep >= period, "separation {sep} below the minimum");
            assert!(sep <= period + Span::from_millis(5));
            if sep > period {
                saw_slack = true;
            }
        }
        assert!(saw_slack, "sporadic slack never drawn");
    }

    #[test]
    fn jittered_interference_still_bounded_by_rta_with_jitter_term() {
        // Jittered high-priority task: the control task's worst response is
        // bounded by RTA with the interferer's jitter folded in
        // (R = C + Σ ⌈(R + J)/T⌉ C). We check against the simulated worst.
        let tasks = vec![
            Task::new(
                "hp",
                Span::from_millis(5),
                0,
                ExecutionModel::Constant(Span::from_millis(1)),
            )
            .with_arrival(ArrivalModel::Jittered {
                jitter: Span::from_millis(1),
            }),
            Task::new(
                "ctl",
                Span::from_millis(10),
                1,
                ExecutionModel::Constant(Span::from_millis(4)),
            ),
        ];
        let sched = Scheduler::new(tasks).unwrap();
        let trace = sched
            .run(&SchedulerConfig {
                horizon: Span::from_secs(5),
                seed: 13,
            })
            .unwrap();
        let ctl = sched.task_id("ctl").unwrap();
        let worst = trace
            .response_times(ctl)
            .into_iter()
            .fold(Span::ZERO, Span::max);
        // Jitter-aware RTA: R = 4 + ⌈(R+1)/5⌉·1 → R = 6.
        assert!(worst <= Span::from_millis(6), "worst = {worst}");
    }
}

#[cfg(test)]
mod adaptive_validation_tests {
    use super::*;
    use crate::{ArrivalModel, ExecutionModel};

    #[test]
    fn adaptive_task_with_offset_rejected() {
        let tasks = vec![Task::new(
            "ctl",
            Span::from_millis(10),
            0,
            ExecutionModel::Constant(Span::from_millis(2)),
        )
        .with_offset(Span::from_millis(3))];
        let sched = Scheduler::new(tasks).unwrap();
        let id = sched.task_id("ctl").unwrap();
        assert!(sched.with_adaptive_task(id, 5).is_err());
    }

    #[test]
    fn adaptive_task_with_jitter_rejected() {
        let tasks = vec![Task::new(
            "ctl",
            Span::from_millis(10),
            0,
            ExecutionModel::Constant(Span::from_millis(2)),
        )
        .with_arrival(ArrivalModel::Jittered {
            jitter: Span::from_millis(1),
        })];
        let sched = Scheduler::new(tasks).unwrap();
        let id = sched.task_id("ctl").unwrap();
        assert!(sched.with_adaptive_task(id, 5).is_err());
    }

    #[test]
    fn zero_bcet_models_rejected_at_task_validation() {
        let t = Task::new(
            "z",
            Span::from_millis(10),
            0,
            ExecutionModel::Uniform {
                min: Span::ZERO,
                max: Span::from_millis(2),
            },
        );
        assert!(t.validate().is_err());
    }
}
