//! Property-based tests for the JSR machinery.

use overrun_jsr::{
    bruteforce_bounds, gripenberg, kronecker_sum_bounds, optimize_ellipsoid,
    BruteforceOptions, GripenbergOptions, MatrixSet,
};
use overrun_linalg::{spectral_radius, Matrix};
use proptest::prelude::*;

fn matrix(n: usize, mag: f64) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-mag..mag, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v).expect("sized buffer"))
}

fn matrix_pair(n: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (matrix(n, 1.0), matrix(n, 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a singleton set the JSR equals the spectral radius; every method
    /// must bracket it.
    #[test]
    fn singleton_bounds_bracket_spectral_radius(a in matrix(3, 2.0)) {
        let rho = spectral_radius(&a).unwrap();
        let set = MatrixSet::new(vec![a]).unwrap();
        let g = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        prop_assert!(g.lower <= rho + 1e-6 * rho.max(1.0));
        prop_assert!(rho <= g.upper + 1e-6 * rho.max(1.0));
        let bf = bruteforce_bounds(&set, &BruteforceOptions { max_depth: 5, ..Default::default() }).unwrap();
        prop_assert!(bf.lower <= rho + 1e-6 * rho.max(1.0));
        prop_assert!(rho <= bf.upper + 1e-6 * rho.max(1.0));
        let kr = kronecker_sum_bounds(&set).unwrap();
        prop_assert!((kr.lower - rho).abs() <= 1e-5 * rho.max(1.0));
    }

    /// All methods' intervals must pairwise overlap (they contain the same
    /// true JSR) on two-matrix sets.
    #[test]
    fn method_intervals_overlap((a, b) in matrix_pair(2)) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let g = gripenberg(&set, &GripenbergOptions::default()).unwrap();
        let bf = bruteforce_bounds(&set, &BruteforceOptions { max_depth: 8, ..Default::default() }).unwrap();
        let kr = kronecker_sum_bounds(&set).unwrap();
        prop_assert!(g.lower <= bf.upper + 1e-6, "g={g:?} bf={bf:?}");
        prop_assert!(bf.lower <= g.upper + 1e-6, "g={g:?} bf={bf:?}");
        prop_assert!(g.lower <= kr.upper + 1e-6, "g={g:?} kr={kr:?}");
        prop_assert!(kr.lower <= g.upper + 1e-6, "g={g:?} kr={kr:?}");
    }

    /// JSR homogeneity: scaling every matrix by c scales the bounds by c.
    #[test]
    fn scaling_homogeneity((a, b) in matrix_pair(2), c in 0.25..4.0f64) {
        let set1 = MatrixSet::new(vec![a.clone(), b.clone()]).unwrap();
        let set2 = MatrixSet::new(vec![a.scale(c), b.scale(c)]).unwrap();
        let b1 = bruteforce_bounds(&set1, &BruteforceOptions { max_depth: 6, ..Default::default() }).unwrap();
        let b2 = bruteforce_bounds(&set2, &BruteforceOptions { max_depth: 6, ..Default::default() }).unwrap();
        prop_assert!((b2.lower - c * b1.lower).abs() <= 1e-6 * (1.0 + c * b1.lower));
        prop_assert!((b2.upper - c * b1.upper).abs() <= 1e-6 * (1.0 + c * b1.upper));
    }

    /// The JSR is invariant under a common similarity; bounds computed on
    /// the transformed set must still bracket the original lower bound.
    #[test]
    fn similarity_invariance((a, b) in matrix_pair(2), d0 in 0.2..5.0f64, d1 in 0.2..5.0f64) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let scaled = set.similarity_scaled(&[d0, d1]).unwrap();
        let orig = bruteforce_bounds(&set, &BruteforceOptions { max_depth: 6, ..Default::default() }).unwrap();
        let tran = bruteforce_bounds(&scaled, &BruteforceOptions { max_depth: 6, ..Default::default() }).unwrap();
        // The spectral lower bounds are similarity-invariant.
        prop_assert!((orig.lower - tran.lower).abs() <= 1e-6 * (1.0 + orig.lower));
        // Upper bounds differ but both are ≥ the common lower bound.
        prop_assert!(tran.upper >= orig.lower - 1e-6);
        prop_assert!(orig.upper >= tran.lower - 1e-6);
    }

    /// The ellipsoid norm bound is a valid upper bound: never below the
    /// best spectral lower bound.
    #[test]
    fn ellipsoid_bound_is_upper_bound((a, b) in matrix_pair(2)) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let e = optimize_ellipsoid(&set, &Default::default()).unwrap();
        let bf = bruteforce_bounds(&set, &BruteforceOptions { max_depth: 8, ..Default::default() }).unwrap();
        prop_assert!(e.norm_bound >= bf.lower - 1e-6 * (1.0 + bf.lower),
            "ellipsoid {} < lower bound {}", e.norm_bound, bf.lower);
    }

    /// Gripenberg's lower bound is monotone in the budget.
    #[test]
    fn lower_bound_monotone_in_depth((a, b) in matrix_pair(2)) {
        let set = MatrixSet::new(vec![a, b]).unwrap();
        let shallow = gripenberg(&set, &GripenbergOptions { max_depth: 2, ellipsoid: false, ..Default::default() }).unwrap();
        let deep = gripenberg(&set, &GripenbergOptions { max_depth: 8, ellipsoid: false, ..Default::default() }).unwrap();
        prop_assert!(deep.lower >= shallow.lower - 1e-9);
    }
}

mod constrained_properties {
    use super::*;
    use overrun_jsr::{constrained_bounds, ConstrainedOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The constrained radius never exceeds the unconstrained one, for
        /// any pairwise restriction.
        #[test]
        fn constrained_below_unconstrained((a, b) in matrix_pair(2), forbid in 0usize..4) {
            let set = MatrixSet::new(vec![a, b]).unwrap();
            let (fp, fn_) = (forbid / 2, forbid % 2);
            let allowed = move |p: usize, n: usize| !(p == fp && n == fn_);
            let free = bruteforce_bounds(&set, &BruteforceOptions { max_depth: 8, ..Default::default() }).unwrap();
            let con = constrained_bounds(&set, &allowed, &ConstrainedOptions {
                max_depth: 8,
                ..Default::default()
            });
            // Some restrictions kill all transitions from a letter, but the
            // language stays non-empty for pairwise single-pair removals.
            let con = con.unwrap();
            prop_assert!(con.lower <= free.upper + 1e-6,
                "constrained lower {} above unconstrained upper {}", con.lower, free.upper);
        }
    }
}
