//! Integration of the real-time simulator with the control layer: traces
//! produced by the fixed-priority scheduler drive the closed-loop
//! simulation end-to-end (platform → timing → control → cost).

use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_linalg::Matrix;
use overrun_rtsim::{
    response_time_analysis, ExecutionModel, OverrunPolicy, Scheduler, SchedulerConfig, Span,
    Task,
};

/// Build a loaded platform whose control task sporadically overruns.
fn platform() -> Scheduler {
    let tasks = vec![
        Task::new(
            "burst",
            Span::from_millis(35),
            0,
            ExecutionModel::Bimodal {
                min: Span::from_millis(1),
                max: Span::from_millis(2),
                heavy_min: Span::from_millis(6),
                heavy_max: Span::from_millis(8),
                heavy_prob: 0.3,
            },
        ),
        Task::new(
            "control",
            Span::from_millis(10),
            1,
            ExecutionModel::Uniform {
                min: Span::from_millis(3),
                max: Span::from_millis(5),
            },
        ),
    ];
    let sched = Scheduler::new(tasks).unwrap();
    let ctl = sched.task_id("control").unwrap();
    sched.with_adaptive_task(ctl, 5).unwrap()
}

/// End-to-end: RTA bounds the response times, the designed `H` covers every
/// simulated interval, and the scheduler-driven closed loop stays bounded.
#[test]
fn scheduler_trace_drives_stable_control() {
    let sched = platform();
    let wcrt = response_time_analysis(sched.tasks()).unwrap();
    let rmax = wcrt[1];
    assert!(rmax > Span::from_millis(10), "scenario must overrun");

    // Design for the analytic worst case.
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, rmax.as_secs_f64(), 5).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let report = stability::certify(&plant, &table, &Default::default()).unwrap();
    assert!(
        !report.bounds.certifies_unstable(),
        "design must not be provably unstable: {:?}",
        report.bounds
    );

    // Run the platform and map the trace onto controller modes.
    let trace = sched
        .run_control_trace(&SchedulerConfig {
            horizon: Span::from_secs(5),
            seed: 8,
        })
        .unwrap();
    trace.check_invariants().unwrap();
    assert!(trace.overrun_count() > 0, "scenario must exercise overruns");

    let modes: Vec<usize> = trace
        .jobs
        .iter()
        .map(|j| {
            hset.index_of(j.interval.as_secs_f64())
                .expect("every simulated interval is in the designed H")
        })
        .collect();

    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
    let traj = sim.run(&scenario, &modes).unwrap();
    assert!(!traj.diverged);
    assert!(traj.cost.is_finite());
    // Regulation must actually regulate over 5 s of simulated time.
    let first = traj.errors[0].max_abs();
    let last = traj.errors.last().unwrap().max_abs();
    assert!(last < 0.2 * first, "first {first}, last {last}");
}

/// Every interval the scheduler produces must be in the `H` predicted from
/// the WCRT — the structural guarantee the stability analysis relies on.
#[test]
fn scheduler_intervals_stay_in_designed_h() {
    let sched = platform();
    let wcrt = response_time_analysis(sched.tasks()).unwrap();
    let policy = OverrunPolicy::new(Span::from_millis(10), 5).unwrap();
    let designed = policy.interval_set(wcrt[1]).unwrap();

    for seed in 0..5 {
        let trace = sched
            .run_control_trace(&SchedulerConfig {
                horizon: Span::from_secs(2),
                seed,
            })
            .unwrap();
        for job in &trace.jobs {
            assert!(
                designed.contains(&job.interval),
                "interval {} not covered by designed H (seed {seed})",
                job.interval
            );
        }
    }
}

/// The response times observed in simulation never exceed the RTA bound.
#[test]
fn observed_responses_below_rta_bound() {
    let sched = platform();
    let wcrt = response_time_analysis(sched.tasks()).unwrap();
    let trace = sched
        .run_control_trace(&SchedulerConfig {
            horizon: Span::from_secs(10),
            seed: 3,
        })
        .unwrap();
    let worst_seen = trace
        .jobs
        .iter()
        .map(|j| j.response)
        .fold(Span::ZERO, Span::max);
    assert!(
        worst_seen <= wcrt[1],
        "observed {worst_seen} exceeds analytic bound {}",
        wcrt[1]
    );
}

/// An under-designed `H` (assuming a too-small `Rmax`) is caught by the
/// deployment check instead of producing out-of-range modes.
#[test]
fn underdesigned_h_detected() {
    let sched = platform();
    let wcrt = response_time_analysis(sched.tasks()).unwrap();
    let policy = OverrunPolicy::new(Span::from_millis(10), 5).unwrap();
    // Designed for a (wrong) optimistic bound.
    let optimistic = Span::from_millis(11);
    assert!(wcrt[1] > optimistic);
    assert!(!policy.deployment_compatible(optimistic, wcrt[1]).unwrap());
}
