//! Matrix exponential and its integral (zero-order-hold discretisation).

use crate::norms::norm_1;
use crate::{Error, Matrix, Result};

/// Padé-13 coefficients for the matrix exponential (Higham 2005).
const PADE13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// θ₁₃ from Higham's scaling-and-squaring analysis: if `‖A‖₁ ≤ θ₁₃` the
/// Padé-13 approximant is accurate to double precision without scaling.
const THETA13: f64 = 5.371920351148152;

/// Computes the matrix exponential `e^A` using the scaling-and-squaring
/// method with a degree-13 Padé approximant (Higham, *SIAM J. Matrix Anal.
/// Appl.* 2005).
///
/// This is the workhorse of the plant discretisation `Φ(h) = e^{Ah}`
/// (paper Eq. 5).
///
/// # Errors
///
/// Returns [`Error::NotSquare`] for rectangular input,
/// [`Error::InvalidData`] for non-finite entries, and [`Error::Singular`]
/// in the (theoretically impossible for finite input) case that the Padé
/// denominator is singular.
///
/// # Example
///
/// ```
/// use overrun_linalg::{expm, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::diag(&[0.0, 1.0]);
/// let e = expm(&a)?;
/// assert!((e[(1, 1)] - 1.0_f64.exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "expm",
            dims: a.shape(),
        });
    }
    if !a.is_finite() {
        return Err(Error::InvalidData(
            "expm of a matrix with non-finite entries".into(),
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    let norm = norm_1(a);
    // Number of squarings so that ‖A / 2^s‖₁ ≤ θ₁₃.
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let a_scaled = a.scale(0.5_f64.powi(s as i32));

    let eye = Matrix::identity(n);
    let a2 = a_scaled.matmul(&a_scaled)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a2.matmul(&a4)?;

    let b = &PADE13;
    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    let u_inner1 = &a6 * b[13] + &a4 * b[11] + &a2 * b[9];
    let u_inner = a6.matmul(&u_inner1)? + &a6 * b[7] + &a4 * b[5] + &a2 * b[3] + &eye * b[1];
    let u = a_scaled.matmul(&u_inner)?;
    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    let v_inner = &a6 * b[12] + &a4 * b[10] + &a2 * b[8];
    let v = a6.matmul(&v_inner)? + &a6 * b[6] + &a4 * b[4] + &a2 * b[2] + &eye * b[0];

    // Solve (V - U) X = (V + U).
    let vmu = v.sub_mat(&u)?;
    let vpu = v.add_mat(&u)?;
    let mut x = vmu.solve(&vpu)?;

    for _ in 0..s {
        x = x.matmul(&x)?;
    }
    Ok(x)
}

/// Computes the zero-order-hold discretisation pair
/// `(Φ, Γ) = (e^{A h}, ∫₀ʰ e^{A s} ds · B)` in one shot via the augmented
/// exponential
///
/// ```text
/// exp( [A B; 0 0] · h ) = [Φ Γ; 0 I].
/// ```
///
/// This is exactly paper Eq. (5) and avoids a separate quadrature.
///
/// # Errors
///
/// Returns [`Error::NotSquare`] when `a` is not square,
/// [`Error::DimensionMismatch`] when `b.rows() != a.rows()`, and
/// [`Error::InvalidData`] for negative or non-finite `h`.
///
/// # Example
///
/// ```
/// use overrun_linalg::{expm_integral, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// // Double integrator: A = [0 1; 0 0], B = [0; 1]
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]])?;
/// let b = Matrix::col_vec(&[0.0, 1.0]);
/// let (phi, gamma) = expm_integral(&a, &b, 0.1)?;
/// assert!((phi[(0, 1)] - 0.1).abs() < 1e-14);
/// assert!((gamma[(0, 0)] - 0.005).abs() < 1e-14); // h²/2
/// # Ok(())
/// # }
/// ```
pub fn expm_integral(a: &Matrix, b: &Matrix, h: f64) -> Result<(Matrix, Matrix)> {
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "expm_integral",
            dims: a.shape(),
        });
    }
    if b.rows() != a.rows() {
        return Err(Error::DimensionMismatch {
            op: "expm_integral",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if !(h.is_finite() && h >= 0.0) {
        return Err(Error::InvalidData(format!(
            "discretisation interval must be finite and non-negative, got {h}"
        )));
    }
    let n = a.rows();
    let r = b.cols();
    let mut aug = Matrix::zeros(n + r, n + r);
    aug.set_block(0, 0, &a.scale(h))?;
    aug.set_block(0, n, &b.scale(h))?;
    let e = expm(&aug)?;
    let phi = e.submatrix(0, 0, n, n)?;
    let gamma = e.submatrix(0, n, n, r)?;
    Ok((phi, gamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral_radius;

    #[test]
    fn expm_zero_is_identity() {
        let e = expm(&Matrix::zeros(3, 3)).unwrap();
        assert!(e.approx_eq(&Matrix::identity(3), 1e-14, 0.0));
    }

    #[test]
    fn expm_diagonal() {
        let e = expm(&Matrix::diag(&[1.0, -2.0, 0.5])).unwrap();
        assert!((e[(0, 0)] - 1.0_f64.exp()).abs() < 1e-13);
        assert!((e[(1, 1)] - (-2.0_f64).exp()).abs() < 1e-14);
        assert!((e[(2, 2)] - 0.5_f64.exp()).abs() < 1e-14);
        assert_eq!(e[(0, 1)], 0.0);
    }

    #[test]
    fn expm_nilpotent_closed_form() {
        // A = [0 1; 0 0] ⇒ e^A = I + A exactly.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!(e.approx_eq(&(Matrix::identity(2) + &a), 1e-15, 0.0));
    }

    #[test]
    fn expm_rotation() {
        let th = 1.3_f64;
        let a = Matrix::from_rows(&[&[0.0, -th], &[th, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - th.cos()).abs() < 1e-13);
        assert!((e[(1, 0)] - th.sin()).abs() < 1e-13);
    }

    #[test]
    fn expm_inverse_property() {
        let a = Matrix::from_rows(&[&[0.3, 1.2, -0.5], &[0.1, -0.7, 0.4], &[-0.2, 0.0, 0.9]])
            .unwrap();
        let e = expm(&a).unwrap();
        let em = expm(&a.scale(-1.0)).unwrap();
        assert!((&e * &em).approx_eq(&Matrix::identity(3), 1e-12, 1e-12));
    }

    #[test]
    fn expm_semigroup_property() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-2.0, -0.5]]).unwrap();
        let e1 = expm(&a.scale(0.3)).unwrap();
        let e2 = expm(&a.scale(0.7)).unwrap();
        let e3 = expm(&a).unwrap();
        assert!((&e1 * &e2).approx_eq(&e3, 1e-12, 1e-12));
    }

    #[test]
    fn expm_large_norm_triggers_squaring() {
        let a = Matrix::diag(&[10.0, -10.0]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 10.0_f64.exp()).abs() < 1e-8 * 10.0_f64.exp());
        assert!((e[(1, 1)] - (-10.0_f64).exp()).abs() < 1e-16);
    }

    #[test]
    fn expm_det_is_exp_trace() {
        let a = Matrix::from_rows(&[&[0.2, 0.5], &[-0.3, -0.1]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e.det().unwrap() - a.trace().exp()).abs() < 1e-13);
    }

    #[test]
    fn expm_rejects_rectangular() {
        assert!(expm(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn zoh_double_integrator() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::col_vec(&[0.0, 1.0]);
        let h = 0.25;
        let (phi, gamma) = expm_integral(&a, &b, h).unwrap();
        // Closed form: Φ = [1 h; 0 1], Γ = [h²/2; h]
        assert!((phi[(0, 1)] - h).abs() < 1e-15);
        assert!((gamma[(0, 0)] - h * h / 2.0).abs() < 1e-15);
        assert!((gamma[(1, 0)] - h).abs() < 1e-15);
    }

    #[test]
    fn zoh_scalar_closed_form() {
        // ẋ = a x + b u ⇒ Φ = e^{ah}, Γ = (e^{ah} − 1) b / a
        let (a_val, b_val, h) = (-1.5, 2.0, 0.4);
        let a = Matrix::from_rows(&[&[a_val]]).unwrap();
        let b = Matrix::from_rows(&[&[b_val]]).unwrap();
        let (phi, gamma) = expm_integral(&a, &b, h).unwrap();
        assert!((phi[(0, 0)] - (a_val * h).exp()).abs() < 1e-14);
        let expected = ((a_val * h).exp() - 1.0) * b_val / a_val;
        assert!((gamma[(0, 0)] - expected).abs() < 1e-14);
    }

    #[test]
    fn zoh_zero_interval() {
        let a = Matrix::from_rows(&[&[1.0, 0.2], &[0.0, -1.0]]).unwrap();
        let b = Matrix::col_vec(&[1.0, 1.0]);
        let (phi, gamma) = expm_integral(&a, &b, 0.0).unwrap();
        assert!(phi.approx_eq(&Matrix::identity(2), 1e-15, 0.0));
        assert_eq!(gamma.max_abs(), 0.0);
    }

    #[test]
    fn zoh_interval_additivity() {
        // Φ(h1+h2) = Φ(h2) Φ(h1); Γ(h1+h2) = Φ(h2) Γ(h1) + Γ(h2)
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-4.0, -0.8]]).unwrap();
        let b = Matrix::col_vec(&[0.0, 1.0]);
        let (h1, h2) = (0.13, 0.29);
        let (phi1, g1) = expm_integral(&a, &b, h1).unwrap();
        let (phi2, g2) = expm_integral(&a, &b, h2).unwrap();
        let (phi12, g12) = expm_integral(&a, &b, h1 + h2).unwrap();
        assert!((&phi2 * &phi1).approx_eq(&phi12, 1e-12, 1e-12));
        assert!((&phi2 * &g1 + &g2).approx_eq(&g12, 1e-12, 1e-12));
    }

    #[test]
    fn zoh_rejects_bad_input() {
        let a = Matrix::identity(2);
        let b = Matrix::col_vec(&[1.0, 1.0]);
        assert!(expm_integral(&a, &Matrix::col_vec(&[1.0]), 0.1).is_err());
        assert!(expm_integral(&a, &b, -1.0).is_err());
        assert!(expm_integral(&a, &b, f64::NAN).is_err());
        assert!(expm_integral(&Matrix::zeros(2, 3), &b, 0.1).is_err());
    }

    #[test]
    fn hurwitz_discretization_is_schur_stable() {
        let a = Matrix::from_rows(&[&[-0.5, 2.0], &[-2.0, -0.5]]).unwrap();
        let phi = expm(&a.scale(0.7)).unwrap();
        assert!(spectral_radius(&phi).unwrap() < 1.0);
    }
}

#[cfg(test)]
mod nonfinite_tests {
    use super::*;

    #[test]
    fn nan_and_inf_inputs_rejected() {
        let mut m = Matrix::identity(2);
        m[(0, 0)] = f64::NAN;
        assert!(expm(&m).is_err());
        m[(0, 0)] = f64::INFINITY;
        assert!(expm(&m).is_err());
        let b = Matrix::col_vec(&[1.0, 1.0]);
        assert!(expm_integral(&m, &b, 0.1).is_err());
    }
}
