//! Golden-file regression tests: the CSV *data* sections of the paper
//! artifacts (`table1.csv`, `table2.csv`, `figure1.csv`) are pinned
//! byte-for-byte against checked-in snapshots in `tests/`.
//!
//! The snapshots deliberately exclude the bench binaries' `# run:` header
//! comment (timestamp-free determinism); everything else — the column
//! header and every formatted row — must match the smoke (`--quick`)
//! configuration exactly. After an intentional pipeline change, refresh
//! the snapshots with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p overrun-bench --test golden_csv
//! ```

use std::path::PathBuf;

use overrun_control::plants;
use overrun_control::scenarios::{pmsm_table2_weights, table1, table2, ExperimentConfig};
use overrun_linalg::Matrix;
use overrun_rtsim::{trace_to_csv, OverrunPolicy, Span};

/// The `--quick` smoke ensemble of the bench binaries — the CSV data these
/// goldens pin is exactly what `table1 --quick` / `table2 --quick` write
/// (minus the run-header comment).
fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        num_sequences: 500,
        jobs_per_sequence: 50,
        seed: 2021,
        ..ExperimentConfig::default()
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests")
        .join(name)
}

/// Compares `generated` against the checked-in snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN` is set. Mismatches report the first
/// differing line, not a wall of CSV.
fn check_golden(name: &str, generated: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, generated).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test -p overrun-bench --test golden_csv",
            path.display()
        )
    });
    if generated == want {
        return;
    }
    for (i, (g, w)) in generated.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "{name}: first difference at line {} (run UPDATE_GOLDEN=1 if intentional)",
            i + 1
        );
    }
    panic!(
        "{name}: line count differs — generated {} vs golden {} \
         (run UPDATE_GOLDEN=1 if intentional)",
        generated.lines().count(),
        want.lines().count()
    );
}

/// Table I data rows (`table1 --quick`), pinned.
#[test]
fn table1_csv_matches_golden() {
    let plant = plants::unstable_second_order();
    let rows = table1(&plant, 0.010, &quick_config()).expect("table1");
    let mut csv = String::from("rmax_factor,ns,jw_adaptive,jw_fixed_t,jw_fixed_rmax\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            r.rmax_factor, r.ns, r.jw_adaptive, r.jw_fixed_t, r.jw_fixed_rmax
        ));
    }
    check_golden("table1.csv", &csv);
}

/// Table II data rows (`table2 --quick`), pinned.
#[test]
fn table2_csv_matches_golden() {
    let plant = plants::pmsm();
    let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);
    let rows = table2(&plant, 50e-6, &pmsm_table2_weights(), &x0, &quick_config())
        .expect("table2");
    let mut csv = String::from(
        "rmax_factor,ns,jsr_lb,jsr_ub,cost_no_overruns,cost_adaptive,cost_fixed_t,cost_fixed_rmax,cost_fixed_period_rmax\n",
    );
    let opt = |v: &Option<f64>| v.map_or("unstable".to_string(), |c| c.to_string());
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.rmax_factor,
            r.ns,
            r.jsr_adaptive.lower,
            r.jsr_adaptive.upper,
            r.cost_no_overruns,
            r.cost_adaptive,
            opt(&r.cost_fixed_t),
            opt(&r.cost_fixed_rmax),
            r.cost_fixed_period_rmax
        ));
    }
    check_golden("table2.csv", &csv);
}

/// Figure 1 job trace (`figure1`), pinned: `Ns = 8`, job 2 overruns past
/// `2T` and job 3's release snaps to the next sensor tick.
#[test]
fn figure1_csv_matches_golden() {
    let t = Span::from_millis(8);
    let policy = OverrunPolicy::new(t, 8).expect("policy");
    let responses = [
        Span::from_millis(5),
        Span::from_micros(10_500),
        Span::from_millis(6),
        Span::from_millis(4),
    ];
    let trace = policy.apply(&responses).expect("trace");
    check_golden("figure1.csv", &trace_to_csv(&trace));
}
