//! The collected trace: JSONL export/import, per-phase span-tree
//! aggregation, and the human-readable summary rendered at process exit.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::event::{Event, Hist};

/// Everything one sink epoch recorded, in flush order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The raw event stream (per-thread buffers concatenated in the
    /// order they were flushed; span ids tie opens to closes).
    pub events: Vec<Event>,
}

/// Open/close accounting for a trace, used by the schema tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanBalance {
    /// Number of span-open events.
    pub opens: usize,
    /// Number of span-close events.
    pub closes: usize,
    /// Opens with no matching close (crashed / leaked guards).
    pub unmatched_opens: usize,
    /// Closes with no matching open (should never happen).
    pub unmatched_closes: usize,
}

/// One aggregated node of the span tree: all spans sharing a name path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name (one path component; the parent chain gives the rest).
    pub name: String,
    /// How many spans with this name path opened.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub total_ns: u64,
    /// Total minus the children's totals (clamped at zero).
    pub self_ns: u64,
    /// Calls that never closed (excluded from the timings).
    pub unclosed: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<SpanNode>,
}

#[derive(Default)]
struct AggNode {
    calls: u64,
    total_ns: u64,
    unclosed: u64,
    children: BTreeMap<String, AggNode>,
}

impl AggNode {
    fn into_span_node(self, name: String) -> SpanNode {
        let children: Vec<SpanNode> = self
            .children
            .into_iter()
            .map(|(n, agg)| agg.into_span_node(n))
            .collect();
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        SpanNode {
            name,
            calls: self.calls,
            total_ns: self.total_ns,
            self_ns: self.total_ns.saturating_sub(child_total),
            unclosed: self.unclosed,
            children,
        }
    }
}

impl Trace {
    /// Wraps a flushed event stream.
    pub fn from_events(events: Vec<Event>) -> Self {
        Self { events }
    }

    /// Writes the trace as JSONL, one event per line.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for ev in &self.events {
            writeln!(w, "{}", ev.to_jsonl())?;
        }
        Ok(())
    }

    /// The JSONL export as a single string.
    pub fn to_jsonl_string(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL export back into a trace. Blank lines are skipped;
    /// any malformed line fails the whole parse with its line number.
    pub fn parse_jsonl(src: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in src.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::from_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(ev);
        }
        Ok(Self { events })
    }

    /// Sum of all counter deltas, per counter name.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for ev in &self.events {
            if let Event::Counter { name, delta } = ev {
                *totals.entry(name.to_string()).or_insert(0u64) += delta;
            }
        }
        totals
    }

    /// All histogram snapshots merged per name.
    pub fn histogram_totals(&self) -> BTreeMap<String, Hist> {
        let mut totals: BTreeMap<String, Hist> = BTreeMap::new();
        for ev in &self.events {
            if let Event::Hist { name, hist } = ev {
                totals
                    .entry(name.to_string())
                    .or_default()
                    .merge(hist);
            }
        }
        totals
    }

    /// The latest progress observation per metric (by clock time, falling
    /// back to stream order for equal stamps).
    pub fn last_progress(&self) -> BTreeMap<String, f64> {
        let mut latest: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        for ev in &self.events {
            if let Event::Progress { name, value, t_ns } = ev {
                match latest.get(name.as_ref()) {
                    Some((t, _)) if *t > *t_ns => {}
                    _ => {
                        latest.insert(name.to_string(), (*t_ns, *value));
                    }
                }
            }
        }
        latest.into_iter().map(|(k, (_, v))| (k, v)).collect()
    }

    /// Open/close accounting across the stream.
    pub fn span_balance(&self) -> SpanBalance {
        let mut opens = 0usize;
        let mut closes = 0usize;
        let mut open_ids: BTreeMap<u64, bool> = BTreeMap::new(); // id -> closed
        let mut unmatched_closes = 0usize;
        for ev in &self.events {
            match ev {
                Event::SpanOpen { id, .. } => {
                    opens += 1;
                    open_ids.insert(*id, false);
                }
                Event::SpanClose { id, .. } => {
                    closes += 1;
                    match open_ids.get_mut(id) {
                        Some(closed) => *closed = true,
                        None => unmatched_closes += 1,
                    }
                }
                _ => {}
            }
        }
        let unmatched_opens = open_ids.values().filter(|&&closed| !closed).count();
        SpanBalance {
            opens,
            closes,
            unmatched_opens,
            unmatched_closes,
        }
    }

    /// True when every span open has exactly one close and vice versa.
    pub fn is_balanced(&self) -> bool {
        let b = self.span_balance();
        b.unmatched_opens == 0 && b.unmatched_closes == 0
    }

    /// Aggregates the span stream into a tree keyed by name path: all
    /// spans with the same name under the same parent path merge into one
    /// node with summed wall time and call counts.
    pub fn span_tree(&self) -> Vec<SpanNode> {
        // id -> (name, parent id, open time)
        let mut info: BTreeMap<u64, (&str, u64, u64)> = BTreeMap::new();
        let mut close_at: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in &self.events {
            match ev {
                Event::SpanOpen {
                    id,
                    parent,
                    name,
                    t_ns,
                    ..
                } => {
                    info.insert(*id, (name.as_ref(), *parent, *t_ns));
                }
                Event::SpanClose { id, t_ns } => {
                    close_at.insert(*id, *t_ns);
                }
                _ => {}
            }
        }
        let mut root = AggNode::default();
        let mut path: Vec<&str> = Vec::new();
        for (&id, &(name, parent, opened)) in &info {
            // Resolve the name path root→leaf by walking the parent chain.
            path.clear();
            path.push(name);
            let mut cursor = parent;
            let mut hops = 0usize;
            while cursor != 0 && hops < 64 {
                match info.get(&cursor) {
                    Some(&(pname, pparent, _)) => {
                        path.push(pname);
                        cursor = pparent;
                    }
                    None => break, // parent flushed from another epoch: treat as root
                }
                hops += 1;
            }
            path.reverse();
            let mut node = &mut root;
            for component in &path {
                node = node.children.entry((*component).to_string()).or_default();
            }
            node.calls += 1;
            match close_at.get(&id) {
                Some(&closed) => node.total_ns += closed.saturating_sub(opened),
                None => node.unclosed += 1,
            }
        }
        root.children
            .into_iter()
            .map(|(n, agg)| agg.into_span_node(n))
            .collect()
    }

    /// Renders the span tree, counters, histograms, and final progress
    /// values as an aligned text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let tree = self.span_tree();
        if !tree.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>11} {:>11}\n",
                "span", "calls", "total", "self"
            ));
            for node in &tree {
                render_node(&mut out, node, 0);
            }
        }
        let counters = self.counter_totals();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (name, total) in &counters {
                out.push_str(&format!("  {name:<42} {total:>20}\n"));
            }
        }
        let hists = self.histogram_totals();
        if !hists.is_empty() {
            out.push_str("histograms:\n");
            for (name, hist) in &hists {
                out.push_str(&format!(
                    "  {:<42} n={} min={:.3e} mean={:.3e} max={:.3e}\n",
                    name, hist.count, hist.min, hist.mean(), hist.max
                ));
            }
        }
        let progress = self.last_progress();
        if !progress.is_empty() {
            out.push_str("progress (final):\n");
            for (name, value) in &progress {
                out.push_str(&format!("  {name:<42} {value:>20.12}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }

    /// Flat summary metrics for merging into bench `--json` records:
    /// per-root span totals in milliseconds, counter totals, and final
    /// progress values.
    pub fn key_metrics(&self) -> Vec<(String, f64)> {
        let mut metrics = Vec::new();
        for node in self.span_tree() {
            metrics.push((
                format!("trace.span_ms.{}", node.name),
                node.total_ns as f64 / 1e6,
            ));
        }
        for (name, total) in self.counter_totals() {
            metrics.push((format!("trace.counter.{name}"), total as f64));
        }
        for (name, value) in self.last_progress() {
            metrics.push((format!("trace.progress.{name}"), value));
        }
        metrics
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let unclosed = if node.unclosed > 0 {
        format!("  ({} unclosed)", node.unclosed)
    } else {
        String::new()
    };
    out.push_str(&format!(
        "{:<44} {:>8} {:>11} {:>11}{}\n",
        label,
        node.calls,
        fmt_ns(node.total_ns),
        fmt_ns(node.self_ns),
        unclosed
    ));
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns_f < 1e3 {
        format!("{ns} ns")
    } else if ns_f < 1e6 {
        format!("{:.2} us", ns_f / 1e3)
    } else if ns_f < 1e9 {
        format!("{:.2} ms", ns_f / 1e6)
    } else {
        format!("{:.2} s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Name;

    fn open(id: u64, parent: u64, name: &'static str, t_ns: u64) -> Event {
        Event::SpanOpen {
            id,
            parent,
            name: Name::Borrowed(name),
            t_ns,
            fields: Vec::new(),
        }
    }

    fn close(id: u64, t_ns: u64) -> Event {
        Event::SpanClose { id, t_ns }
    }

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            open(1, 0, "root", 0),
            open(2, 1, "child", 10),
            close(2, 40),
            open(3, 1, "child", 50),
            close(3, 70),
            Event::Counter {
                name: Name::Borrowed("c.x"),
                delta: 5,
            },
            Event::Counter {
                name: Name::Borrowed("c.x"),
                delta: 7,
            },
            Event::Progress {
                name: Name::Borrowed("p.lb"),
                value: 1.5,
                t_ns: 20,
            },
            Event::Progress {
                name: Name::Borrowed("p.lb"),
                value: 1.75,
                t_ns: 60,
            },
            close(1, 100),
        ])
    }

    #[test]
    fn tree_aggregates_siblings_and_computes_self_time() {
        let tree = sample_trace().span_tree();
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.calls, 1);
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!(child.calls, 2);
        assert_eq!(child.total_ns, 30 + 20);
        assert_eq!(root.self_ns, 100 - 50);
    }

    #[test]
    fn balance_detects_leaks() {
        let tr = sample_trace();
        assert!(tr.is_balanced());
        let mut events = tr.events.clone();
        events.push(open(9, 0, "leak", 500));
        let leaky = Trace::from_events(events);
        let b = leaky.span_balance();
        assert_eq!(b.unmatched_opens, 1);
        assert!(!leaky.is_balanced());
    }

    #[test]
    fn totals_and_progress() {
        let tr = sample_trace();
        assert_eq!(tr.counter_totals().get("c.x"), Some(&12));
        let p = tr.last_progress();
        assert_eq!(p.get("p.lb"), Some(&1.75));
    }

    #[test]
    fn jsonl_string_round_trip_is_stable() -> Result<(), String> {
        let tr = sample_trace();
        let text = tr.to_jsonl_string();
        let back = Trace::parse_jsonl(&text)?;
        assert_eq!(back.to_jsonl_string(), text);
        assert_eq!(back.counter_totals(), tr.counter_totals());
        assert!(back.is_balanced());
        Ok(())
    }

    #[test]
    fn key_metrics_cover_spans_counters_progress() {
        let metrics = sample_trace().key_metrics();
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"trace.span_ms.root"));
        assert!(names.contains(&"trace.counter.c.x"));
        assert!(names.contains(&"trace.progress.p.lb"));
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = sample_trace().render();
        assert!(text.contains("root"));
        assert!(text.contains("counters:"));
        assert!(text.contains("progress (final):"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21 s");
    }
}
