// Fixture source: two unsafe blocks, one documented — exactly one firing.
pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid and aligned.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
