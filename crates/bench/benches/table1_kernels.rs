//! Criterion benchmarks for the Table-I kernels: PI design and the
//! worst-case simulation sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_linalg::Matrix;

fn bench_pi_design(c: &mut Criterion) {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).expect("grid");
    c.bench_function("pi_design_adaptive", |b| {
        b.iter(|| pi::design_adaptive(&plant, &hset).expect("design"))
    });
}

fn bench_closed_loop_sim(c: &mut Criterion) {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).expect("grid");
    let table = pi::design_adaptive(&plant, &hset).expect("design");
    let sim = ClosedLoopSim::new(&plant, &table).expect("sim");
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    let modes: Vec<usize> = (0..50).map(|k| usize::from(k % 7 == 0)).collect();
    c.bench_function("closed_loop_50_jobs", |b| {
        b.iter(|| sim.run(&scenario, &modes).expect("trajectory"))
    });
}

fn bench_worst_case_sweep(c: &mut Criterion) {
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).expect("grid");
    let table = pi::design_adaptive(&plant, &hset).expect("design");
    let sim = ClosedLoopSim::new(&plant, &table).expect("sim");
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    // 100 sequences = 1/500 of a full Table-I cell.
    c.bench_function("worst_case_100_sequences", |b| {
        b.iter(|| {
            evaluate_worst_case(
                &sim,
                &scenario,
                &WorstCaseOptions {
                    num_sequences: 100,
                    jobs_per_sequence: 50,
                    seed: 1,
                    rmin_fraction: 0.05,
                },
            )
            .expect("report")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pi_design, bench_closed_loop_sim, bench_worst_case_sweep
}
criterion_main!(benches);
