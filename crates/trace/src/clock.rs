//! Injectable time source for the trace sink.
//!
//! The certified numeric crates (`linalg`, `jsr`, `core`, `rtsim`) are
//! forbidden from reading wall clocks by the `overrun-lint` determinism
//! rule. Time therefore enters tracing only through a [`Clock`] owned by
//! the process that installs the sink — typically a bench binary — while
//! library code only ever invokes the macros, which never name a clock.

/// A monotonic nanosecond time source injected into the trace sink.
///
/// Implementations must be cheap and thread-safe; `now_ns` is called on
/// every span open/close and progress event while tracing is active.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds from an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// The default clock: always reports `0`.
///
/// Useful in tests and anywhere trace *structure* (spans, counters) is
/// wanted without timing, keeping output byte-for-byte reproducible.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopClock;

impl Clock for NoopClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

/// Monotonic wall clock anchored at construction time.
///
/// Only available with the `trace` feature, and intended to be
/// constructed exclusively by binaries (the bench harness); library
/// crates must not name it, keeping them clean under the determinism
/// lint.
#[cfg(feature = "trace")]
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

#[cfg(feature = "trace")]
impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: std::time::Instant::now(),
        }
    }
}

#[cfg(feature = "trace")]
impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "trace")]
impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_clock_reads_zero() {
        assert_eq!(NoopClock.now_ns(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
