//! Quickstart: design an overrun-adaptive controller, certify its stability
//! for every admissible overrun pattern, and simulate it under sporadic
//! overruns.
//!
//! ```text
//! cargo run -p overrun-control --example quickstart
//! ```
#![allow(clippy::print_stdout)] // examples exist to print

use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The plant: an open-loop unstable second-order system.
    let plant = plants::unstable_second_order();
    println!(
        "plant: {} states, Hurwitz = {}",
        plant.state_dim(),
        plant.is_hurwitz()?
    );

    // 2. Timing: control period T = 10 ms, worst-case response time
    //    Rmax = 1.3 T, sensors oversampled at Ts = T/5.
    //    The admissible inter-release intervals are H = {10, 12, 14} ms.
    let hset = IntervalSet::from_timing(0.010, 0.013, 5)?;
    println!(
        "H = {:?} (Ts = {} ms)",
        hset.intervals()
            .iter()
            .map(|h| h * 1e3)
            .collect::<Vec<_>>(),
        hset.sensor_period() * 1e3
    );

    // 3. Adaptive design: one PI mode per interval in H (paper Eq. 7).
    let table = pi::design_adaptive(&plant, &hset)?;
    println!("designed {} controller modes", table.len());

    // 4. Exact stability test: bound the joint spectral radius of the
    //    lifted closed-loop matrices {Omega(h) : h in H} (paper Sec. V).
    let report = stability::certify(&plant, &table, &Default::default())?;
    println!("JSR bounds = {}  =>  {}", report.bounds, report.verdict);

    // 5. Simulate a step response with sporadic worst-case overruns.
    let sim = ClosedLoopSim::new(&plant, &table)?;
    let scenario = SimScenario::step(plant.state_dim(), Matrix::col_vec(&[1.0]));
    let worst = evaluate_worst_case(
        &sim,
        &scenario,
        &WorstCaseOptions {
            num_sequences: 1000,
            jobs_per_sequence: 50,
            seed: 42,
            rmin_fraction: 0.05,
        },
    )?;
    println!(
        "worst-case cost over 1000 random 50-job sequences: {:.4} (mean {:.4}, {} diverged)",
        worst.worst_cost, worst.mean_cost, worst.diverged
    );
    Ok(())
}
