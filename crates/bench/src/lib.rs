//! Shared plumbing for the `overrun` benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! DATE 2021 paper (see `DESIGN.md` for the experiment index); this library
//! holds the small amount of shared argument-parsing and output logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

/// Command-line options shared by the experiment binaries.
///
/// Supported flags:
/// * `--sequences N` — random sequences per configuration (default: the
///   paper's 50 000),
/// * `--jobs N` — jobs per sequence (default 50),
/// * `--seed N` — RNG seed (default 2021),
/// * `--quick` — 500 sequences, for smoke runs,
/// * `--threads N` — worker threads (default: `OVERRUN_THREADS` env or all
///   cores; results are bit-identical for any value),
/// * `--out DIR` — directory for CSV output (default `bench_results`),
/// * `--json PATH` — append a machine-readable summary record to `PATH`
///   (JSON lines; the `BENCH_JSON` env var sets a default path; `-` writes
///   the record to stdout and routes human-readable output to stderr),
/// * `--trace[=PATH]` — collect a structured trace of the run (requires
///   building with `--features trace`): JSONL events go to `PATH` (default
///   `<out_dir>/<bin>.trace.jsonl`) and a span-tree summary to stderr,
/// * `--cache DIR` — memoize JSR certifications in a content-addressed
///   on-disk cache (`overrun-sweep`): a rerun with the same inputs reports
///   100% cache hits and produces byte-identical results,
/// * `--resume` — resume a killed sweep from its checkpoint in the
///   `--cache` directory (re-verifying every cached record it replays).
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Random sequences per configuration.
    pub sequences: usize,
    /// Jobs per sequence.
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker-thread override (`None` = env / all cores).
    pub threads: Option<usize>,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Append-mode JSON-lines summary file (`--json` / `BENCH_JSON`).
    pub json: Option<PathBuf>,
    /// Trace request: `None` = off, `Some(None)` = `--trace` (default
    /// path), `Some(Some(p))` = `--trace=p`.
    pub trace: Option<Option<PathBuf>>,
    /// Certification-cache directory (`--cache`); `None` = direct path.
    pub cache: Option<PathBuf>,
    /// Resume from the sweep checkpoint in the cache dir (`--resume`).
    pub resume: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            sequences: 50_000,
            jobs: 50,
            seed: 2021,
            threads: None,
            out_dir: PathBuf::from("bench_results"),
            json: None,
            trace: None,
            cache: None,
            resume: false,
        }
    }
}

impl RunArgs {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = RunArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--sequences" => {
                    out.sequences = next_value(&mut it, "--sequences")?;
                }
                "--jobs" => {
                    out.jobs = next_value(&mut it, "--jobs")?;
                }
                "--seed" => {
                    out.seed = next_value(&mut it, "--seed")?;
                }
                "--quick" => {
                    out.sequences = 500;
                }
                "--threads" => {
                    out.threads = Some(next_value(&mut it, "--threads")?);
                }
                "--out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--out requires a directory".to_string())?;
                    out.out_dir = PathBuf::from(v);
                }
                "--json" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--json requires a file path".to_string())?;
                    out.json = Some(PathBuf::from(v));
                }
                "--trace" => {
                    out.trace = Some(None);
                }
                "--cache" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--cache requires a directory".to_string())?;
                    out.cache = Some(PathBuf::from(v));
                }
                "--resume" => {
                    out.resume = true;
                }
                other if other.starts_with("--trace=") => {
                    let v = &other["--trace=".len()..];
                    if v.is_empty() {
                        return Err("--trace= requires a file path".to_string());
                    }
                    out.trace = Some(Some(PathBuf::from(v)));
                }
                other => {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
        if out.json.is_none() {
            if let Ok(p) = std::env::var("BENCH_JSON") {
                if !p.is_empty() {
                    out.json = Some(PathBuf::from(p));
                }
            }
        }
        if out.resume && out.cache.is_none() {
            return Err("--resume requires --cache DIR".to_string());
        }
        #[cfg(not(feature = "trace"))]
        if out.trace.is_some() {
            return Err(
                "--trace requires building with `--features trace` \
                 (cargo run -p overrun-bench --features trace ...)"
                    .to_string(),
            );
        }
        Ok(out)
    }

    /// Whether the machine-readable summary goes to stdout (`--json -`),
    /// in which case all human-readable output must go to stderr.
    pub fn json_on_stdout(&self) -> bool {
        self.json.as_deref() == Some(std::path::Path::new("-"))
    }

    /// Prints a human-readable line: to stdout normally, to stderr when
    /// stdout is reserved for the machine-readable record (`--json -`).
    pub fn human(&self, line: &str) {
        if self.json_on_stdout() {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    /// Installs the global trace sink with a monotonic clock when the run
    /// requested `--trace`. No-op (and compiled to nothing) when the
    /// `trace` cargo feature is off.
    #[cfg(feature = "trace")]
    pub fn start_trace(&self) {
        if self.trace.is_some() && !overrun_trace::install(overrun_trace::MonotonicClock::new()) {
            eprintln!("warning: trace sink already active; --trace ignored");
        }
    }

    /// Installs the global trace sink (inert: built without `--features
    /// trace`, and `--trace` is rejected at argument parsing).
    #[cfg(not(feature = "trace"))]
    pub fn start_trace(&self) {}

    /// Finishes the trace started by [`RunArgs::start_trace`]: writes the
    /// JSONL event log to `--trace=PATH` (default
    /// `<out_dir>/<bin>.trace.jsonl`), renders the span-tree summary to
    /// stderr, and returns the trace's key metrics for the `--json`
    /// summary record. Returns an empty vector when tracing is off.
    #[cfg(feature = "trace")]
    pub fn finish_trace(&self, bin: &str) -> Vec<(String, f64)> {
        let Some(requested) = &self.trace else {
            return Vec::new();
        };
        let Some(trace) = overrun_trace::finish() else {
            return Vec::new();
        };
        let path = match requested {
            Some(p) => p.clone(),
            None => self.out_dir.join(format!("{bin}.trace.jsonl")),
        };
        let write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            trace.write_jsonl(&mut f)
        };
        match write() {
            Ok(()) => eprintln!("trace: wrote {} events to {}", trace.events.len(), path.display()),
            Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
        }
        eprintln!("{}", trace.render());
        trace.key_metrics()
    }

    /// Finishes the trace (inert: built without `--features trace`).
    #[cfg(not(feature = "trace"))]
    pub fn finish_trace(&self, _bin: &str) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Builds the experiment configuration for the scenario drivers.
    pub fn experiment_config(&self) -> overrun_control::scenarios::ExperimentConfig {
        overrun_control::scenarios::ExperimentConfig {
            num_sequences: self.sequences,
            jobs_per_sequence: self.jobs,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Installs the `--threads` override into the global worker pool and
    /// returns the effective worker count the run will use.
    pub fn apply_threads(&self) -> usize {
        overrun_par::set_thread_override(self.threads);
        overrun_par::max_threads()
    }

    /// When `--cache DIR` was given, runs the `overrun-sweep` batch
    /// certification engine over `certifications` (memoized in the cache,
    /// checkpointed, `--resume`-able, fault-isolated) and returns the
    /// session that answers the driver's `certify` calls from the engine's
    /// results. Returns `None` on the direct (uncached) path.
    ///
    /// # Errors
    ///
    /// Returns the sweep's infrastructure error as a string (cache or
    /// checkpoint I/O); per-scenario faults are *not* errors here — the
    /// lookup simply misses and the driver falls back to the direct
    /// certifier, which reports the real failure in context.
    pub fn sweep_session(
        &self,
        plant: &overrun_control::ContinuousSs,
        certifications: Vec<(String, overrun_control::ControllerTable)>,
    ) -> Result<Option<SweepSession>, String> {
        let Some(dir) = &self.cache else {
            return Ok(None);
        };
        let opts = overrun_control::stability::CertifyOptions::default();
        let prepared: Vec<overrun_sweep::PreparedScenario> = certifications
            .into_iter()
            .map(|(label, table)| {
                overrun_sweep::PreparedScenario::new(label, plant.clone(), table, opts.clone())
            })
            .collect();
        let report = overrun_sweep::run_sweep(
            &prepared,
            &overrun_sweep::SweepOptions {
                cache_dir: Some(dir.clone()),
                resume: self.resume,
                ..overrun_sweep::SweepOptions::default()
            },
        )
        .map_err(|e| e.to_string())?;
        for err in report.errors() {
            eprintln!("warning: sweep {err}");
        }
        let stats = report.stats;
        self.human(&format!(
            "sweep cache: {} hits / {} misses ({} certified, {} shards, {} resumed)",
            stats.cache_hits, stats.cache_misses, stats.computed, stats.shards,
            stats.resumed_shards
        ));
        Ok(Some(SweepSession {
            lookup: report.lookup(),
            stats,
            fallbacks: std::cell::Cell::new(0),
        }))
    }

    /// Writes `contents` to `<out_dir>/<name>`, creating the directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_artifact(&self, name: &str, contents: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        std::fs::write(&path, contents)?;
        Ok(path)
    }

    /// Appends one machine-readable summary record to the `--json` /
    /// `BENCH_JSON` file, if one was requested (`-` prints the record to
    /// stdout instead). I/O failures are reported on stderr, never fatal —
    /// the human-readable output already happened.
    pub fn maybe_write_json(
        &self,
        bin: &str,
        threads: usize,
        elapsed: std::time::Duration,
        key_metrics: &[(String, f64)],
    ) {
        let Some(path) = &self.json else { return };
        let record = json_record(bin, threads, elapsed, key_metrics);
        if self.json_on_stdout() {
            println!("{record}");
        } else if let Err(e) = append_line(path, &record) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// A completed certification sweep bridging the experiment drivers to the
/// `overrun-sweep` cache: [`SweepSession::certify`] answers from the
/// engine's results by content key and falls back to the direct certifier
/// for anything the sweep did not cover (counted, surfaced in
/// [`SweepSession::key_metrics`]).
#[derive(Debug)]
pub struct SweepSession {
    lookup: overrun_sweep::CertLookup,
    stats: overrun_sweep::SweepStats,
    fallbacks: std::cell::Cell<u64>,
}

impl SweepSession {
    /// Answers one certification from the sweep results; falls back to
    /// [`overrun_control::stability::certify`] on a lookup miss.
    ///
    /// # Errors
    ///
    /// Propagates failures of the fallback certifier.
    pub fn certify(
        &self,
        plant: &overrun_control::ContinuousSs,
        table: &overrun_control::ControllerTable,
        opts: &overrun_control::stability::CertifyOptions,
    ) -> overrun_control::Result<overrun_control::stability::StabilityReport> {
        if let Some(report) = self.lookup.report_for(plant, table, opts) {
            return Ok(report);
        }
        self.fallbacks.set(self.fallbacks.get() + 1);
        overrun_control::stability::certify(plant, table, opts)
    }

    /// Cache/engine counters for the `--json` summary record.
    pub fn key_metrics(&self) -> Vec<(String, f64)> {
        metrics(&[
            ("sweep_cache_hits", self.stats.cache_hits as f64),
            ("sweep_cache_misses", self.stats.cache_misses as f64),
            ("sweep_computed", self.stats.computed as f64),
            ("sweep_errors", self.stats.errors as f64),
            ("sweep_corrupt_records", self.stats.corrupt_records as f64),
            ("sweep_resumed_shards", self.stats.resumed_shards as f64),
            ("sweep_lookup_fallbacks", self.fallbacks.get() as f64),
        ])
    }
}

/// Builds an owned key-metric list from `(&str, f64)` pairs, ready to be
/// extended with [`RunArgs::finish_trace`] output and passed to
/// [`RunArgs::maybe_write_json`].
#[must_use]
pub fn metrics(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

/// Formats one JSON-lines benchmark record:
/// `{"bin": ..., "threads": ..., "elapsed_ms": ..., "key_metrics": {...}}`.
/// Non-finite metric values are emitted as `null` (JSON has no `inf`/`nan`).
#[must_use]
pub fn json_record(
    bin: &str,
    threads: usize,
    elapsed: std::time::Duration,
    key_metrics: &[(String, f64)],
) -> String {
    let mut metrics = String::new();
    for (i, (k, v)) in key_metrics.iter().enumerate() {
        if i > 0 {
            metrics.push_str(", ");
        }
        if v.is_finite() {
            metrics.push_str(&format!("\"{k}\": {v}"));
        } else {
            metrics.push_str(&format!("\"{k}\": null"));
        }
    }
    format!(
        "{{\"bin\": \"{bin}\", \"threads\": {threads}, \"elapsed_ms\": {:.3}, \"key_metrics\": {{{metrics}}}}}",
        elapsed.as_secs_f64() * 1e3
    )
}

fn append_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Formats the `#`-comment provenance header prepended to every CSV
/// artifact: worker-thread count and wall-clock seconds of the run.
#[must_use]
pub fn run_header(threads: usize, elapsed: std::time::Duration) -> String {
    format!(
        "# threads={threads} elapsed_s={:.3}\n",
        elapsed.as_secs_f64()
    )
}

fn next_value<I: Iterator<Item = String>, T: std::str::FromStr>(
    it: &mut I,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("{flag} requires a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let a = RunArgs::default();
        assert_eq!(a.sequences, 50_000);
        assert_eq!(a.jobs, 50);
    }

    #[test]
    fn parse_flags() {
        let a = RunArgs::parse(
            ["--sequences", "100", "--jobs", "10", "--seed", "7", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.sequences, 100);
        assert_eq!(a.jobs, 10);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn parse_quick_and_errors() {
        let a = RunArgs::parse(["--quick".to_string()]).unwrap();
        assert_eq!(a.sequences, 500);
        assert!(RunArgs::parse(["--bogus".to_string()]).is_err());
        assert!(RunArgs::parse(["--sequences".to_string()]).is_err());
        assert!(RunArgs::parse(["--sequences".to_string(), "abc".to_string()]).is_err());
    }

    #[test]
    fn parse_threads() {
        let a = RunArgs::parse(["--threads".to_string(), "4".to_string()]).unwrap();
        assert_eq!(a.threads, Some(4));
        assert_eq!(RunArgs::default().threads, None);
        assert!(RunArgs::parse(["--threads".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn parse_json_flag() {
        let a = RunArgs::parse(["--json".to_string(), "/tmp/b.json".to_string()]).unwrap();
        assert_eq!(a.json, Some(PathBuf::from("/tmp/b.json")));
        assert!(RunArgs::parse(["--json".to_string()]).is_err());
    }

    #[test]
    fn parse_trace_flag() {
        // Without the cargo feature, --trace must be rejected with a clear
        // message; with it, both spellings parse.
        let bare = RunArgs::parse(["--trace".to_string()]);
        let with_path = RunArgs::parse(["--trace=/tmp/t.jsonl".to_string()]);
        #[cfg(feature = "trace")]
        {
            assert_eq!(bare.ok().map(|a| a.trace), Some(Some(None)));
            assert_eq!(
                with_path.ok().map(|a| a.trace),
                Some(Some(Some(PathBuf::from("/tmp/t.jsonl"))))
            );
        }
        #[cfg(not(feature = "trace"))]
        {
            assert!(bare.err().is_some_and(|e| e.contains("--features trace")));
            assert!(with_path
                .err()
                .is_some_and(|e| e.contains("--features trace")));
        }
        assert!(RunArgs::parse(["--trace=".to_string()]).is_err());
    }

    #[test]
    fn parse_cache_and_resume() -> Result<(), String> {
        let a = RunArgs::parse(
            ["--cache", "/tmp/sweep-cache", "--resume"]
                .iter()
                .map(|s| s.to_string()),
        )?;
        assert_eq!(a.cache, Some(PathBuf::from("/tmp/sweep-cache")));
        assert!(a.resume);
        assert!(!RunArgs::default().resume);
        assert!(RunArgs::parse(["--cache".to_string()]).is_err());
        // --resume without --cache has no checkpoint to resume from.
        assert!(RunArgs::parse(["--resume".to_string()]).is_err());
        Ok(())
    }

    #[test]
    fn json_stdout_routing() {
        let dash = RunArgs {
            json: Some(PathBuf::from("-")),
            ..RunArgs::default()
        };
        assert!(dash.json_on_stdout());
        assert!(!RunArgs::default().json_on_stdout());
        let file = RunArgs {
            json: Some(PathBuf::from("/tmp/x.json")),
            ..RunArgs::default()
        };
        assert!(!file.json_on_stdout());
    }

    #[test]
    fn json_record_format() {
        let r = json_record(
            "table2",
            4,
            std::time::Duration::from_millis(1234),
            &metrics(&[("jsr_ub", 0.75), ("cost", f64::INFINITY)]),
        );
        assert_eq!(
            r,
            "{\"bin\": \"table2\", \"threads\": 4, \"elapsed_ms\": 1234.000, \
             \"key_metrics\": {\"jsr_ub\": 0.75, \"cost\": null}}"
        );
    }

    #[test]
    fn json_append_writes_lines() {
        let dir = std::env::temp_dir().join(format!("overrun-bench-test-{}", std::process::id()));
        let path = dir.join("out.json");
        let _ = std::fs::remove_file(&path);
        let args = RunArgs {
            json: Some(path.clone()),
            ..RunArgs::default()
        };
        let t = std::time::Duration::from_millis(10);
        args.maybe_write_json("a", 1, t, &metrics(&[("x", 1.0)]));
        args.maybe_write_json("b", 2, t, &metrics(&[("y", 2.0)]));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().nth(1).unwrap().contains("\"bin\": \"b\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_format() {
        let h = run_header(4, std::time::Duration::from_millis(1500));
        assert_eq!(h, "# threads=4 elapsed_s=1.500\n");
    }

    #[test]
    fn config_propagates() {
        let a = RunArgs::parse(["--quick".to_string()]).unwrap();
        let cfg = a.experiment_config();
        assert_eq!(cfg.num_sequences, 500);
        assert_eq!(cfg.jobs_per_sequence, 50);
    }
}
