//! Regenerates **Table II** of the paper: stability (JSR bounds) and
//! worst-case performance for an LQR-controlled PMSM with `T = 50 µs`,
//! comparing the adaptive design against fixed-gain and fixed-period
//! baselines.
//!
//! ```text
//! cargo run -p overrun-bench --bin table2 --release            # full
//! cargo run -p overrun-bench --bin table2 --release -- --quick # smoke
//! ```

use overrun_bench::{metrics, run_header, RunArgs};
use overrun_control::plants;
use overrun_control::scenarios::{
    format_table2, pmsm_table2_weights, table2_certifications, table2_with,
};
use overrun_control::stability;
use overrun_linalg::Matrix;

fn main() {
    let args = match RunArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = args.apply_threads();
    args.start_trace();
    let plant = plants::pmsm();
    let t = 50e-6; // 50 µs control period, as in the paper
    let weights = pmsm_table2_weights();
    let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);
    let cfg = args.experiment_config();
    args.human(&format!(
        "Table II — LQR on a PMSM, T = 50 us, {} sequences x {} jobs (seed {}, {} threads)",
        args.sequences, args.jobs, args.seed, threads
    ));
    let started = std::time::Instant::now();
    // With `--cache`, the batch engine certifies (or replays) every table
    // up front; the driver then reads from its results, so the CSV is
    // byte-identical to the direct path.
    let session = match table2_certifications(&plant, t, &weights, &cfg)
        .map_err(|e| e.to_string())
        .and_then(|certs| args.sweep_session(&plant, certs))
    {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("sweep failed: {msg}");
            std::process::exit(1);
        }
    };
    let rows = match &session {
        Some(s) => table2_with(&plant, t, &weights, &x0, &cfg, &|p, tb, o| {
            s.certify(p, tb, o)
        }),
        None => table2_with(&plant, t, &weights, &x0, &cfg, &|p, tb, o| {
            stability::certify(p, tb, o)
        }),
    };
    let rows = match rows {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();
    args.human(&format_table2(&rows));
    args.human("norm screening (adaptive-design certifications):");
    for r in &rows {
        args.human(&format!(
            "  Rmax={:.1}*T Ns={}: {}",
            r.rmax_factor, r.ns, r.screen_adaptive
        ));
    }
    args.human(&format!("elapsed: {elapsed:.1?}"));

    let mut csv = run_header(threads, elapsed);
    csv.push_str(
        "rmax_factor,ns,jsr_lb,jsr_ub,cost_no_overruns,cost_adaptive,cost_fixed_t,cost_fixed_rmax,cost_fixed_period_rmax\n",
    );
    let opt = |v: &Option<f64>| v.map_or("unstable".to_string(), |c| c.to_string());
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.rmax_factor,
            r.ns,
            r.jsr_adaptive.lower,
            r.jsr_adaptive.upper,
            r.cost_no_overruns,
            r.cost_adaptive,
            opt(&r.cost_fixed_t),
            opt(&r.cost_fixed_rmax),
            r.cost_fixed_period_rmax
        ));
    }
    match args.write_artifact("table2.csv", &csv) {
        Ok(path) => args.human(&format!("wrote {}", path.display())),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let mut screen = overrun_jsr::ScreenStats::default();
    for r in &rows {
        screen.absorb(&r.screen_adaptive);
    }
    let max_ub = rows
        .iter()
        .map(|r| r.jsr_adaptive.upper)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut km = metrics(&[
        ("rows", rows.len() as f64),
        ("max_jsr_ub", max_ub),
        ("schur_evals", screen.schur_evals() as f64),
        ("schur_skipped", screen.schur_skipped() as f64),
        ("screen_hit_rate", screen.hit_rate()),
    ]);
    if let Some(s) = &session {
        km.extend(s.key_metrics());
    }
    km.extend(args.finish_trace("table2"));
    args.maybe_write_json("table2", threads, elapsed, &km);
}
