use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left / first operand.
        lhs: (usize, usize),
        /// Dimensions of the right / second operand.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Actual dimensions.
        dims: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// The matrix is not (numerically) symmetric positive definite.
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// Construction from raw parts received inconsistent data.
    InvalidData(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            Error::NotSquare { op, dims } => {
                write!(f, "{op} requires a square matrix, got {}x{}", dims.0, dims.1)
            }
            Error::Singular => write!(f, "matrix is singular to working precision"),
            Error::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            Error::NoConvergence {
                algorithm,
                iterations,
            } => write!(f, "{algorithm} did not converge after {iterations} iterations"),
            Error::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
