//! Exact integer time arithmetic.
//!
//! All simulator time is counted in whole nanoseconds so that sensor grids
//! (`Ts = T / Ns`) and release instants compare exactly — floating-point
//! drift in release arithmetic would corrupt the very `h_k ∈ H` invariant
//! the paper's analysis relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative time span, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The simulation origin (`t = 0`).
    pub const ZERO: Time = Time(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds as `f64` (for handing to the control layer).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` (clock cannot run backwards).
    pub fn duration_since(self, earlier: Time) -> Span {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        Span(self.0 - earlier.0)
    }

    /// Checked difference, `None` when `earlier` is after `self`.
    pub fn checked_duration_since(self, earlier: Time) -> Option<Span> {
        self.0.checked_sub(earlier.0).map(Span)
    }
}

impl Span {
    /// The zero-length span.
    pub const ZERO: Span = Span(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Span(ns)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Span(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Span(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Span(s * 1_000_000_000)
    }

    /// Creates a span from seconds given as `f64`, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "span seconds must be finite and non-negative, got {s}"
        );
        Span((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// `true` when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ceiling division: the smallest integer `k` with `k · rhs >= self`.
    ///
    /// This is exactly the `⌈R_k / T_s⌉` operation of the paper's release
    /// rule (Sec. IV-A).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_ceil(self, rhs: Span) -> u64 {
        assert!(rhs.0 > 0, "division by zero span");
        self.0.div_ceil(rhs.0)
    }

    /// Exact integer division when `self` is a multiple of `rhs`.
    pub fn checked_div_exact(self, rhs: Span) -> Option<u64> {
        if rhs.0 == 0 || !self.0.is_multiple_of(rhs.0) {
            None
        } else {
            Some(self.0 / rhs.0)
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two spans.
    pub fn min(self, rhs: Span) -> Span {
        Span(self.0.min(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, rhs: Span) -> Span {
        Span(self.0.max(rhs.0))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    fn sub(self, rhs: Span) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0.checked_sub(rhs.0).expect("span underflow"))
    }
}

impl SubAssign for Span {
    fn sub_assign(&mut self, rhs: Span) {
        self.0 = self.0.checked_sub(rhs.0).expect("span underflow");
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0 * rhs)
    }
}

impl Mul<Span> for u64 {
    type Output = Span;
    fn mul(self, rhs: Span) -> Span {
        Span(self * rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_string()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Span::from_millis(10).as_nanos(), 10_000_000);
        assert_eq!(Span::from_micros(50).as_nanos(), 50_000);
        assert_eq!(Span::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Span::from_secs_f64(0.01).as_nanos(), 10_000_000);
        assert!((Span::from_millis(10).as_secs_f64() - 0.01).abs() < 1e-15);
        assert_eq!(Time::from_nanos(5).as_nanos(), 5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = Span::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Span::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        assert_eq!((t - Span::from_millis(4)).as_nanos(), 6_000_000);
        assert_eq!(t.duration_since(Time::ZERO), Span::from_millis(10));
        assert_eq!(
            Time::ZERO.checked_duration_since(t),
            None
        );
        assert_eq!(Span::from_millis(3) * 4, Span::from_millis(12));
        assert_eq!(4 * Span::from_millis(3), Span::from_millis(12));
    }

    #[test]
    fn div_ceil_matches_paper_rule() {
        // T = 10 ms, Ts = 2 ms: R = 11 ms ⇒ ⌈11/2⌉·2 = 12 ms
        let ts = Span::from_millis(2);
        assert_eq!(Span::from_millis(11).div_ceil(ts), 6);
        assert_eq!(Span::from_millis(12).div_ceil(ts), 6);
        assert_eq!(Span::from_millis(13).div_ceil(ts), 7);
        assert_eq!(Span::from_millis(10).div_ceil(ts), 5);
    }

    #[test]
    fn exact_division() {
        assert_eq!(
            Span::from_millis(10).checked_div_exact(Span::from_millis(2)),
            Some(5)
        );
        assert_eq!(
            Span::from_millis(10).checked_div_exact(Span::from_millis(3)),
            None
        );
        assert_eq!(Span::from_millis(10).checked_div_exact(Span::ZERO), None);
    }

    #[test]
    fn saturating_and_minmax() {
        let a = Span::from_millis(3);
        let b = Span::from_millis(5);
        assert_eq!(a.saturating_sub(b), Span::ZERO);
        assert_eq!(b.saturating_sub(a), Span::from_millis(2));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Span::from_secs(1).to_string(), "1s");
        assert_eq!(Span::from_millis(10).to_string(), "10ms");
        assert_eq!(Span::from_micros(50).to_string(), "50us");
        assert_eq!(Span::from_nanos(7).to_string(), "7ns");
        assert_eq!(Span::ZERO.to_string(), "0s");
        assert!(Time::from_nanos(1_000_000).to_string().contains("1ms"));
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    fn time_underflow_panics() {
        let _ = Time::ZERO - Span::from_nanos(1);
    }

    #[test]
    fn ordering() {
        assert!(Time::ZERO < Time::from_nanos(1));
        assert!(Span::from_millis(1) < Span::from_millis(2));
    }
}
