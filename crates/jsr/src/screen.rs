//! Lazy-exact norm screening for the product-tree searches.
//!
//! Every node of a Gripenberg or brute-force search pays a full Schur
//! eigendecomposition for `norm_2` (and often a second one for
//! `spectral_radius`) — even at nodes whose value provably cannot affect
//! the certified `[LB, UB]`. This module provides the O(n²) certified
//! bracket evaluation ([`scaled_cheap_bounds`], built on
//! [`overrun_linalg::cheap_spectral_bounds`]) and the instrumentation
//! ([`ScreenStats`], [`ScreenCounters`]) that the searches use to skip the
//! exact evaluations lazily.
//!
//! # Why screening cannot change a single output bit
//!
//! Both searches fold candidate values into running maxima (`lb`,
//! `level_max_rho`, `level_max_norm`) and prune children against the
//! current lower bound. A `max`-fold with a value `≤` the current fold
//! state is a bitwise no-op, so an exact evaluation may be skipped exactly
//! when its *cheap upper bound* already sits at or below the relevant
//! threshold — the exact value, which can only be smaller, would have
//! contributed nothing. The cheap bounds carry a multiplicative guard (see
//! `overrun_linalg::norms`) so they bound the *computed* exact values, not
//! just the mathematical ones, and every skip condition is written as
//! "skip iff `cheap ≤ threshold`" so NaN comparisons fail closed into the
//! exact path.

use overrun_linalg::{cheap_spectral_bounds, Matrix};
use overrun_trace::CounterBundle;

/// Evaluation counters of a product-tree search: how many exact
/// (Schur-based) evaluations ran versus how many the cheap certified
/// bounds screened out.
///
/// Counters are diagnostics only — they may differ across thread counts
/// (a lagging shared lower bound screens less), while the certified bounds
/// themselves stay bit-identical. `lb_depth` *is* deterministic: the
/// per-depth settled lower bound does not depend on scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Product-tree nodes evaluated (matrix products formed).
    pub nodes: u64,
    /// Exact `norm_2` evaluations performed.
    pub exact_norms: u64,
    /// Norm evaluations answered from the `MatrixSet` cache.
    pub cached_norms: u64,
    /// Exact `spectral_radius` evaluations performed.
    pub exact_eigs: u64,
    /// `norm_2` evaluations avoided by the cheap bracket.
    pub skipped_norms: u64,
    /// `spectral_radius` evaluations avoided by the cheap bracket.
    pub skipped_eigs: u64,
    /// Product length at which the final lower bound was first attained
    /// (`0` when the lower bound stayed at zero). Deterministic across
    /// thread counts and screening on/off — part of the lb provenance.
    pub lb_depth: usize,
}

impl ScreenStats {
    /// Exact Schur-based evaluations performed (`norm_2` + eigenvalue
    /// solves).
    pub fn schur_evals(&self) -> u64 {
        self.exact_norms + self.exact_eigs
    }

    /// Schur-based evaluations avoided by screening (plus cache hits,
    /// reported separately in [`ScreenStats::cached_norms`]).
    pub fn schur_skipped(&self) -> u64 {
        self.skipped_norms + self.skipped_eigs
    }

    /// Fraction of would-be exact evaluations answered by the cheap
    /// bounds: `skipped / (skipped + performed)`. Zero when nothing ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.schur_evals() + self.schur_skipped();
        if total == 0 {
            0.0
        } else {
            self.schur_skipped() as f64 / total as f64
        }
    }

    /// Adds the evaluation counters of `other` (e.g. one power-lift level)
    /// into `self`. `lb_depth` is provenance, not a count, and is left
    /// untouched — callers set it when they know which run produced the
    /// final lower bound.
    pub fn absorb(&mut self, other: &ScreenStats) {
        self.nodes += other.nodes;
        self.exact_norms += other.exact_norms;
        self.cached_norms += other.cached_norms;
        self.exact_eigs += other.exact_eigs;
        self.skipped_norms += other.skipped_norms;
        self.skipped_eigs += other.skipped_eigs;
    }
}

impl std::fmt::Display for ScreenStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} exact(norm={} eig={}) skipped(norm={} eig={}) cached={} hit_rate={:.1}% lb_depth={}",
            self.nodes,
            self.exact_norms,
            self.exact_eigs,
            self.skipped_norms,
            self.skipped_eigs,
            self.cached_norms,
            100.0 * self.hit_rate(),
            self.lb_depth
        )
    }
}

/// Counter slot indices in the shared [`CounterBundle`]. The emitted
/// counter names double as the trace-counter names, so a `--trace` run
/// reports the screening economy without any extra plumbing.
const NODES: usize = 0;
const EXACT_NORMS: usize = 1;
const CACHED_NORMS: usize = 2;
const EXACT_EIGS: usize = 3;
const SKIPPED_NORMS: usize = 4;
const SKIPPED_EIGS: usize = 5;

/// Thread-safe accumulation of [`ScreenStats`] counters: the parallel
/// frontier expansion increments from worker threads. Built on the trace
/// layer's [`CounterBundle`] (relaxed atomics, read after the join); with
/// the `trace` feature on, [`ScreenCounters::snapshot`] also emits the
/// totals into the active sink as counter deltas.
#[derive(Debug)]
pub(crate) struct ScreenCounters(CounterBundle<6>);

impl Default for ScreenCounters {
    fn default() -> Self {
        Self(CounterBundle::new([
            "jsr.screen.nodes",
            "jsr.screen.exact_norms",
            "jsr.screen.cached_norms",
            "jsr.screen.exact_eigs",
            "jsr.screen.skipped_norms",
            "jsr.screen.skipped_eigs",
        ]))
    }
}

impl ScreenCounters {
    pub(crate) fn node(&self) {
        self.0.incr(NODES);
    }

    pub(crate) fn exact_norm(&self) {
        self.0.incr(EXACT_NORMS);
    }

    pub(crate) fn cached_norm(&self) {
        self.0.incr(CACHED_NORMS);
    }

    pub(crate) fn exact_eig(&self) {
        self.0.incr(EXACT_EIGS);
    }

    pub(crate) fn skip_norm(&self) {
        self.0.incr(SKIPPED_NORMS);
    }

    pub(crate) fn skip_eig(&self) {
        self.0.incr(SKIPPED_EIGS);
    }

    /// Snapshots the counters into a [`ScreenStats`] with the given lower
    /// bound provenance, and forwards the totals to the trace sink (a
    /// no-op unless the `trace` feature is on and a sink is installed).
    pub(crate) fn snapshot(&self, lb_depth: usize) -> ScreenStats {
        self.0.emit();
        ScreenStats {
            nodes: self.0.get(NODES),
            exact_norms: self.0.get(EXACT_NORMS),
            cached_norms: self.0.get(CACHED_NORMS),
            exact_eigs: self.0.get(EXACT_EIGS),
            skipped_norms: self.0.get(SKIPPED_NORMS),
            skipped_eigs: self.0.get(SKIPPED_EIGS),
            lb_depth,
        }
    }
}

/// Maps a raw (normalised-product) quantity to the depth-scaled value used
/// by the searches: `(x · exp(log_scale))^(1/depth)` computed in log space.
/// Bit-identical to the inline expressions the searches historically used.
#[inline]
pub(crate) fn scale_pow(x: f64, log_scale: f64, inv_depth: f64) -> f64 {
    if x > 0.0 {
        ((x.ln() + log_scale) * inv_depth).exp()
    } else {
        0.0
    }
}

/// Cheap certified upper bounds on the depth-scaled norm and spectral
/// radius of a product node: `(nrm_hi, rho_hi)` with
///
/// * `scale_pow(norm_2(m), …) ≤ nrm_hi`, and
/// * `scale_pow(spectral_radius(m), …) ≤ rho_hi ≤ nrm_hi`,
///
/// both with margin (the underlying bounds carry a multiplicative guard
/// that dwarfs the ulp-level wobble of `ln`/`exp`). Non-finite inputs give
/// `(∞, ∞)`, screening nothing.
#[inline]
pub(crate) fn scaled_cheap_bounds(m: &Matrix, log_scale: f64, inv_depth: f64) -> (f64, f64) {
    let b = cheap_spectral_bounds(m);
    (
        scale_pow(b.norm_upper, log_scale, inv_depth),
        scale_pow(b.radius_upper, log_scale, inv_depth),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_linalg::{norm_2, spectral_radius};

    #[test]
    fn stats_arithmetic() {
        let mut a = ScreenStats {
            nodes: 10,
            exact_norms: 3,
            cached_norms: 1,
            exact_eigs: 2,
            skipped_norms: 4,
            skipped_eigs: 5,
            lb_depth: 3,
        };
        assert_eq!(a.schur_evals(), 5);
        assert_eq!(a.schur_skipped(), 9);
        assert!((a.hit_rate() - 9.0 / 14.0).abs() < 1e-15);
        let b = a;
        a.absorb(&b);
        assert_eq!(a.nodes, 20);
        assert_eq!(a.lb_depth, 3, "absorb must not touch provenance");
        assert_eq!(ScreenStats::default().hit_rate(), 0.0);
        assert!(format!("{a}").contains("hit_rate"));
    }

    #[test]
    fn counters_snapshot() {
        let c = ScreenCounters::default();
        c.node();
        c.node();
        c.exact_norm();
        c.cached_norm();
        c.exact_eig();
        c.skip_norm();
        c.skip_eig();
        let s = c.snapshot(4);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.exact_norms, 1);
        assert_eq!(s.cached_norms, 1);
        assert_eq!(s.exact_eigs, 1);
        assert_eq!(s.skipped_norms, 1);
        assert_eq!(s.skipped_eigs, 1);
        assert_eq!(s.lb_depth, 4);
    }

    #[test]
    fn scale_pow_matches_inline_expression() {
        for (x, log_scale, inv_depth) in [
            (1.7, 0.3, 0.5),
            (0.2, -2.0, 0.25),
            (3.0, 0.0, 1.0),
            (0.0, 1.0, 0.5),
            (f64::NAN, 0.0, 1.0),
        ] {
            let expected = if x > 0.0 {
                ((x.ln() + log_scale) * inv_depth).exp()
            } else {
                0.0
            };
            assert_eq!(scale_pow(x, log_scale, inv_depth).to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn scaled_bounds_dominate_scaled_exact_values() {
        let m = Matrix::from_rows(&[&[0.9, 0.4], &[-0.3, 0.7]]).unwrap();
        let (log_scale, inv_depth) = (0.37, 1.0 / 3.0);
        let (nrm_hi, rho_hi) = scaled_cheap_bounds(&m, log_scale, inv_depth);
        let nrm = scale_pow(norm_2(&m), log_scale, inv_depth);
        let rho = scale_pow(spectral_radius(&m).unwrap(), log_scale, inv_depth);
        assert!(nrm <= nrm_hi);
        assert!(rho <= rho_hi);
        assert!(rho_hi <= nrm_hi);
    }
}
