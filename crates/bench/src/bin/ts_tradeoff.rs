//! The sensor-granularity trade-off experiment (paper Sec. V-B): sweep the
//! oversampling factor `Ns` at fixed `Rmax = 1.6 T` and report how the
//! analysis size `#H`, the certified stability margin, the worst-case cost
//! and the wasted idle slack move.
//!
//! ```text
//! cargo run -p overrun-bench --bin ts_tradeoff --release
//! ```

use overrun_bench::{metrics, run_header, RunArgs};
use overrun_control::plants;
use overrun_control::scenarios::{
    format_granularity, granularity_certifications, granularity_sweep_with,
};
use overrun_control::stability;

fn main() {
    let args = match RunArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = args.apply_threads();
    args.start_trace();
    let plant = plants::unstable_second_order();
    let (t, rmax_factor, ns_values) = (0.010, 1.6, [1u32, 2, 4, 5, 10]);
    let cfg = args.experiment_config();
    args.human(&format!(
        "Ts trade-off — PI, T = 10 ms, Rmax = 1.6 T, {} sequences x {} jobs ({} threads)",
        args.sequences, args.jobs, threads
    ));
    let started = std::time::Instant::now();
    // `--cache`: batch-certify every Ns point through the sweep engine
    // first, then drive the experiment from the memoized results.
    let session = match granularity_certifications(&plant, t, rmax_factor, &ns_values)
        .map_err(|e| e.to_string())
        .and_then(|certs| args.sweep_session(&plant, certs))
    {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("sweep failed: {msg}");
            std::process::exit(1);
        }
    };
    let rows = match &session {
        Some(s) => granularity_sweep_with(&plant, t, rmax_factor, &ns_values, &cfg, &|p, tb, o| {
            s.certify(p, tb, o)
        }),
        None => granularity_sweep_with(&plant, t, rmax_factor, &ns_values, &cfg, &|p, tb, o| {
            stability::certify(p, tb, o)
        }),
    };
    let rows = match rows {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();
    args.human(&format_granularity(&rows));
    args.human(&format!("elapsed: {elapsed:.1?}"));

    let mut csv = run_header(threads, elapsed);
    csv.push_str("ns,h_count,jsr_lb,jsr_ub,jw_adaptive,worst_idle_slack_s\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.ns, r.h_count, r.jsr.lower, r.jsr.upper, r.jw_adaptive, r.worst_idle_slack
        ));
    }
    match args.write_artifact("ts_tradeoff.csv", &csv) {
        Ok(path) => args.human(&format!("wrote {}", path.display())),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let max_ub = rows
        .iter()
        .map(|r| r.jsr.upper)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut km = metrics(&[("rows", rows.len() as f64), ("max_jsr_ub", max_ub)]);
    if let Some(s) = &session {
        km.extend(s.key_metrics());
    }
    km.extend(args.finish_trace("ts_tradeoff"));
    args.maybe_write_json("ts_tradeoff", threads, elapsed, &km);
}
