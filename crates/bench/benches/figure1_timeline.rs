//! Criterion benchmarks for the timing substrate behind Figure 1: the
//! overrun release policy, the fixed-priority scheduler and timeline
//! rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use overrun_rtsim::{
    render_timeline, ExecutionModel, OverrunPolicy, ResponseTimeModel, Scheduler,
    SchedulerConfig, SequenceGenerator, Span, Task, TimelineOptions,
};

fn bench_policy_application(c: &mut Criterion) {
    let policy = OverrunPolicy::new(Span::from_millis(10), 5).expect("policy");
    let mut gen = SequenceGenerator::new(
        ResponseTimeModel::Uniform {
            min: Span::from_millis(1),
            max: Span::from_millis(16),
        },
        7,
    )
    .expect("generator");
    let responses = gen.sequence(10_000);
    c.bench_function("overrun_policy_10k_jobs", |b| {
        b.iter(|| policy.apply(&responses).expect("trace"))
    });
}

fn bench_scheduler_run(c: &mut Criterion) {
    let tasks = vec![
        Task::new(
            "interference",
            Span::from_millis(7),
            0,
            ExecutionModel::Uniform {
                min: Span::from_millis(1),
                max: Span::from_millis(3),
            },
        ),
        Task::new(
            "control",
            Span::from_millis(10),
            1,
            ExecutionModel::Constant(Span::from_millis(4)),
        ),
    ];
    let sched = Scheduler::new(tasks).expect("scheduler");
    let ctl = sched.task_id("control").expect("task");
    let sched = sched.with_adaptive_task(ctl, 5).expect("adaptive");
    c.bench_function("scheduler_1s_horizon", |b| {
        b.iter(|| {
            sched
                .run(&SchedulerConfig {
                    horizon: Span::from_secs(1),
                    seed: 3,
                })
                .expect("trace")
        })
    });
}

fn bench_timeline_render(c: &mut Criterion) {
    let policy = OverrunPolicy::new(Span::from_millis(8), 8).expect("policy");
    let mut gen = SequenceGenerator::new(
        ResponseTimeModel::Sporadic {
            min: Span::from_millis(2),
            period: Span::from_millis(8),
            max: Span::from_millis(12),
            overrun_prob: 0.2,
        },
        11,
    )
    .expect("generator");
    let trace = policy.apply(&gen.sequence(12)).expect("trace");
    c.bench_function("render_timeline_12_jobs", |b| {
        b.iter(|| render_timeline(&trace, &TimelineOptions::default()).expect("art"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_policy_application, bench_scheduler_run, bench_timeline_render
}
criterion_main!(benches);
