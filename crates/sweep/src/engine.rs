//! The batch certification engine: sharding, memoization, checkpointing,
//! fault isolation.
//!
//! A sweep walks its prepared scenarios shard by shard. Within a shard,
//! scenarios run on the `overrun-par` workers (order-preserving, so the
//! report is bit-identical at any thread count); across shards the engine
//! is sequential so the checkpoint advances monotonically. Per scenario:
//!
//! 1. probe the content-addressed cache (hit → done, corrupt → recompute
//!    and overwrite);
//! 2. run the certification inside `catch_unwind` — a panic (in practice
//!    the `sanitize` feature poisoning a NaN at the producing kernel) or
//!    an `Err` is a *scenario* fault, not an engine fault;
//! 3. on a fault, retry **once** with a tightened budget
//!    ([`tightened_budget`]); a second fault yields a structured
//!    [`ScenarioError`] in the report while the sweep continues;
//! 4. on success, store the record atomically.
//!
//! A shard is checkpointed only when every scenario in it succeeded, so a
//! rerun retries faulted scenarios. Killing the process at any point loses
//! at most the in-flight shard's uncached scenarios: `--resume` replays
//! hits from the cache (each record re-verified on load) and recomputes
//! the rest, converging to the uninterrupted result.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use overrun_control::stability::{self, CertifyOptions, StabilityReport};
use overrun_control::{ContinuousSs, ControllerTable};

use crate::cache::{CacheProbe, ResultCache};
use crate::checkpoint::{self, Checkpoint, GridId};
use crate::error::{ScenarioError, ScenarioFault, SweepError};
use crate::hash::ContentHash;
use crate::record::ScenarioRecord;
use crate::scenario::{certification_key, grid_key, PreparedScenario};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Cache directory; `None` disables memoization and checkpointing.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Resume from the checkpoint in the cache directory when it matches
    /// the current grid (otherwise start fresh).
    pub resume: bool,
    /// Scenarios per shard (checkpoint granularity).
    pub shard_size: usize,
    /// Retry a faulted scenario once with a tightened budget.
    pub retry: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            cache_dir: None,
            resume: false,
            shard_size: 8,
            retry: true,
        }
    }
}

/// Aggregate counters of one sweep run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Scenarios in the grid.
    pub scenarios: usize,
    /// Shards the grid was split into.
    pub shards: usize,
    /// Shards already marked complete by the checkpoint on entry.
    pub resumed_shards: usize,
    /// Scenarios answered by the cache.
    pub cache_hits: u64,
    /// Scenarios not found in the cache (computed; only counted when a
    /// cache is configured).
    pub cache_misses: u64,
    /// Corrupt cache records detected (recomputed and overwritten).
    pub corrupt_records: u64,
    /// Certifications actually executed.
    pub computed: u64,
    /// Scenarios that needed the tightened-budget retry.
    pub retried: u64,
    /// Scenarios that faulted on both attempts.
    pub errors: u64,
}

/// Result of one scenario within a sweep.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Index in the input grid.
    pub index: usize,
    /// Human label.
    pub label: String,
    /// Content key.
    pub key: ContentHash,
    /// Whether the record came from the cache (vs freshly computed).
    pub from_cache: bool,
    /// Whether a corrupt cache record was detected and replaced.
    pub replaced_corrupt: bool,
    /// The certified record, or the structured fault.
    pub result: Result<ScenarioRecord, ScenarioError>,
}

/// Full report of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-scenario outcomes, in grid order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Aggregate counters.
    pub stats: SweepStats,
}

impl SweepReport {
    /// The scenario errors of the run, in grid order.
    pub fn errors(&self) -> Vec<&ScenarioError> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err())
            .collect()
    }

    /// Builds a key → record lookup over the successful outcomes.
    pub fn lookup(&self) -> CertLookup {
        let mut entries: Vec<(ContentHash, ScenarioRecord)> = self
            .outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|r| (o.key, r.clone())))
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        entries.dedup_by_key(|(k, _)| *k);
        CertLookup { entries }
    }
}

/// Sorted key → record map for answering `certify` calls from a completed
/// sweep (the bridge the bench binaries use: they keep their existing
/// `(plant, table, opts)` call sites and the lookup addresses the engine's
/// results by content key).
#[derive(Debug, Clone, Default)]
pub struct CertLookup {
    entries: Vec<(ContentHash, ScenarioRecord)>,
}

impl CertLookup {
    /// Number of distinct cached certifications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lookup is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetches the record for a key.
    pub fn get(&self, key: ContentHash) -> Option<&ScenarioRecord> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Answers a certification from the sweep results, keyed exactly like
    /// the engine keyed its scenarios.
    pub fn report_for(
        &self,
        plant: &ContinuousSs,
        table: &ControllerTable,
        opts: &CertifyOptions,
    ) -> Option<StabilityReport> {
        self.get(certification_key(plant, table, opts))
            .map(|rec| StabilityReport {
                bounds: rec.bounds,
                verdict: rec.verdict,
                screen: rec.screen,
            })
    }
}

/// The function a sweep runs per scenario — [`run_sweep`] plugs in
/// [`overrun_control::stability::certify`]; tests plug in fault injectors.
pub type CertifyRunner<'a> = &'a (dyn Fn(
    &ContinuousSs,
    &ControllerTable,
    &CertifyOptions,
) -> overrun_control::Result<StabilityReport>
             + Sync);

/// The tightened budget of the single fault retry: shallower tree, fewer
/// products, no high power lifts — terminates fast on inputs whose full
/// budget diverged or poisoned.
pub fn tightened_budget(opts: &CertifyOptions) -> CertifyOptions {
    CertifyOptions {
        delta: opts.delta.max(1e-3),
        max_depth: opts.max_depth.min(4),
        max_products: (opts.max_products / 4).max(1_000),
        max_power: opts.max_power.min(2),
    }
}

/// Runs the sweep with the real certifier.
///
/// # Errors
///
/// Returns [`SweepError`] only for infrastructure failures (cache or
/// checkpoint I/O); per-scenario faults land in the report.
pub fn run_sweep(
    scenarios: &[PreparedScenario],
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    run_sweep_with(scenarios, opts, &|p, t, o| stability::certify(p, t, o))
}

/// Runs the sweep with a caller-supplied certifier (fault-injection
/// seam; see [`CertifyRunner`]).
///
/// # Errors
///
/// Returns [`SweepError`] for infrastructure failures.
pub fn run_sweep_with(
    scenarios: &[PreparedScenario],
    opts: &SweepOptions,
    runner: CertifyRunner<'_>,
) -> Result<SweepReport, SweepError> {
    let _sp = overrun_trace::span!("sweep.run", scenarios = scenarios.len());
    let cache = match opts.cache_dir.as_deref() {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    let shard_size = opts.shard_size.max(1);
    let num_shards = scenarios.len().div_ceil(shard_size);
    let id = GridId {
        grid: grid_key(scenarios),
        shard_size,
        scenarios: scenarios.len(),
    };

    // Checkpoint: resume only a checkpoint written for this exact grid.
    let mut completed: BTreeSet<usize> = BTreeSet::new();
    let mut ckpt: Option<Checkpoint> = None;
    if let Some(cache) = &cache {
        let path = cache.checkpoint_path();
        if opts.resume {
            if let Some(done) = checkpoint::load_completed(&path, &id)? {
                completed = done;
                ckpt = Some(Checkpoint::append_to(&path)?);
            }
        }
        if ckpt.is_none() {
            ckpt = Some(Checkpoint::create(&path, &id)?);
        }
    }

    let mut stats = SweepStats {
        scenarios: scenarios.len(),
        shards: num_shards,
        resumed_shards: completed.len(),
        ..SweepStats::default()
    };
    let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(scenarios.len());

    for shard in 0..num_shards {
        let lo = shard * shard_size;
        let hi = (lo + shard_size).min(scenarios.len());
        let slice = &scenarios[lo..hi];
        let shard_outcomes = overrun_par::try_parallel_map(slice, |i, s| {
            run_one(lo + i, s, cache.as_ref(), opts.retry, runner)
        })?;

        let mut clean = true;
        for o in &shard_outcomes {
            match &o.result {
                Ok(_) => {
                    if o.from_cache {
                        stats.cache_hits += 1;
                    } else {
                        stats.computed += 1;
                        if cache.is_some() {
                            stats.cache_misses += 1;
                        }
                        if o.result.as_ref().is_ok_and(|r| r.attempts > 1) {
                            stats.retried += 1;
                        }
                    }
                }
                Err(_) => {
                    clean = false;
                    stats.computed += 1;
                    stats.errors += 1;
                    if cache.is_some() {
                        stats.cache_misses += 1;
                    }
                }
            }
            if o.replaced_corrupt {
                stats.corrupt_records += 1;
            }
        }
        outcomes.extend(shard_outcomes);

        // Checkpoint only fully-successful shards, so reruns retry faults.
        if clean && !completed.contains(&shard) {
            if let Some(ck) = ckpt.as_mut() {
                ck.mark_done(shard)?;
            }
        }
        overrun_trace::progress!("sweep.shards_done", (shard + 1) as f64);
    }

    overrun_trace::counter!("sweep.cache_hits", stats.cache_hits);
    overrun_trace::counter!("sweep.cache_misses", stats.cache_misses);
    overrun_trace::counter!("sweep.computed", stats.computed);
    overrun_trace::counter!("sweep.errors", stats.errors);
    Ok(SweepReport { outcomes, stats })
}

/// One scenario: probe, certify under `catch_unwind`, retry once, store.
fn run_one(
    index: usize,
    s: &PreparedScenario,
    cache: Option<&ResultCache>,
    retry: bool,
    runner: CertifyRunner<'_>,
) -> Result<ScenarioOutcome, SweepError> {
    let mut replaced_corrupt = false;
    if let Some(cache) = cache {
        match cache.probe(s.key)? {
            CacheProbe::Hit(rec) => {
                return Ok(ScenarioOutcome {
                    index,
                    label: s.label.clone(),
                    key: s.key,
                    from_cache: true,
                    replaced_corrupt: false,
                    result: Ok(rec),
                });
            }
            CacheProbe::Miss => {}
            CacheProbe::Corrupt(_) => replaced_corrupt = true,
        }
    }

    let start = Instant::now();
    let mut attempts: u32 = 1;
    let mut result = attempt(s, &s.opts, runner);
    if result.is_err() && retry {
        attempts = 2;
        result = attempt(s, &tightened_budget(&s.opts), runner);
    }
    let elapsed_ms = start.elapsed().as_millis() as u64;

    match result {
        Ok(report) => {
            let rec = ScenarioRecord {
                key: s.key,
                crate_version: env!("CARGO_PKG_VERSION").to_string(),
                label: s.label.clone(),
                verdict: report.verdict,
                bounds: report.bounds,
                screen: report.screen,
                elapsed_ms,
                attempts,
            };
            if let Some(cache) = cache {
                cache.store(&rec, index as u64)?;
            }
            Ok(ScenarioOutcome {
                index,
                label: s.label.clone(),
                key: s.key,
                from_cache: false,
                replaced_corrupt,
                result: Ok(rec),
            })
        }
        Err(fault) => Ok(ScenarioOutcome {
            index,
            label: s.label.clone(),
            key: s.key,
            from_cache: false,
            replaced_corrupt,
            result: Err(ScenarioError {
                index,
                key: s.key,
                label: s.label.clone(),
                attempts,
                fault,
            }),
        }),
    }
}

/// One certification attempt with panic isolation.
fn attempt(
    s: &PreparedScenario,
    opts: &CertifyOptions,
    runner: CertifyRunner<'_>,
) -> Result<StabilityReport, ScenarioFault> {
    match catch_unwind(AssertUnwindSafe(|| runner(&s.plant, &s.table, opts))) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(ScenarioFault::Failed(e.to_string())),
        Err(payload) => Err(ScenarioFault::Panicked(panic_message(payload))),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
