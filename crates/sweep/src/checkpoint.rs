//! Shard-level sweep checkpointing.
//!
//! The checkpoint is an append-only text file inside the cache directory:
//! a header binding it to one exact grid (the FNV-128 hash over every
//! scenario key plus the shard size), then one `shard N ok` line per
//! completed shard, flushed as each shard finishes. A killed sweep leaves
//! at worst one torn trailing line, which the loader ignores; a checkpoint
//! whose header does not match the current grid is ignored wholesale (the
//! grid changed — resuming from it would be wrong). Shards containing
//! scenario faults are deliberately never marked, so a rerun retries them.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::hash::ContentHash;

/// Format magic + version line of a checkpoint file.
pub const CHECKPOINT_HEADER: &str = "overrun-sweep-checkpoint v1";

/// An open checkpoint file for appending shard completions.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: std::fs::File,
}

/// Identity of a grid for checkpoint validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridId {
    /// Hash over all scenario keys (order-sensitive).
    pub grid: ContentHash,
    /// Scenarios per shard.
    pub shard_size: usize,
    /// Total scenario count.
    pub scenarios: usize,
}

impl GridId {
    fn header_lines(&self) -> String {
        format!(
            "{CHECKPOINT_HEADER}\ngrid = {}\nshard_size = {}\nscenarios = {}\n",
            self.grid.to_hex(),
            self.shard_size,
            self.scenarios
        )
    }
}

impl Checkpoint {
    /// Creates (truncating) a fresh checkpoint for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the file cannot be written.
    pub fn create(path: &Path, id: &GridId) -> Result<Checkpoint, SweepError> {
        let mut file = std::fs::File::create(path).map_err(|e| SweepError::io(path, "create", e))?;
        file.write_all(id.header_lines().as_bytes())
            .map_err(|e| SweepError::io(path, "write", e))?;
        file.sync_data().map_err(|e| SweepError::io(path, "sync", e))?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Reopens an existing checkpoint for appending further shards.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the file cannot be opened.
    pub fn append_to(path: &Path) -> Result<Checkpoint, SweepError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| SweepError::io(path, "open", e))?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Records shard `index` as fully completed (all results cached),
    /// flushed to disk before returning.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the append fails.
    pub fn mark_done(&mut self, index: usize) -> Result<(), SweepError> {
        self.file
            .write_all(format!("shard {index} ok\n").as_bytes())
            .map_err(|e| SweepError::io(&self.path, "append", e))?;
        self.file
            .sync_data()
            .map_err(|e| SweepError::io(&self.path, "sync", e))
    }
}

/// Loads the set of completed shard indices recorded for `id`.
///
/// Returns `None` when the file is missing, its header does not match
/// `id` (stale grid), or the header itself is torn — all of which mean
/// "start fresh". A torn or alien *trailing* line after a valid header is
/// tolerated (the kill may have interrupted an append mid-line); it and
/// everything after it are ignored.
///
/// # Errors
///
/// Returns [`SweepError::Io`] for I/O failures other than not-found.
pub fn load_completed(path: &Path, id: &GridId) -> Result<Option<BTreeSet<usize>>, SweepError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SweepError::io(path, "read", e)),
    };
    let expected = id.header_lines();
    let Some(body) = text.strip_prefix(&expected) else {
        return Ok(None);
    };
    let mut done = BTreeSet::new();
    for line in body.lines() {
        let parsed = line
            .strip_prefix("shard ")
            .and_then(|r| r.strip_suffix(" ok"))
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n.checked_mul(id.shard_size).is_some_and(|s| s < id.scenarios));
        match parsed {
            Some(n) => {
                done.insert(n);
            }
            // Torn tail: stop at the first malformed line.
            None => break,
        }
    }
    Ok(Some(done))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "overrun-sweep-ckpt-test-{tag}-{}",
            std::process::id()
        ))
    }

    fn id() -> GridId {
        GridId {
            grid: ContentHash(0xfeed),
            shard_size: 4,
            scenarios: 10,
        }
    }

    #[test]
    fn round_trip_and_torn_tail() -> Result<(), SweepError> {
        let path = tmp_path("roundtrip");
        let id = id();
        let mut ck = Checkpoint::create(&path, &id)?;
        ck.mark_done(0)?;
        ck.mark_done(2)?;
        assert_eq!(
            load_completed(&path, &id)?,
            Some(BTreeSet::from([0, 2]))
        );

        // Simulate a kill mid-append: a torn trailing line is ignored.
        let mut text = std::fs::read_to_string(&path).map_err(|e| SweepError::io(&path, "read", e))?;
        text.push_str("shard 1 o");
        std::fs::write(&path, &text).map_err(|e| SweepError::io(&path, "write", e))?;
        assert_eq!(
            load_completed(&path, &id)?,
            Some(BTreeSet::from([0, 2]))
        );

        // Reopen-append continues the same file.
        let mut ck = Checkpoint::append_to(&path)?;
        ck.mark_done(1)?;
        // The torn fragment now glues onto the new line, corrupting only
        // that one entry — prior completions survive.
        let done = load_completed(&path, &id)?.ok_or_else(|| SweepError::Grid("gone".into()))?;
        assert!(done.contains(&0) && done.contains(&2));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn mismatched_grid_is_ignored() -> Result<(), SweepError> {
        let path = tmp_path("mismatch");
        let id = id();
        let mut ck = Checkpoint::create(&path, &id)?;
        ck.mark_done(0)?;
        let other = GridId {
            grid: ContentHash(0xbeef),
            ..id
        };
        assert_eq!(load_completed(&path, &other)?, None);
        let missing = tmp_path("never-created");
        assert_eq!(load_completed(&missing, &id)?, None);
        // Out-of-range shard indices are dropped.
        let huge = GridId {
            scenarios: 4,
            shard_size: 4,
            ..id
        };
        let mut ck2 = Checkpoint::create(&path, &huge)?;
        ck2.mark_done(0)?;
        ck2.mark_done(99)?;
        assert_eq!(load_completed(&path, &huge)?, Some(BTreeSet::from([0])));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }
}
