//! LU factorisation with partial pivoting.

use crate::{Error, Matrix, Result};

/// LU factorisation `P A = L U` with partial (row) pivoting.
///
/// The factorisation is computed once and can then solve any number of
/// right-hand sides, compute the determinant or the explicit inverse.
///
/// # Example
///
/// ```
/// use overrun_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::new(&a)?;
/// let b = Matrix::col_vec(&[10.0, 12.0]);
/// let x = lu.solve(&b)?;
/// // A x = b
/// assert!((&a * &x).approx_eq(&b, 1e-12, 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds L (unit diagonal
    /// implicit), upper triangle holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of factored row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used for determinants.
    perm_sign: f64,
    /// `true` if a pivot collapsed below the singularity threshold.
    singular: bool,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// Singularity is *not* an error at factorisation time — it is reported
    /// lazily by [`Lu::solve`] / [`Lu::inverse`] and eagerly by
    /// [`Lu::is_singular`], so that [`Lu::det`] can still return `0.0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] for rectangular input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare {
                op: "lu",
                dims: a.shape(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular = false;
        let scale = lu.max_abs();
        let tiny = f64::EPSILON * scale.max(f64::MIN_POSITIVE) * n as f64;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            if pivot.abs() <= tiny {
                singular = true;
                continue;
            }
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu[(i, j)] - m * lu[(k, j)];
                        lu[(i, j)] = v;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
            singular,
        })
    }

    /// Returns `true` if a zero (or negligible) pivot was encountered.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A X = B` for (possibly multi-column) `B`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Singular`] if the matrix was singular, or
    /// [`Error::DimensionMismatch`] if `B` has the wrong row count.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        if self.singular {
            return Err(Error::Singular);
        }
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve",
                lhs: self.lu.shape(),
                rhs: b.shape(),
            });
        }
        let m = b.cols();
        let mut x = Matrix::zeros(n, m);
        // Apply permutation: x = P b.
        for i in 0..n {
            for j in 0..m {
                x[(i, j)] = b[(self.perm[i], j)];
            }
        }
        // Forward substitution with unit-lower L.
        for k in 0..n {
            for i in (k + 1)..n {
                let l_ik = self.lu[(i, k)];
                if l_ik != 0.0 {
                    for j in 0..m {
                        let v = x[(i, j)] - l_ik * x[(k, j)];
                        x[(i, j)] = v;
                    }
                }
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            let pivot = self.lu[(k, k)];
            for j in 0..m {
                x[(k, j)] /= pivot;
            }
            for i in 0..k {
                let u_ik = self.lu[(i, k)];
                if u_ik != 0.0 {
                    for j in 0..m {
                        let v = x[(i, j)] - u_ik * x[(k, j)];
                        x[(i, j)] = v;
                    }
                }
            }
        }
        Ok(x)
    }

    /// Explicit inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Singular`] if the matrix was singular.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.lu.rows()))
    }
}

impl Matrix {
    /// Solves `self * X = B` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::NotSquare`], [`Error::Singular`] and
    /// [`Error::DimensionMismatch`] from the factorisation.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        Lu::new(self)?.solve(b)
    }

    /// Explicit inverse via LU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Singular`] when not invertible, or
    /// [`Error::NotSquare`] for rectangular input.
    pub fn inverse(&self) -> Result<Matrix> {
        Lu::new(self)?.inverse()
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] for rectangular input.
    pub fn det(&self) -> Result<f64> {
        Ok(Lu::new(self)?.det())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Matrix::col_vec(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        assert!((&a * &x).approx_eq(&b, 1e-12, 1e-12));
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.det().unwrap() + 2.0).abs() < 1e-12);
        assert!((Matrix::identity(5).det().unwrap() - 1.0).abs() < 1e-12);
        // permutation matrix with one swap: det = -1
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((p.det().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detection() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!(lu.is_singular());
        assert_eq!(lu.det(), 0.0);
        assert!(matches!(lu.solve(&Matrix::identity(2)), Err(Error::Singular)));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            &[4.0, -2.0, 1.0],
            &[3.0, 6.0, -4.0],
            &[2.0, 1.0, 8.0],
        ])
        .unwrap();
        let inv = a.inverse().unwrap();
        let eye = &a * &inv;
        assert!(eye.approx_eq(&Matrix::identity(3), 1e-12, 1e-12));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn multi_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 1.0], &[8.0, 0.0]]).unwrap();
        let x = a.solve(&b).unwrap();
        assert!((&a * &x).approx_eq(&b, 1e-12, 1e-12));
    }

    #[test]
    fn rhs_shape_mismatch() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        assert!(matches!(
            a.solve(&b),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = Matrix::col_vec(&[2.0, 3.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn hilbert_4x4_solve_accuracy() {
        // Mildly ill-conditioned: Hilbert 4x4, residual should still be tiny.
        let h = Matrix::from_fn(4, 4, |i, j| 1.0 / ((i + j + 1) as f64));
        let ones = Matrix::col_vec(&[1.0; 4]);
        let b = &h * &ones;
        let x = h.solve(&b).unwrap();
        assert!(x.approx_eq(&ones, 1e-8, 1e-8));
    }
}
