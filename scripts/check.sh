#!/usr/bin/env bash
# Full local gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> overrun-lint --deny (determinism / panic ratchet / unsafe / hot-path)"
cargo run --release -q -p overrun-lint -- --deny

echo "==> numeric sanitizer test leg (--features sanitize)"
cargo test --release -q -p overrun-linalg --features sanitize
cargo test --release -q -p overrun-jsr --features sanitize --test sanitize_poison

echo "==> determinism + screening equivalence at OVERRUN_THREADS=4"
OVERRUN_THREADS=4 cargo test --release -q -p overrun-control \
  --test par_determinism --test screening_equivalence

echo "==> trace feature stays OFF in the default dependency graph"
if cargo tree -p overrun-bench -e features -f "{p} {f}" --prefix none \
    | grep "^overrun-trace v" | grep -q ") trace"; then
  echo "error: the 'trace' feature leaked into the default build" >&2
  exit 1
fi

echo "==> overrun-trace unit tests (feature off and on)"
cargo test --release -q -p overrun-trace
cargo test --release -q -p overrun-trace --features trace

echo "==> instrumented crates build without default features (macros inert)"
cargo build -q -p overrun-jsr -p overrun-control -p overrun-rtsim \
  --no-default-features

echo "==> trace counters thread-invariant + JSONL round trip (--features trace)"
OVERRUN_THREADS=4 cargo test --release -q -p overrun-control \
  --features trace --test trace_counters

echo "==> table2 --trace smoke (--features trace)"
rm -f bench_results/table2.trace.jsonl
cargo run --release -q -p overrun-bench --features trace --bin table2 -- \
  --sequences 10 --jobs 10 --out bench_results --trace >/dev/null
test -s bench_results/table2.trace.jsonl

echo "==> sweep engine: record/checkpoint round-trip, fault isolation, kill/resume oracle"
cargo test --release -q -p overrun-sweep

echo "==> sweep CLI cache round-trip (ts_tradeoff, reduced): warm run is 100% hits, CSV data identical"
rm -rf bench_results/sweep_cache
cargo run --release -q -p overrun-bench --bin ts_tradeoff -- \
  --sequences 20 --jobs 10 --out bench_results --cache bench_results/sweep_cache >/dev/null
cp bench_results/ts_tradeoff.csv bench_results/ts_tradeoff.cold.csv
cargo run --release -q -p overrun-bench --bin ts_tradeoff -- \
  --sequences 20 --jobs 10 --out bench_results --cache bench_results/sweep_cache --resume \
  > bench_results/ts_tradeoff.warm.out
grep -q "sweep cache: 5 hits / 0 misses" bench_results/ts_tradeoff.warm.out
diff <(grep -v '^#' bench_results/ts_tradeoff.cold.csv) \
     <(grep -v '^#' bench_results/ts_tradeoff.csv)
rm -f bench_results/ts_tradeoff.cold.csv bench_results/ts_tradeoff.warm.out

echo "==> golden CSV data sections (refresh with UPDATE_GOLDEN=1 after intentional changes)"
cargo test --release -q -p overrun-bench --test golden_csv

echo "==> bench JSON smoke (table1, reduced)"
BENCH_JSON=bench_results/BENCH_results.json cargo run --release -q \
  -p overrun-bench --bin table1 -- --sequences 20 --jobs 10 --out bench_results
test -s bench_results/BENCH_results.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
