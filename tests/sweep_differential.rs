//! Differential oracle for the batch sweep engine: on a randomized grid of
//! small stable and unstable plants, every replay mode of the engine —
//! cold cache, warm cache, resumed-after-kill, 1 worker vs 4 workers —
//! must reproduce the direct `stability::certify` answer bit for bit, and
//! the Eq.-12 brute-force bounds must stay consistent with the Gripenberg
//! `[LB, UB]` interval on every scenario.
//!
//! Engine *mechanics* (fault isolation, checkpoint formats, corrupt-record
//! replacement) are covered with injected runners in
//! `crates/sweep/tests/engine_faults.rs`; this file always runs the real
//! certifier.

use std::path::PathBuf;
use std::sync::Mutex;

use overrun_control::stability::{self, CertifyOptions, StabilityReport};
use overrun_control::{plants, ContinuousSs};
use overrun_jsr::StabilityVerdict;
use overrun_linalg::Matrix;
use overrun_par::{derive_seed, set_thread_override};
use overrun_sweep::{
    run_sweep, DesignPolicy, GridSpec, PreparedScenario, ScenarioRecord, SweepOptions,
};

/// The thread override is process-global; every test that touches it holds
/// this lock and restores the default before releasing it (same idiom as
/// `tests/par_determinism.rs`).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "overrun-sweep-differential-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic pseudo-random draw in `[0, 1)` from the workspace's
/// SplitMix-style seed derivation — no RNG dependency needed.
fn rand_unit(seed: u64, index: u64) -> f64 {
    (derive_seed(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// A random controllable second-order SISO plant in companion form.
/// `a21` spans both signs, so the draw mixes open-loop stable and
/// unstable dynamics.
fn random_companion_plant(seed: u64) -> ContinuousSs {
    let a21 = -60.0 + 120.0 * rand_unit(seed, 0);
    let a22 = -6.0 + 8.0 * rand_unit(seed, 1);
    ContinuousSs::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[a21, a22]]).unwrap(),
        Matrix::col_vec(&[0.0, 1.0]),
        Matrix::row_vec(&[1.0, 0.0]),
    )
    .unwrap()
}

/// The randomized differential grid: two named plants plus two seeded
/// random draws, each certified under the adaptive PI design and under a
/// zero static gain (open loop — certified unstable whenever the plant
/// is). A reduced Gripenberg budget keeps the oracle fast; the comparison
/// only needs both sides to run the *same* budget.
fn differential_grid() -> Vec<PreparedScenario> {
    let master = 0x5eed_2021_u64;
    let spec = GridSpec {
        plants: vec![
            ("uso".into(), plants::unstable_second_order()),
            ("dint".into(), plants::double_integrator()),
            ("rand0".into(), random_companion_plant(derive_seed(master, 0))),
            ("rand1".into(), random_companion_plant(derive_seed(master, 1))),
        ],
        periods: vec![0.010],
        rmax_factors: vec![1.3],
        ns_values: vec![2],
        policies: vec![
            ("pi-adaptive".into(), DesignPolicy::PiAdaptive),
            (
                "zero-gain".into(),
                DesignPolicy::StaticGain(Matrix::zeros(1, 1)),
            ),
        ],
        opts: CertifyOptions {
            delta: 1e-4,
            max_depth: 6,
            max_products: 50_000,
            max_power: 3,
        },
    };
    // Random plants may admit no stabilising PI design — those draws are
    // simply not certifiable problems, so the grid drops them. The zero
    // gain always designs, so at least half the grid survives.
    let prepared: Vec<PreparedScenario> =
        spec.expand().iter().filter_map(|s| s.prepare().ok()).collect();
    assert!(
        prepared.len() >= 6,
        "expected most of the grid to design, got {}",
        prepared.len()
    );
    prepared
}

fn assert_record_matches(record: &ScenarioRecord, direct: &StabilityReport, what: &str) {
    assert_eq!(record.verdict, direct.verdict, "{what}: verdict");
    assert_eq!(
        record.bounds.lower.to_bits(),
        direct.bounds.lower.to_bits(),
        "{what}: lower bound bits"
    );
    assert_eq!(
        record.bounds.upper.to_bits(),
        direct.bounds.upper.to_bits(),
        "{what}: upper bound bits"
    );
}

/// The main oracle: direct certification at one thread is the reference;
/// the engine must match it bitwise cold, warm, after a simulated kill,
/// and at four workers.
#[test]
fn sweep_replay_modes_match_direct_certification() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let scenarios = differential_grid();
    let n = scenarios.len();

    // Reference: direct `stability::certify`, serial.
    set_thread_override(Some(1));
    let direct: Vec<StabilityReport> = scenarios
        .iter()
        .map(|s| stability::certify(&s.plant, &s.table, &s.opts).expect("direct certify"))
        .collect();

    // The grid genuinely mixes outcomes: the zero-gain scenarios on the
    // open-loop-unstable plants are certified unstable, and at least one
    // adaptive design is certified stable.
    assert!(
        direct.iter().any(|r| r.verdict == StabilityVerdict::Stable),
        "grid has no certified-stable scenario"
    );
    assert!(
        direct
            .iter()
            .any(|r| r.verdict == StabilityVerdict::Unstable),
        "grid has no certified-unstable scenario"
    );

    // Cold cache, one worker: recomputes everything, matches the direct
    // answers including the screening statistics (same thread count).
    let dir = tmp_dir("replay");
    let opts = SweepOptions {
        cache_dir: Some(dir.clone()),
        shard_size: 3,
        resume: true,
        ..SweepOptions::default()
    };
    let cold = run_sweep(&scenarios, &opts).expect("cold sweep");
    assert_eq!(cold.stats.computed, n as u64);
    assert_eq!(cold.stats.errors, 0);
    for (o, d) in cold.outcomes.iter().zip(&direct) {
        let rec = o.result.as_ref().expect("cold outcome");
        assert_record_matches(rec, d, "cold");
        assert_eq!(rec.screen, d.screen, "cold: screen stats at one worker");
    }

    // Warm cache: every verdict replays from disk, none recomputes, and
    // the replayed records still match the direct answers bitwise.
    let warm = run_sweep(&scenarios, &opts).expect("warm sweep");
    assert_eq!(warm.stats.cache_hits, n as u64);
    assert_eq!(warm.stats.computed, 0);
    for (o, d) in warm.outcomes.iter().zip(&direct) {
        assert_record_matches(o.result.as_ref().expect("warm outcome"), d, "warm");
    }

    // Simulated kill: drop every record past the first shard and
    // leave a checkpoint holding only shard 0 plus a torn tail, exactly
    // what a `kill -9` mid-shard leaves behind. The resumed sweep must
    // converge to the same bits as the uninterrupted runs.
    for o in &cold.outcomes[3..] {
        std::fs::remove_file(dir.join(format!("{}.record", o.key.to_hex())))
            .expect("remove record");
    }
    let ckpt = dir.join("checkpoint.sweep");
    let text = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    let pos = text.find("shard 0 ok\n").expect("has shard 0") + "shard 0 ok\n".len();
    std::fs::write(&ckpt, format!("{}shard 1 o", &text[..pos])).expect("truncate checkpoint");

    let resumed = run_sweep(&scenarios, &opts).expect("resumed sweep");
    assert_eq!(resumed.stats.resumed_shards, 1);
    assert_eq!(resumed.stats.cache_hits, 3);
    assert_eq!(resumed.stats.computed, n as u64 - 3);
    for (o, d) in resumed.outcomes.iter().zip(&direct) {
        assert_record_matches(o.result.as_ref().expect("resumed outcome"), d, "resumed");
    }

    // Four workers, fresh cache: scheduling must not leak into the
    // certified bounds (screen counters legitimately differ across worker
    // counts, so only the contract — bounds and verdict — is compared).
    set_thread_override(Some(4));
    let dir4 = tmp_dir("replay-mt");
    let wide = run_sweep(
        &scenarios,
        &SweepOptions {
            cache_dir: Some(dir4.clone()),
            shard_size: 3,
            ..SweepOptions::default()
        },
    )
    .expect("four-worker sweep");
    assert_eq!(wide.stats.computed, n as u64);
    for (o, d) in wide.outcomes.iter().zip(&direct) {
        assert_record_matches(o.result.as_ref().expect("wide outcome"), d, "four workers");
    }

    set_thread_override(None);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir4);
}

/// The Eq.-12 brute-force enumeration and the Gripenberg certificate are
/// independent bound computations on the same lifted set; both intervals
/// contain the true JSR, so they must overlap on every scenario of the
/// randomized grid. (Neither interval need *contain* the other: the
/// brute-force lower bound at a fixed depth can exceed Gripenberg's, and
/// vice versa for the uppers.)
#[test]
fn bruteforce_interval_is_consistent_with_gripenberg() {
    for s in differential_grid() {
        let g = stability::certify(&s.plant, &s.table, &s.opts)
            .expect("certify")
            .bounds;
        let bf = stability::eq12_bounds(&s.plant, &s.table, 4).expect("eq12 bounds");
        assert!(bf.lower <= bf.upper + 1e-9, "{}: bf={bf:?}", s.label);
        assert!(
            g.lower <= bf.upper + 1e-9,
            "{}: gripenberg lower above bruteforce upper — g={g:?} bf={bf:?}",
            s.label
        );
        assert!(
            bf.lower <= g.upper + 1e-9,
            "{}: bruteforce lower above gripenberg upper — g={g:?} bf={bf:?}",
            s.label
        );
    }
}
