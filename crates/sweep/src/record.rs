//! Versioned, human-readable cache records with byte-exact round-trip.
//!
//! Each record serializes one certified scenario as a line-oriented text
//! file (same discipline as the trace JSONL export): every `f64` is stored
//! as its exact IEEE-754 bit pattern (`0x…` hex) followed by a `#` comment
//! with the human-readable value, so `parse(serialize(r)) == r` holds
//! bit-for-bit and `serialize(parse(s)) == s` holds byte-for-byte on any
//! file this module wrote. The format is strict: unknown lines, reordered
//! fields, or missing fields are parse errors — a corrupt cache entry is
//! detected, never silently half-read.

use std::path::Path;

use overrun_jsr::{JsrBounds, ScreenStats, StabilityVerdict};

use crate::error::SweepError;
use crate::hash::ContentHash;

/// Format magic + version line of a cache record.
pub const RECORD_HEADER: &str = "overrun-sweep-record v1";

/// One memoized certification result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// Content key of the inputs (plant + table + options + crate version).
    pub key: ContentHash,
    /// Version of `overrun-sweep` that wrote the record.
    pub crate_version: String,
    /// Human label of the scenario ("pmsm r1.6 ns2 adaptive", ...).
    pub label: String,
    /// Certified verdict.
    pub verdict: StabilityVerdict,
    /// Certified JSR bounds `[lower, upper]`.
    pub bounds: JsrBounds,
    /// Norm-screening counters of the certification run.
    pub screen: ScreenStats,
    /// Wall-clock milliseconds the certification took (metadata only —
    /// nondeterministic, excluded from the content key).
    pub elapsed_ms: u64,
    /// Certification attempts (2 = succeeded on the tightened-budget
    /// retry after a first fault).
    pub attempts: u32,
}

fn verdict_str(v: StabilityVerdict) -> &'static str {
    match v {
        StabilityVerdict::Stable => "stable",
        StabilityVerdict::Unstable => "unstable",
        StabilityVerdict::Unknown => "unknown",
    }
}

fn parse_verdict(s: &str) -> Option<StabilityVerdict> {
    match s {
        "stable" => Some(StabilityVerdict::Stable),
        "unstable" => Some(StabilityVerdict::Unstable),
        "unknown" => Some(StabilityVerdict::Unknown),
        _ => None,
    }
}

/// Escapes a label so it fits on one line (`\\`, `\n`, `\r` escapes).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_label(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Renders an `f64` line: exact bit pattern plus a readable comment.
fn f64_line(name: &str, v: f64) -> String {
    format!("{name} = 0x{:016x} # {v:?}\n", v.to_bits())
}

impl ScenarioRecord {
    /// Serializes the record to its canonical text form.
    pub fn serialize(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(RECORD_HEADER);
        s.push('\n');
        s.push_str(&format!("key = {}\n", self.key.to_hex()));
        s.push_str(&format!("crate = {}\n", self.crate_version));
        s.push_str(&format!("label = {}\n", escape_label(&self.label)));
        s.push_str(&format!("verdict = {}\n", verdict_str(self.verdict)));
        s.push_str(&f64_line("lower", self.bounds.lower));
        s.push_str(&f64_line("upper", self.bounds.upper));
        s.push_str(&format!("elapsed_ms = {}\n", self.elapsed_ms));
        s.push_str(&format!("attempts = {}\n", self.attempts));
        s.push_str(&format!("screen.nodes = {}\n", self.screen.nodes));
        s.push_str(&format!("screen.exact_norms = {}\n", self.screen.exact_norms));
        s.push_str(&format!("screen.cached_norms = {}\n", self.screen.cached_norms));
        s.push_str(&format!("screen.exact_eigs = {}\n", self.screen.exact_eigs));
        s.push_str(&format!("screen.skipped_norms = {}\n", self.screen.skipped_norms));
        s.push_str(&format!("screen.skipped_eigs = {}\n", self.screen.skipped_eigs));
        s.push_str(&format!("screen.lb_depth = {}\n", self.screen.lb_depth));
        s
    }

    /// Parses the canonical text form. Strict: field order, names and
    /// framing must match [`ScenarioRecord::serialize`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Parse`] (tagged with `path` for diagnostics)
    /// on any deviation from the canonical form.
    pub fn parse(text: &str, path: &Path) -> Result<ScenarioRecord, SweepError> {
        let mut p = Parser {
            lines: text.lines().enumerate(),
            path,
        };
        p.expect_literal(RECORD_HEADER)?;
        let key_hex = p.field("key")?;
        let key = ContentHash::from_hex(&key_hex)
            .ok_or_else(|| p.err(2, "key is not 32 hex digits"))?;
        let crate_version = p.field("crate")?;
        let label = unescape_label(&p.field("label")?)
            .ok_or_else(|| p.err(4, "bad escape in label"))?;
        let verdict_raw = p.field("verdict")?;
        let verdict = parse_verdict(&verdict_raw)
            .ok_or_else(|| p.err(5, "verdict must be stable|unstable|unknown"))?;
        let lower = p.f64_field("lower")?;
        let upper = p.f64_field("upper")?;
        let elapsed_ms = p.u64_field("elapsed_ms")?;
        let attempts = p.u64_field("attempts")? as u32;
        let screen = ScreenStats {
            nodes: p.u64_field("screen.nodes")?,
            exact_norms: p.u64_field("screen.exact_norms")?,
            cached_norms: p.u64_field("screen.cached_norms")?,
            exact_eigs: p.u64_field("screen.exact_eigs")?,
            skipped_norms: p.u64_field("screen.skipped_norms")?,
            skipped_eigs: p.u64_field("screen.skipped_eigs")?,
            lb_depth: p.u64_field("screen.lb_depth")? as usize,
        };
        p.expect_end()?;
        Ok(ScenarioRecord {
            key,
            crate_version,
            label,
            verdict,
            bounds: JsrBounds { lower, upper },
            screen,
            elapsed_ms,
            attempts,
        })
    }
}

/// Minimal strict line parser shared by record and checkpoint formats.
struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    path: &'a Path,
}

impl Parser<'_> {
    fn err(&self, line: usize, msg: impl Into<String>) -> SweepError {
        SweepError::Parse {
            path: self.path.to_path_buf(),
            line,
            msg: msg.into(),
        }
    }

    fn next_line(&mut self) -> Result<(usize, &str), SweepError> {
        match self.lines.next() {
            Some((i, l)) => Ok((i + 1, l)),
            None => Err(self.err(0, "unexpected end of file")),
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), SweepError> {
        let (n, line) = self.next_line()?;
        if line != lit {
            return Err(self.err(n, format!("expected `{lit}`")));
        }
        Ok(())
    }

    /// Reads `name = value` verbatim (no comment handling — only the f64
    /// lines carry ` # ` comments, and a label may legitimately contain
    /// that byte sequence).
    fn field(&mut self, name: &str) -> Result<String, SweepError> {
        let (n, line) = self.next_line()?;
        let prefix = format!("{name} = ");
        let Some(rest) = line.strip_prefix(&prefix) else {
            return Err(self.err(n, format!("expected field `{name}`")));
        };
        Ok(rest.to_string())
    }

    fn f64_field(&mut self, name: &str) -> Result<f64, SweepError> {
        let raw = self.field(name)?;
        // Strip the human-readable ` # value` comment.
        let raw = match raw.find(" # ") {
            Some(pos) => &raw[..pos],
            None => raw.as_str(),
        };
        let hex = raw
            .strip_prefix("0x")
            .ok_or_else(|| self.err(0, format!("field `{name}` must be 0x-hex f64 bits")))?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| self.err(0, format!("field `{name}`: bad hex bits")))?;
        Ok(f64::from_bits(bits))
    }

    fn u64_field(&mut self, name: &str) -> Result<u64, SweepError> {
        let raw = self.field(name)?;
        raw.parse::<u64>()
            .map_err(|_| self.err(0, format!("field `{name}` must be an unsigned integer")))
    }

    fn expect_end(&mut self) -> Result<(), SweepError> {
        match self.lines.next() {
            None => Ok(()),
            Some((i, _)) => Err(self.err(i + 1, "trailing content after record")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> ScenarioRecord {
        ScenarioRecord {
            key: ContentHash(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978),
            crate_version: "0.1.0".to_string(),
            label: "pmsm r1.6 ns2 \\weird\nlabel # not a comment".to_string(),
            verdict: StabilityVerdict::Stable,
            bounds: JsrBounds {
                lower: 0.987_654_321,
                upper: 0.999_999_999_1,
            },
            screen: ScreenStats {
                nodes: 12_345,
                exact_norms: 678,
                cached_norms: 90,
                exact_eigs: 12,
                skipped_norms: 11_000,
                skipped_eigs: 500,
                lb_depth: 7,
            },
            elapsed_ms: 4321,
            attempts: 2,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() -> Result<(), SweepError> {
        let path = PathBuf::from("test.record");
        let r = sample();
        let text = r.serialize();
        let back = ScenarioRecord::parse(&text, &path)?;
        assert_eq!(back, r);
        assert_eq!(back.bounds.lower.to_bits(), r.bounds.lower.to_bits());
        // Byte-exact the other way: re-serializing reproduces the file.
        assert_eq!(back.serialize(), text);
        Ok(())
    }

    #[test]
    fn parse_is_strict() {
        let path = PathBuf::from("test.record");
        let good = sample().serialize();
        // Truncation, field rename, bad verdict, trailing junk: all rejected.
        let cases = [
            good[..good.len() / 2].to_string(),
            good.replacen("lower =", "loWer =", 1),
            good.replacen("= stable", "= wobbly", 1),
            format!("{good}extra\n"),
            good.replacen(RECORD_HEADER, "overrun-sweep-record v9", 1),
            good.replacen("key = 0123", "key = zzzz", 1),
        ];
        for (i, text) in cases.iter().enumerate() {
            assert!(
                ScenarioRecord::parse(text, &path).is_err(),
                "case {i} should fail"
            );
        }
    }

    #[test]
    fn nonfinite_bounds_survive() -> Result<(), SweepError> {
        let path = PathBuf::from("test.record");
        let mut r = sample();
        r.bounds = JsrBounds {
            lower: f64::INFINITY,
            upper: f64::NAN,
        };
        let back = ScenarioRecord::parse(&r.serialize(), &path)?;
        assert!(back.bounds.lower.is_infinite());
        assert_eq!(back.bounds.upper.to_bits(), r.bounds.upper.to_bits());
        Ok(())
    }
}
