use std::fmt;

/// Error type for the real-time simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is invalid (zero period, `Ns = 0`, …).
    InvalidConfig(String),
    /// The task set is not schedulable / the RTA iteration diverged.
    Unschedulable {
        /// Task whose response time exceeded its analysis bound.
        task: String,
    },
    /// A simulation invariant was violated (indicates a bug upstream).
    Invariant(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Unschedulable { task } => {
                write!(f, "task `{task}` is unschedulable under the given bound")
            }
            Error::Invariant(msg) => write!(f, "simulation invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
