//! A minimal, dependency-free Rust lexer.
//!
//! The linter's rules only need a *token stream with line numbers* that is
//! reliably blind to the insides of comments, string literals, raw strings,
//! byte strings and char literals — precisely the places where a naive
//! `grep` for `unwrap(` or `HashMap` produces false positives. Full parsing
//! (`syn`) is deliberately out of scope: the workspace builds offline with
//! vendored std-only stand-ins, and every rule below is expressible over
//! tokens plus brace depth.
//!
//! Comments are preserved as [`Tok::Comment`] tokens (the unsafe-hygiene
//! rule looks for `// SAFETY:` and the suppression scanner for
//! `// lint: allow(<rule>)`), everything else becomes [`Tok::Ident`],
//! [`Tok::Lifetime`], or single-character [`Tok::Punct`] tokens. Literals
//! are dropped: no rule needs their contents, only the guarantee that they
//! never leak tokens.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: usize,
    /// Token payload.
    pub tok: Tok,
}

/// Token kinds the rule engine consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// A lifetime (`'a`) — kept distinct so `'a` never looks like a char
    /// literal and never contributes an `Ident`.
    Lifetime(String),
    /// Any single punctuation character (`{`, `}`, `!`, `:`, `.`, …).
    Punct(char),
    /// A comment, with its full text (including the `//` / `/*` markers).
    Comment(String),
}

/// Lexes `source` into a token stream. Never fails: unterminated literals
/// simply consume to end-of-file, which is what the compiler would reject
/// anyway — the linter runs on code that builds.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.char_indices().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: usize, tok: Tok) {
        self.out.push(Token { line, tok });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_literal();
                }
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphanumeric() || c == '_' => self.ident_or_number(line),
                _ => {
                    self.bump();
                    self.push(line, Tok::Punct(c));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, Tok::Comment(text));
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(line, Tok::Comment(text));
    }

    /// Consumes a `"…"` literal body (opening quote already consumed).
    fn string_literal(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, including \" and \\
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`. Returns `true`
    /// if a literal was consumed; `false` means the `r`/`b` starts a plain
    /// identifier and the caller should lex it as such.
    fn raw_or_byte_literal(&mut self, _line: usize) -> bool {
        let c0 = self.peek(0);
        let (mut ahead, mut raw) = (1usize, c0 == Some('r'));
        if c0 == Some('b') {
            if self.peek(1) == Some('r') {
                ahead = 2;
                raw = true;
            } else if self.peek(1) == Some('\'') {
                // byte char literal b'x'
                self.bump(); // b
                self.bump(); // '
                if self.peek(0) == Some('\\') {
                    self.bump();
                }
                self.bump(); // the byte
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                return true;
            }
        }
        // Count leading hashes of a raw string.
        let mut hashes = 0usize;
        while raw && self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            // Not a (raw) string start: `r` / `b` identifier, or raw
            // identifier `r#foo` — lex as identifier.
            return false;
        }
        if !raw && hashes == 0 && c0 == Some('r') {
            return false; // unreachable: raw implied by c0 == 'r'
        }
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        if raw {
            // Scan for `"` followed by `hashes` hashes; no escapes in raw.
            'scan: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            self.string_literal();
        }
        true
    }

    /// Disambiguates `'a` (lifetime) from `'x'` (char literal).
    fn char_or_lifetime(&mut self, line: usize) {
        self.bump(); // the opening quote
        let c1 = self.peek(0);
        let c2 = self.peek(1);
        let is_lifetime = matches!(c1, Some(c) if c.is_alphabetic() || c == '_')
            && c2 != Some('\'');
        if is_lifetime {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, Tok::Lifetime(name));
        } else {
            // Char literal: consume (possibly escaped) char then closing '.
            if self.peek(0) == Some('\\') {
                self.bump();
                // \u{...} escapes contain braces; consume until the quote.
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        return;
                    }
                }
                return;
            }
            self.bump();
            if self.peek(0) == Some('\'') {
                self.bump();
            }
        }
    }

    fn ident_or_number(&mut self, line: usize) {
        let mut word = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Numbers produce no rule-relevant tokens; drop them so `1e9` never
        // looks like an identifier. Leading digit ⇒ numeric literal.
        if !word.starts_with(|c: char| c.is_ascii_digit()) {
            self.push(line, Tok::Ident(word));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_leak_nothing() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* a nested */ block */
            let s = "unwrap() inside a string";
            let r = r#"raw "quoted" HashMap"#;
            let b = b"bytes with unwrap()";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|s| s == "unwrap" || s == "HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let n = '\\n'; x }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 3);
        // The char literals must not have eaten the closing brace.
        assert!(toks.iter().any(|t| t.tok == Tok::Punct('}')));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let toks = lex(src);
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let ids = idents(r#"let s = "a \" unwrap() \" b"; after();"#);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.iter().any(|s| s == "unwrap"));
    }

    #[test]
    fn comments_preserved_with_text() {
        let toks = lex("// SAFETY: fine\nunsafe {}");
        assert!(matches!(
            &toks[0].tok,
            Tok::Comment(c) if c.contains("SAFETY:")
        ));
        assert_eq!(toks[1].tok, Tok::Ident("unsafe".into()));
    }

    #[test]
    fn numbers_dropped_exponents_too() {
        let ids = idents("let x = 1e9 + 0x_ff + 2.5f64; y");
        // `f64` suffix glued to the number is part of the numeric word and
        // dropped with it; standalone `y` survives.
        assert_eq!(ids, vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_identifier_is_identifier() {
        // r#type is a raw identifier, not a raw string.
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"r".to_string()) || ids.contains(&"type".to_string()));
    }
}
