//! `overrun-lint` — a source-level static analyzer enforcing the
//! workspace's determinism and panic-freedom invariants.
//!
//! The repo's core guarantee — bitwise-identical `[LB, UB]` JSR
//! certificates at any thread count — rests on conventions that no
//! compiler checks: no unordered-iteration containers or wall-clock reads
//! in the certified crates, no allocation in the de-allocated hot paths,
//! a panic-site count that only goes down. This crate turns those
//! conventions into machine-checked rules, built on a minimal hand-rolled
//! lexer ([`lexer`]) instead of `syn` so the workspace keeps building
//! offline with zero external dependencies.
//!
//! Rules (configured by `lint.toml`, see [`config`]):
//!
//! * **determinism** — forbidden identifiers (`HashMap`, `HashSet`,
//!   `SystemTime`, …) and paths (`Instant::now`, `std::env`, …) in the
//!   crates marked `determinism = true`;
//! * **panic-freedom** — `unwrap()` / `expect(…)` / `panic!` sites per
//!   ratcheted crate, compared against the committed baseline
//!   ([`baseline`]) which may only decrease;
//! * **unsafe-hygiene** — every `unsafe` token requires a `// SAFETY:`
//!   comment on the same line or in the three lines above it;
//! * **hotpath** — functions registered in `lint.toml` may not contain
//!   allocation tokens (`Vec::new`, `vec!`, `to_vec`, `collect`, `clone`,
//!   `Box::new`).
//!
//! Inline suppressions: `// lint: allow(<rule>)` on the offending line or
//! the line above silences one rule there; suppressions are themselves
//! counted and ratcheted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod config;
pub mod lexer;
mod rules;

pub use baseline::{Baseline, Counts};
pub use config::Config;

/// Rule identifiers, as they appear in diagnostics and suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Forbidden nondeterminism sources.
    Determinism,
    /// Panic-site ratchet regression.
    PanicFreedom,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeHygiene,
    /// Allocation inside a registered hot-path function.
    Hotpath,
}

impl Rule {
    /// The kebab-case name used in output and `allow(…)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicFreedom => "panic-freedom",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::Hotpath => "hotpath",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, printable as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that fired.
    pub rule: Rule,
    /// File, relative to the config root.
    pub file: PathBuf,
    /// 1-based line (0 for crate-level findings such as ratchet
    /// regressions).
    pub line: usize,
    /// The offending token or count, verbatim.
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} ({})",
            self.file.display(),
            self.line,
            self.rule,
            self.message,
            self.token
        )
    }
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that must be fixed (or suppressed) for `--deny` to pass.
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by `// lint: allow(…)` — reported, counted,
    /// ratcheted, but not fatal.
    pub suppressed: Vec<Diagnostic>,
    /// Current per-crate ratchet counts.
    pub counts: BTreeMap<String, Counts>,
    /// Baseline the counts were compared against.
    pub baseline: Baseline,
    /// Crates whose counts dropped below baseline: available tightenings.
    pub improvements: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when `--deny` should exit 0: no violations (ratchet
    /// regressions are violations too — see [`rules::ratchet_check`]).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the machine-readable JSON form (hand-rolled: the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn diag(d: &Diagnostic) -> String {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"token\":\"{}\",\"message\":\"{}\"}}",
                d.rule,
                esc(&d.file.display().to_string()),
                d.line,
                esc(&d.token),
                esc(&d.message)
            )
        }
        let violations: Vec<String> = self.violations.iter().map(diag).collect();
        let suppressed: Vec<String> = self.suppressed.iter().map(diag).collect();
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(name, c)| {
                let base = self.baseline.crates.get(name).copied().unwrap_or_default();
                format!(
                    "\"{}\":{{\"panic_sites\":{},\"suppressions\":{},\"baseline_panic_sites\":{},\"baseline_suppressions\":{}}}",
                    esc(name), c.panic_sites, c.suppressions, base.panic_sites, base.suppressions
                )
            })
            .collect();
        format!(
            "{{\"clean\":{},\"files_scanned\":{},\"violations\":[{}],\"suppressed\":[{}],\"counts\":{{{}}}}}",
            self.is_clean(),
            self.files_scanned,
            violations.join(","),
            suppressed.join(","),
            counts.join(",")
        )
    }
}

/// Runs every configured rule over every registered crate.
///
/// # Errors
///
/// I/O failures (unreadable source roots) and malformed baseline files are
/// reported as `Err`; rule findings are data, not errors.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let baseline = Baseline::load(&cfg.root.join(&cfg.baseline))?;
    let mut report = Report::default();
    for krate in &cfg.crates {
        let root = cfg.root.join(&krate.path);
        let files = collect_rs_files(&root)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?;
        if files.is_empty() {
            return Err(format!(
                "crate `{}`: no .rs files under {}",
                krate.name,
                root.display()
            ));
        }
        let mut counts = Counts::default();
        let mut hotpath_seen: BTreeMap<String, usize> = BTreeMap::new();
        for file in &files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(&cfg.root)
                .unwrap_or(file)
                .to_path_buf();
            let tokens = lexer::lex(&text);
            let ctx = rules::FileContext::new(cfg, krate, &rel, &tokens);
            counts.suppressions += ctx.suppression_count();
            rules::check_file(&ctx, &mut report, &mut counts, &mut hotpath_seen);
            report.files_scanned += 1;
        }
        rules::ratchet_check(cfg, krate, &counts, &baseline, &mut report);
        rules::hotpath_coverage_check(cfg, krate, &hotpath_seen, &mut report);
        report.counts.insert(krate.name.clone(), counts);
    }
    report.baseline = baseline;
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `*.rs` files under `root`, sorted for
/// deterministic diagnostics (the linter holds itself to the workspace's
/// own standard).
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<_>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
