//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`Rng`] (`gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`) and [`rngs::SmallRng`].
//!
//! The build container has no network access and no crates.io cache, so the
//! real `rand` cannot be resolved; this crate is wired in through
//! a path dependency. The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `SmallRng`, but every
//! consumer in this repository only relies on determinism per seed and on
//! distribution quality, never on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Expanded SplitMix64 step: advances `state` and returns the next output.
/// Public so seed-derivation utilities can reuse the exact same mixing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be sampled uniformly from a bounded interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// `u64` bits → uniform f64 in `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `[0, span]` (Lemire multiply-shift with
/// rejection); `span == u64::MAX` degenerates to a raw draw.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let s = span + 1;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (s as u128);
        let low = m as u64;
        if low < s {
            let threshold = s.wrapping_neg() % s;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $via:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_inclusive(rng, lo, hi - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Width computed in the unsigned domain so signed and
                // full-width ranges cannot overflow.
                let span = (hi as $via).wrapping_sub(lo as $via) as u64;
                let draw = uniform_u64_inclusive(rng, span);
                ((lo as $via).wrapping_add(draw as $via)) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the open endpoint.
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (deterministic; decorrelates sequential seeds).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            for (b, w) in chunk.iter_mut().zip(word.iter()) {
                *b = *w;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    /// The "standard" generator; here an alias of [`SmallRng`] — this
    /// stand-in makes no cryptographic claims.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| a.gen_range(0u64..=u64::MAX) == c.gen_range(0u64..=u64::MAX))
            .count();
        assert!(same < 4, "streams for different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
            let w = rng.gen_range(5i64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "p=0.3 drew {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_int_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
