//! Discrete algebraic Riccati equation (DARE), LQR and Kalman gains.

use crate::{Error, Matrix, Result};

/// Result of solving a discrete algebraic Riccati equation.
#[derive(Debug, Clone)]
pub struct DareSolution {
    /// The stabilising solution `X = Xᵀ ≥ 0`.
    pub x: Matrix,
    /// Number of doubling iterations used.
    pub iterations: usize,
    /// Max-abs residual of `AᵀXA − X − AᵀXB(R+BᵀXB)⁻¹BᵀXA + Q`.
    pub residual: f64,
}

/// Solves the discrete algebraic Riccati equation
///
/// ```text
/// AᵀXA − X − AᵀXB (R + BᵀXB)⁻¹ BᵀXA + Q = 0
/// ```
///
/// with the **structure-preserving doubling algorithm** (SDA). Convergence
/// is quadratic under the standard assumptions (`(A, B)` stabilisable,
/// `(A, Q^{1/2})` detectable, `R ≻ 0`).
///
/// # Errors
///
/// * [`Error::NotSquare`] / [`Error::DimensionMismatch`] on bad shapes.
/// * [`Error::Singular`] when `R` or an inner `(I + G H)` factor is
///   singular.
/// * [`Error::NoConvergence`] when the iteration stalls (typically a
///   non-stabilisable pair).
///
/// # Example
///
/// ```
/// use overrun_linalg::{solve_dare, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// // Scalar DARE with a=b=q=r=1 has the golden ratio as solution.
/// let one = Matrix::identity(1);
/// let sol = solve_dare(&one, &one, &one, &one)?;
/// assert!((sol.x[(0, 0)] - (1.0 + 5.0_f64.sqrt()) / 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_dare(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<DareSolution> {
    let n = a.rows();
    if !a.is_square() {
        return Err(Error::NotSquare {
            op: "dare",
            dims: a.shape(),
        });
    }
    if b.rows() != n {
        return Err(Error::DimensionMismatch {
            op: "dare(B)",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if q.shape() != (n, n) {
        return Err(Error::DimensionMismatch {
            op: "dare(Q)",
            lhs: a.shape(),
            rhs: q.shape(),
        });
    }
    let m = b.cols();
    if r.shape() != (m, m) {
        return Err(Error::DimensionMismatch {
            op: "dare(R)",
            lhs: (m, m),
            rhs: r.shape(),
        });
    }

    // G = B R⁻¹ Bᵀ
    let r_inv_bt = r.solve(&b.transpose())?;
    let mut g = b.matmul(&r_inv_bt)?;
    g.symmetrize();
    let mut h = q.clone();
    h.symmetrize();
    let mut a_k = a.clone();

    let eye = Matrix::identity(n);
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..100 {
        iterations = it + 1;
        // W = I + G H; all three updates share W⁻¹.
        let w = eye.add_mat(&g.matmul(&h)?)?;
        let lu = crate::Lu::new(&w)?;
        let w_inv_a = lu.solve(&a_k)?; // W⁻¹ A_k
        let w_inv_g = lu.solve(&g)?; // W⁻¹ G_k

        let a_next = a_k.matmul(&w_inv_a)?;
        let mut g_next = g.add_mat(&a_k.matmul(&w_inv_g)?.matmul(&a_k.transpose())?)?;
        let mut h_next = h.add_mat(&a_k.transpose().matmul(&h.matmul(&w_inv_a)?)?)?;
        g_next.symmetrize();
        h_next.symmetrize();

        let delta = h_next.sub_mat(&h)?.max_abs();
        let scale = h_next.max_abs().max(1.0);
        a_k = a_next;
        g = g_next;
        h = h_next;
        if !h.is_finite() {
            return Err(Error::NoConvergence {
                algorithm: "sda_dare",
                iterations,
            });
        }
        if delta <= 1e-14 * scale {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(Error::NoConvergence {
            algorithm: "sda_dare",
            iterations,
        });
    }

    let residual = dare_residual(a, b, q, r, &h)?;
    Ok(DareSolution {
        x: h,
        iterations,
        residual,
    })
}

/// Max-abs residual of the DARE at a candidate solution `x`.
fn dare_residual(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix, x: &Matrix) -> Result<f64> {
    let atxa = a.transpose().matmul(&x.matmul(a)?)?;
    let btxb = b.transpose().matmul(&x.matmul(b)?)?;
    let btxa = b.transpose().matmul(&x.matmul(a)?)?;
    let inner = r.add_mat(&btxb)?;
    let term = btxa.transpose().matmul(&inner.solve(&btxa)?)?;
    Ok(atxa.sub_mat(x)?.sub_mat(&term)?.add_mat(q)?.max_abs())
}

/// Discrete-time LQR: returns the gain `K` minimising
/// `Σ xᵀQx + uᵀRu` for `x[k+1] = A x[k] + B u[k]`, `u = −K x`.
///
/// # Errors
///
/// Propagates [`solve_dare`] errors; additionally [`Error::Singular`] if
/// `R + BᵀXB` is singular.
///
/// # Example
///
/// ```
/// use overrun_linalg::{dlqr, spectral_radius, Matrix};
///
/// # fn main() -> Result<(), overrun_linalg::Error> {
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::col_vec(&[0.005, 0.1]);
/// let (k, _x) = dlqr(&a, &b, &Matrix::identity(2), &Matrix::identity(1))?;
/// let closed = &a - &b * &k;
/// assert!(spectral_radius(&closed)? < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn dlqr(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<(Matrix, Matrix)> {
    let (k, sol) = dlqr_solution(a, b, q, r)?;
    Ok((k, sol.x))
}

/// Like [`dlqr`], but returning the full [`DareSolution`] alongside the
/// gain so callers can surface solver diagnostics (doubling iterations,
/// final residual) without re-solving. `dlqr(a, b, q, r)` is exactly
/// `dlqr_solution(a, b, q, r)` with the solution reduced to `X` — the
/// numerical path is shared, so the results are bit-identical.
///
/// # Errors
///
/// Same as [`dlqr`].
pub fn dlqr_solution(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
) -> Result<(Matrix, DareSolution)> {
    let sol = solve_dare(a, b, q, r)?;
    let x = &sol.x;
    let btxb = b.transpose().matmul(&x.matmul(b)?)?;
    let btxa = b.transpose().matmul(&x.matmul(a)?)?;
    let k = r.add_mat(&btxb)?.solve(&btxa)?;
    Ok((k, sol))
}

/// Steady-state discrete Kalman gains for
/// `x[k+1] = A x[k] + w`, `y[k] = C x[k] + v` with `cov(w) = W`,
/// `cov(v) = V`.
///
/// Returns `(L, M, P)`:
/// * `L = A P Cᵀ (C P Cᵀ + V)⁻¹` — predictor gain,
/// * `M = P Cᵀ (C P Cᵀ + V)⁻¹` — filter (measurement-update) gain,
/// * `P` — steady-state a-priori error covariance.
///
/// # Errors
///
/// Propagates [`solve_dare`] errors from the dual Riccati equation.
pub fn dkalman(
    a: &Matrix,
    c: &Matrix,
    w: &Matrix,
    v: &Matrix,
) -> Result<(Matrix, Matrix, Matrix)> {
    let (l, m, sol) = dkalman_solution(a, c, w, v)?;
    Ok((l, m, sol.x))
}

/// Like [`dkalman`], but returning the full [`DareSolution`] of the dual
/// Riccati equation (whose `x` is the steady-state covariance `P`) so
/// callers can surface solver diagnostics. The numerical path is shared
/// with [`dkalman`], so the gains are bit-identical.
///
/// # Errors
///
/// Same as [`dkalman`].
pub fn dkalman_solution(
    a: &Matrix,
    c: &Matrix,
    w: &Matrix,
    v: &Matrix,
) -> Result<(Matrix, Matrix, DareSolution)> {
    // Dual: DARE with (Aᵀ, Cᵀ, W, V).
    let sol = solve_dare(&a.transpose(), &c.transpose(), w, v)?;
    let p = &sol.x;
    let cpct = c.matmul(&p.matmul(&c.transpose())?)?;
    let s = cpct.add_mat(v)?;
    // M = P Cᵀ S⁻¹ computed as solving Sᵀ Mᵀ = C Pᵀ.
    let m = s.transpose().solve(&c.matmul(&p.transpose())?)?.transpose();
    let l = a.matmul(&m)?;
    Ok((l, m, sol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral_radius;

    // Tests return `Result` and use `?` instead of `unwrap()`: the
    // panic-freedom ratchet (overrun-lint) counts every panic site in the
    // crate, test modules included, and this module is burned down to zero.
    type TestResult = std::result::Result<(), Error>;

    #[test]
    fn scalar_golden_ratio() -> TestResult {
        let one = Matrix::identity(1);
        let sol = solve_dare(&one, &one, &one, &one)?;
        let golden = (1.0 + 5.0_f64.sqrt()) / 2.0;
        assert!((sol.x[(0, 0)] - golden).abs() < 1e-12);
        assert!(sol.residual < 1e-12);
        Ok(())
    }

    #[test]
    fn scalar_closed_form_general() -> TestResult {
        // b²x² + x(r − a²r − qb²) − qr = 0 with positive root taken.
        let (a, b, q, r) = (1.4_f64, 0.7, 2.0, 0.5);
        let am = Matrix::from_rows(&[&[a]])?;
        let bm = Matrix::from_rows(&[&[b]])?;
        let qm = Matrix::from_rows(&[&[q]])?;
        let rm = Matrix::from_rows(&[&[r]])?;
        let sol = solve_dare(&am, &bm, &qm, &rm)?;
        let bb = b * b;
        let coeff = r - a * a * r - q * bb;
        let x_expected = (-coeff + (coeff * coeff + 4.0 * bb * q * r).sqrt()) / (2.0 * bb);
        assert!((sol.x[(0, 0)] - x_expected).abs() < 1e-10 * x_expected);
        Ok(())
    }

    #[test]
    fn dlqr_stabilizes_double_integrator() -> TestResult {
        let h = 0.1;
        let a = Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]])?;
        let b = Matrix::col_vec(&[h * h / 2.0, h]);
        let (k, x) = dlqr(&a, &b, &Matrix::identity(2), &Matrix::identity(1))?;
        let closed = &a - &b * &k;
        assert!(spectral_radius(&closed)? < 1.0);
        assert!(crate::cholesky::is_spd(&x));
        Ok(())
    }

    #[test]
    fn dlqr_stabilizes_unstable_plant() -> TestResult {
        let a = Matrix::from_rows(&[&[1.2, 0.3], &[0.0, 1.5]])?;
        let b = Matrix::col_vec(&[0.0, 1.0]);
        let (k, _) = dlqr(&a, &b, &Matrix::identity(2), &(Matrix::identity(1) * 0.1))?;
        let closed = &a - &b * &k;
        assert!(spectral_radius(&closed)? < 1.0);
        Ok(())
    }

    #[test]
    fn dare_residual_small_on_mimo() -> TestResult {
        let a = Matrix::from_rows(&[
            &[0.9, 0.2, 0.0],
            &[0.0, 1.1, 0.1],
            &[0.1, 0.0, 0.8],
        ])?;
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]])?;
        let q = Matrix::diag(&[1.0, 2.0, 0.5]);
        let r = Matrix::diag(&[1.0, 0.5]);
        let sol = solve_dare(&a, &b, &q, &r)?;
        assert!(sol.residual < 1e-9, "residual = {}", sol.residual);
        Ok(())
    }

    #[test]
    fn dare_cost_interpretation() -> TestResult {
        // For u = -Kx the achieved cost xᵀX x must equal the Lyapunov
        // accumulation of stage costs along the closed loop.
        let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
        let b = Matrix::col_vec(&[0.005, 0.1]);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        let (k, x) = dlqr(&a, &b, &q, &r)?;
        let acl = &a - &b * &k;
        let stage = &q + &k.transpose() * &r * &k;
        let x_lyap = crate::solve_discrete_lyapunov(&acl, &stage)?;
        assert!(x.approx_eq(&x_lyap, 1e-8, 1e-8));
        Ok(())
    }

    #[test]
    fn kalman_gains_consistent() -> TestResult {
        let a = Matrix::from_rows(&[&[0.95, 0.1], &[0.0, 0.9]])?;
        let c = Matrix::row_vec(&[1.0, 0.0]);
        let w = Matrix::diag(&[0.01, 0.02]);
        let v = Matrix::identity(1) * 0.1;
        let (l, m, p) = dkalman(&a, &c, &w, &v)?;
        // L = A M
        assert!(l.approx_eq(&(&a * &m), 1e-12, 1e-12));
        // P solves the filter Riccati equation: P = A P Aᵀ − L(CPCᵀ+V)Lᵀ + W
        let s = &c * &p * c.transpose() + &v;
        let res = &a * &p * a.transpose() - &l * &s * l.transpose() + &w - &p;
        assert!(res.max_abs() < 1e-10, "residual {}", res.max_abs());
        // Estimator A − LC must be stable.
        assert!(spectral_radius(&(&a - &l * &c))? < 1.0);
        Ok(())
    }

    #[test]
    fn dare_shape_validation() {
        let a = Matrix::identity(2);
        let b = Matrix::col_vec(&[1.0, 0.0]);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(solve_dare(&Matrix::zeros(2, 3), &b, &q, &r).is_err());
        assert!(solve_dare(&a, &Matrix::col_vec(&[1.0]), &q, &r).is_err());
        assert!(solve_dare(&a, &b, &Matrix::identity(3), &r).is_err());
        assert!(solve_dare(&a, &b, &q, &Matrix::identity(2)).is_err());
    }

    #[test]
    // This test drives a deliberate overflow to assert the graceful
    // NoConvergence error; under `sanitize` that overflow is (correctly)
    // a poison panic at the producing op, so the test does not apply.
    #[cfg_attr(feature = "sanitize", ignore = "deliberate overflow panics under sanitize")]
    fn dare_unstabilizable_fails() {
        // Unstable mode not reachable from B: no stabilising solution.
        let a = Matrix::diag(&[2.0, 0.5]);
        let b = Matrix::col_vec(&[0.0, 1.0]);
        let res = solve_dare(&a, &b, &Matrix::identity(2), &Matrix::identity(1));
        assert!(res.is_err() || res.is_ok_and(|sol| sol.residual > 1e-6));
    }
}
