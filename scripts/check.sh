#!/usr/bin/env bash
# Full local gate: release build, test suite, and lint-clean clippy.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
