//! On-disk content-addressed result cache.
//!
//! Each record lives at `<dir>/<32-hex-key>.record` in the canonical text
//! form of [`ScenarioRecord`]. Stores are atomic (write to a unique temp
//! file, then rename), so a sweep killed mid-store never leaves a
//! half-written record under a valid name. Loads are strict: a record that
//! fails to parse, or whose embedded key disagrees with its file name, is
//! reported as corrupt — the engine recomputes and overwrites it.

use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::hash::ContentHash;
use crate::record::ScenarioRecord;

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheProbe {
    /// No record under this key.
    Miss,
    /// A valid record was found.
    Hit(ScenarioRecord),
    /// A record exists but is corrupt (parse failure or key mismatch);
    /// the carried error says why. Callers should recompute and overwrite.
    Corrupt(SweepError),
}

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if necessary) the cache directory.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<ResultCache, SweepError> {
        std::fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, "create", e))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record file for `key`.
    pub fn record_path(&self, key: ContentHash) -> PathBuf {
        self.dir.join(format!("{}.record", key.to_hex()))
    }

    /// Path of the sweep checkpoint file inside this cache.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.sweep")
    }

    /// Probes the cache for `key`, verifying record integrity.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] only for I/O failures other than
    /// not-found; corruption is reported in-band as
    /// [`CacheProbe::Corrupt`].
    pub fn probe(&self, key: ContentHash) -> Result<CacheProbe, SweepError> {
        let path = self.record_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CacheProbe::Miss),
            Err(e) => return Err(SweepError::io(&path, "read", e)),
        };
        match ScenarioRecord::parse(&text, &path) {
            Ok(rec) if rec.key == key => Ok(CacheProbe::Hit(rec)),
            Ok(rec) => Ok(CacheProbe::Corrupt(SweepError::Parse {
                path,
                line: 2,
                msg: format!("embedded key {} does not match file name", rec.key),
            })),
            Err(e) => Ok(CacheProbe::Corrupt(e)),
        }
    }

    /// Atomically stores `record` under its key. `nonce` disambiguates the
    /// temp file when concurrent workers store the same key.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] when writing or renaming fails.
    pub fn store(&self, record: &ScenarioRecord, nonce: u64) -> Result<(), SweepError> {
        let tmp = self
            .dir
            .join(format!(".{}.{nonce}.tmp", record.key.to_hex()));
        std::fs::write(&tmp, record.serialize()).map_err(|e| SweepError::io(&tmp, "write", e))?;
        let dst = self.record_path(record.key);
        std::fs::rename(&tmp, &dst).map_err(|e| SweepError::io(&dst, "rename", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overrun_jsr::{JsrBounds, ScreenStats, StabilityVerdict};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "overrun-sweep-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(key: u128) -> ScenarioRecord {
        ScenarioRecord {
            key: ContentHash(key),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            label: "test".to_string(),
            verdict: StabilityVerdict::Stable,
            bounds: JsrBounds {
                lower: 0.5,
                upper: 0.75,
            },
            screen: ScreenStats::default(),
            elapsed_ms: 1,
            attempts: 1,
        }
    }

    #[test]
    fn store_probe_round_trip() -> Result<(), SweepError> {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::open(&dir)?;
        let r = rec(42);
        assert!(matches!(cache.probe(r.key)?, CacheProbe::Miss));
        cache.store(&r, 0)?;
        let probe = cache.probe(r.key)?;
        assert!(matches!(&probe, CacheProbe::Hit(back) if *back == r), "{probe:?}");
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn corrupt_record_is_flagged_not_fatal() -> Result<(), SweepError> {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::open(&dir)?;
        let r = rec(7);
        cache.store(&r, 0)?;
        // Truncate the record on disk.
        let path = cache.record_path(r.key);
        let text = std::fs::read_to_string(&path).map_err(|e| SweepError::io(&path, "read", e))?;
        std::fs::write(&path, &text[..text.len() / 2])
            .map_err(|e| SweepError::io(&path, "write", e))?;
        assert!(matches!(cache.probe(r.key)?, CacheProbe::Corrupt(_)));

        // A record stored under the wrong name is also corrupt.
        let other = rec(8);
        let misfiled = cache.record_path(ContentHash(9));
        std::fs::write(&misfiled, other.serialize())
            .map_err(|e| SweepError::io(&misfiled, "write", e))?;
        assert!(matches!(cache.probe(ContentHash(9))?, CacheProbe::Corrupt(_)));
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
