//! Criterion benchmarks for the dense linear-algebra kernels that dominate
//! the stability-analysis runtime: `expm`, eigenvalues, DARE and the
//! spectral norm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use overrun_linalg::{dlqr, eigenvalues, expm, norm_2, solve_dare, Matrix};

fn test_matrix(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 31 + j * 17 + 7) % 101) as f64 / 101.0 - 0.5;
        if i == j {
            v - 0.8
        } else {
            v * 0.4
        }
    })
}

fn bench_expm(c: &mut Criterion) {
    let mut group = c.benchmark_group("expm");
    for n in [3usize, 6, 9, 16] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| expm(a).expect("expm"))
        });
    }
    group.finish();
}

fn bench_eigenvalues(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigenvalues");
    for n in [3usize, 6, 9, 16] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| eigenvalues(a).expect("eig"))
        });
    }
    group.finish();
}

fn bench_norm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("norm_2");
    for n in [6usize, 9, 16] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| norm_2(a))
        });
    }
    group.finish();
}

fn bench_dare(c: &mut Criterion) {
    let mut group = c.benchmark_group("dare");
    for n in [3usize, 5, 8] {
        // A mildly unstable system with full-rank input.
        let a = test_matrix(n).scale(0.5) + Matrix::identity(n) * 1.05;
        let bmat = Matrix::from_fn(n, 2, |i, j| ((i + 2 * j + 1) % 3) as f64 * 0.5);
        let q = Matrix::identity(n);
        let r = Matrix::identity(2);
        group.bench_function(BenchmarkId::from_parameter(n), |bch| {
            bch.iter(|| solve_dare(&a, &bmat, &q, &r).expect("dare"))
        });
    }
    group.finish();
}

fn bench_dlqr_pipeline(c: &mut Criterion) {
    // The full design kernel of one Table-II mode: discretise + DARE.
    let plant = overrun_control::plants::pmsm();
    c.bench_function("lqr_mode_design_pmsm", |b| {
        b.iter(|| {
            let d = plant.discretize(50e-6).expect("discretize");
            let mut a_aug = Matrix::zeros(5, 5);
            a_aug.set_block(0, 0, &d.phi).expect("block");
            a_aug.set_block(0, 3, &d.gamma).expect("block");
            let mut b_aug = Matrix::zeros(5, 2);
            b_aug.set_block(3, 0, &Matrix::identity(2)).expect("block");
            let mut q = Matrix::zeros(5, 5);
            q.set_block(0, 0, &Matrix::identity(3)).expect("block");
            q.set_block(3, 3, &(Matrix::identity(2) * 1e-9)).expect("block");
            dlqr(&a_aug, &b_aug, &q, &(Matrix::identity(2) * 3e-3)).expect("dlqr")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_expm, bench_eigenvalues, bench_norm2, bench_dare, bench_dlqr_pipeline
}
criterion_main!(benches);
