//! Integration tests of the `overrun-trace` sink against the real pipeline
//! (compiled only with `--features trace`): counter totals must be
//! invariant to the worker-thread count while the numeric results stay
//! bit-identical, and a real certification run must export schema-valid,
//! balanced JSONL.

use std::sync::Mutex;

use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_control::stability;
use overrun_linalg::Matrix;
use overrun_par::set_thread_override;
use overrun_trace::{finish, install, NoopClock, Trace};

/// The trace sink and the thread override are both process-global; every
/// test serializes on this lock.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    match SINK_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f` with a fresh trace epoch and returns its result plus the
/// collected trace.
fn traced<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    assert!(install(NoopClock), "sink must not already be active");
    let out = f();
    let trace = finish().expect("an active sink was installed");
    (out, trace)
}

/// Monte Carlo counters (`mc.sequences`, `mc.jobs`) total the same at any
/// worker-thread count — per-chunk emission plus the worker-exit flush in
/// `overrun-par` makes the aggregate scheduling-independent — while the
/// worst-case report itself stays bit-identical.
#[test]
fn mc_counter_totals_are_thread_count_invariant() {
    let _guard = serialize();
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();
    let sim = ClosedLoopSim::new(&plant, &table).unwrap();
    let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
    let opts = WorstCaseOptions {
        num_sequences: 200, // several chunks, the last one partial
        jobs_per_sequence: 60,
        seed: 2021,
        rmin_fraction: 0.05,
    };

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        set_thread_override(Some(threads));
        runs.push(traced(|| evaluate_worst_case(&sim, &scenario, &opts).unwrap()));
    }
    set_thread_override(None);

    let (serial_report, serial_trace) = &runs[0];
    let (parallel_report, parallel_trace) = &runs[1];

    // Results bit-identical (the PR-1 guarantee still holds when traced).
    assert_eq!(
        serial_report.worst_cost.to_bits(),
        parallel_report.worst_cost.to_bits()
    );
    assert_eq!(
        serial_report.mean_cost.to_bits(),
        parallel_report.mean_cost.to_bits()
    );

    // Counter totals invariant.
    let serial_totals = serial_trace.counter_totals();
    let parallel_totals = parallel_trace.counter_totals();
    for key in ["mc.sequences", "mc.jobs"] {
        let a = serial_totals.get(key).copied().unwrap_or(0);
        let b = parallel_totals.get(key).copied().unwrap_or(0);
        assert!(a > 0, "{key} must be counted at all");
        assert_eq!(a, b, "{key} differs across thread counts");
    }
    assert_eq!(
        serial_totals.get("mc.sequences"),
        Some(&(opts.num_sequences as u64))
    );
    assert_eq!(
        serial_totals.get("mc.jobs"),
        Some(&((opts.num_sequences * opts.jobs_per_sequence) as u64))
    );

    // Histograms merge to the same aggregate as well.
    let sh = &serial_trace.histogram_totals()["mc.chunk_worst"];
    let ph = &parallel_trace.histogram_totals()["mc.chunk_worst"];
    assert_eq!(sh.count, ph.count);
    assert_eq!(sh.max.to_bits(), ph.max.to_bits());
}

/// A real Table-II-style certification exports JSONL in which every line
/// parses, span opens and closes balance, and re-serialisation reproduces
/// the stream byte for byte.
#[test]
fn certification_trace_round_trips_as_jsonl() {
    let _guard = serialize();
    let plant = plants::unstable_second_order();
    let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
    let table = pi::design_adaptive(&plant, &hset).unwrap();

    let (report, trace) = traced(|| {
        stability::certify(&plant, &table, &Default::default()).unwrap()
    });
    assert!(report.bounds.certifies_stable(), "{:?}", report.bounds);

    assert!(!trace.events.is_empty(), "certification must emit events");
    assert!(trace.is_balanced(), "{:?}", trace.span_balance());

    // The search phases show up as spans, the screen façade as counters,
    // and the bound improvements as progress events.
    let tree = trace.span_tree();
    let names: Vec<&str> = tree.iter().map(|n| n.name.as_str()).collect();
    assert!(names.contains(&"stability.certify"), "{names:?}");
    let totals = trace.counter_totals();
    assert!(totals.contains_key("jsr.screen.nodes"), "{totals:?}");
    assert!(trace.last_progress().contains_key("jsr.ub"));

    // Byte-exact JSONL round trip.
    let text = trace.to_jsonl_string();
    assert_eq!(text.lines().count(), trace.events.len());
    let reparsed = Trace::parse_jsonl(&text).expect("every line parses");
    assert_eq!(reparsed.events.len(), trace.events.len());
    assert_eq!(reparsed.to_jsonl_string(), text);
}
