//! Performance metrics: the paper's worst-case cost
//! `J_w = max_σ Σ_k ‖e[k]‖²` over ensembles of random job sequences
//! (Sec. VI), plus exhaustive small-horizon search.

use overrun_par::{derive_seed, try_parallel_map};
use overrun_rtsim::{ResponseTimeModel, SequenceGenerator, Span};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sim::{ClosedLoopSim, SimScenario};
use crate::{Error, IntervalSet, Result};

/// Options for [`evaluate_worst_case`].
#[derive(Debug, Clone)]
pub struct WorstCaseOptions {
    /// Number of random sequences (the paper uses 50 000).
    pub num_sequences: usize,
    /// Jobs per sequence (the paper uses 50).
    pub jobs_per_sequence: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Smallest response time drawn, as a fraction of `Rmax`. Default 0.05.
    pub rmin_fraction: f64,
}

impl Default for WorstCaseOptions {
    fn default() -> Self {
        WorstCaseOptions {
            num_sequences: 1000,
            jobs_per_sequence: 50,
            seed: 0,
            rmin_fraction: 0.05,
        }
    }
}

/// Result of a worst-case evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseReport {
    /// The paper's `J_w`: the largest cost over all sequences
    /// (`∞` when any sequence diverged).
    pub worst_cost: f64,
    /// Largest time-weighted cost `Σ‖e‖²·h` over all sequences — comparable
    /// across sampling periods.
    pub worst_integral_cost: f64,
    /// Mean cost over all non-diverged sequences (`NaN` if all diverged).
    pub mean_cost: f64,
    /// Number of sequences whose trajectory diverged.
    pub diverged: usize,
    /// Number of sequences evaluated.
    pub sequences: usize,
}

impl WorstCaseReport {
    /// `true` when every evaluated sequence stayed bounded.
    pub fn all_stable(&self) -> bool {
        self.diverged == 0
    }
}

/// Draws a random response-time sequence (uniform in
/// `[rmin_fraction·Rmax, Rmax]`, the paper's methodology) and maps it to
/// interval indices via the release rule.
///
/// # Errors
///
/// Propagates [`IntervalSet::mode_for_response`] failures.
pub fn random_mode_sequence(
    hset: &IntervalSet,
    len: usize,
    rng: &mut SmallRng,
    rmin_fraction: f64,
) -> Result<Vec<usize>> {
    let rmax = hset.rmax();
    let rmin = (rmin_fraction * rmax).max(rmax * 1e-6);
    (0..len)
        .map(|_| {
            let r = rng.gen_range(rmin..=rmax);
            hset.mode_for_response(r)
        })
        .collect()
}

/// Evaluates the worst-case cost `J_w = max_σ Σ‖e[k]‖²` over an ensemble of
/// random sequences, mirroring the paper's 50 000 × 50-job experiment.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for zero-sized ensembles and propagates
/// simulation failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_control::metrics::{evaluate_worst_case, WorstCaseOptions};
/// use overrun_control::sim::{ClosedLoopSim, SimScenario};
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let sim = ClosedLoopSim::new(&plant, &table)?;
/// let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
/// let report = evaluate_worst_case(&sim, &scenario, &WorstCaseOptions {
///     num_sequences: 50, ..Default::default()
/// })?;
/// assert!(report.all_stable());
/// # Ok(())
/// # }
/// ```
pub fn evaluate_worst_case(
    sim: &ClosedLoopSim,
    scenario: &SimScenario,
    opts: &WorstCaseOptions,
) -> Result<WorstCaseReport> {
    if !(0.0..=1.0).contains(&opts.rmin_fraction) {
        return Err(Error::InvalidConfig(format!(
            "rmin_fraction {} outside [0, 1]",
            opts.rmin_fraction
        )));
    }
    let hset = sim.table().hset().clone();
    // Each sequence draws from its own generator, seeded from the master
    // seed and the sequence index — streams are independent of how the
    // ensemble is scheduled across threads.
    run_ensemble(sim, scenario, opts, |i| {
        let mut rng = SmallRng::seed_from_u64(derive_seed(opts.seed, i as u64));
        random_mode_sequence(&hset, opts.jobs_per_sequence, &mut rng, opts.rmin_fraction)
    })
}

/// Sequences folded per chunk before chunks are combined in order — the
/// boundaries (and therefore every f64 operation order) depend only on
/// this constant, never on the thread count.
const ENSEMBLE_CHUNK: usize = 64;

/// Running accumulator of one ensemble chunk.
#[derive(Clone, Copy)]
struct EnsembleAcc {
    worst: f64,
    worst_integral: f64,
    sum: f64,
    diverged: usize,
}

/// Shared ensemble loop behind both worst-case evaluators: draws one mode
/// sequence per index from `next_modes`, simulates it (cost-only fast
/// path), and accumulates the report. Chunks of [`ENSEMBLE_CHUNK`]
/// sequences are evaluated in parallel and combined in chunk order, so the
/// report is bit-identical for any thread count.
fn run_ensemble<F>(
    sim: &ClosedLoopSim,
    scenario: &SimScenario,
    opts: &WorstCaseOptions,
    next_modes: F,
) -> Result<WorstCaseReport>
where
    F: Fn(usize) -> Result<Vec<usize>> + Sync,
{
    if opts.num_sequences == 0 || opts.jobs_per_sequence == 0 {
        return Err(Error::InvalidConfig(
            "worst-case evaluation needs at least one sequence and one job".into(),
        ));
    }
    let n_chunks = opts.num_sequences.div_ceil(ENSEMBLE_CHUNK);
    let _sp = overrun_trace::span!(
        "mc.ensemble",
        sequences = opts.num_sequences,
        jobs = opts.jobs_per_sequence,
        chunks = n_chunks
    );
    let chunks: Vec<usize> = (0..n_chunks).collect();
    let partials: Vec<EnsembleAcc> = try_parallel_map(&chunks, |_, &c| {
        let lo = c * ENSEMBLE_CHUNK;
        let hi = (lo + ENSEMBLE_CHUNK).min(opts.num_sequences);
        let mut acc = EnsembleAcc {
            worst: 0.0,
            worst_integral: 0.0,
            sum: 0.0,
            diverged: 0,
        };
        for i in lo..hi {
            let modes = next_modes(i)?;
            let summary = sim.run_cost(scenario, &modes)?;
            if summary.diverged {
                acc.diverged += 1;
                acc.worst = f64::INFINITY;
                acc.worst_integral = f64::INFINITY;
            } else {
                acc.worst = acc.worst.max(summary.cost);
                acc.worst_integral = acc.worst_integral.max(summary.cost_integral);
                acc.sum += summary.cost;
            }
        }
        // Instrumentation batches at chunk granularity: one counter event
        // per chunk, never per sequence or per simulation step.
        overrun_trace::counter!("mc.sequences", (hi - lo) as u64);
        overrun_trace::counter!("mc.jobs", ((hi - lo) * opts.jobs_per_sequence) as u64);
        overrun_trace::counter!("mc.divergence_exits", acc.diverged as u64);
        overrun_trace::histogram!("mc.chunk_worst", acc.worst);
        Ok::<_, Error>(acc)
    })?;

    // Serial fold in chunk order — the only place partials meet.
    let mut worst = 0.0_f64;
    let mut worst_integral = 0.0_f64;
    let mut sum = 0.0_f64;
    let mut diverged = 0usize;
    for acc in partials {
        worst = worst.max(acc.worst);
        worst_integral = worst_integral.max(acc.worst_integral);
        sum += acc.sum;
        diverged += acc.diverged;
    }
    let completed = opts.num_sequences - diverged;
    Ok(WorstCaseReport {
        worst_cost: worst,
        worst_integral_cost: worst_integral,
        mean_cost: if completed > 0 {
            sum / completed as f64
        } else {
            f64::NAN
        },
        diverged,
        sequences: opts.num_sequences,
    })
}

/// Evaluates the worst-case cost over sequences drawn from an explicit
/// [`ResponseTimeModel`] (e.g. the bursty Markov model) instead of the
/// default uniform law — overruns may then cluster, which is the regime
/// where delay compensation matters most.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for zero-sized ensembles or a model
/// whose `Rmax` exceeds the design `Rmax` of the simulator's interval set,
/// and propagates simulation failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_control::metrics::{evaluate_worst_case_with_model, WorstCaseOptions};
/// use overrun_control::sim::{ClosedLoopSim, SimScenario};
/// use overrun_linalg::Matrix;
/// use overrun_rtsim::{ResponseTimeModel, Span};
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let sim = ClosedLoopSim::new(&plant, &table)?;
/// let scenario = SimScenario::step(2, Matrix::col_vec(&[1.0]));
/// let bursty = ResponseTimeModel::Markov {
///     min: Span::from_millis(1),
///     period: Span::from_millis(10),
///     max: Span::from_millis(13),
///     enter_prob: 0.05,
///     leave_prob: 0.4,
/// };
/// let report = evaluate_worst_case_with_model(&sim, &scenario, &bursty,
///     &WorstCaseOptions { num_sequences: 50, ..Default::default() })?;
/// assert!(report.all_stable());
/// # Ok(())
/// # }
/// ```
pub fn evaluate_worst_case_with_model(
    sim: &ClosedLoopSim,
    scenario: &SimScenario,
    model: &ResponseTimeModel,
    opts: &WorstCaseOptions,
) -> Result<WorstCaseReport> {
    let hset = sim.table().hset().clone();
    if model.rmax() > Span::from_secs_f64(hset.rmax()) + Span::from_nanos(1) {
        return Err(Error::InvalidConfig(format!(
            "workload Rmax {} exceeds the design Rmax {:.6} s",
            model.rmax(),
            hset.rmax()
        )));
    }
    run_ensemble(sim, scenario, opts, |i| {
        // Independent sequences: one generator per sequence, seeded
        // deterministically.
        let mut gen = SequenceGenerator::new(model.clone(), opts.seed.wrapping_add(i as u64))?;
        gen.sequence(opts.jobs_per_sequence)
            .iter()
            .map(|r| hset.mode_for_response(r.as_secs_f64().min(hset.rmax())))
            .collect()
    })
}

/// Exhaustively evaluates **all** `#H^m` mode sequences of length `m` and
/// returns the worst cost — the true adversarial `J_w` for short horizons
/// (use for validation; exponential in `m`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the enumeration would exceed
/// `max_sequences`, and propagates simulation failures.
pub fn exhaustive_worst_case(
    sim: &ClosedLoopSim,
    scenario: &SimScenario,
    m: usize,
    max_sequences: usize,
) -> Result<f64> {
    let q = sim.table().len();
    let total = q.checked_pow(m as u32).unwrap_or(usize::MAX);
    if total > max_sequences {
        return Err(Error::InvalidConfig(format!(
            "{q}^{m} = {total} sequences exceed the cap {max_sequences}"
        )));
    }
    let _sp = overrun_trace::span!("mc.exhaustive", horizon = m, total = total);
    let mut worst = 0.0_f64;
    let mut modes = vec![0usize; m];
    for index in 0..total {
        let mut x = index;
        for slot in modes.iter_mut() {
            *slot = x % q;
            x /= q;
        }
        let traj = sim.run(scenario, &modes)?;
        if traj.diverged {
            return Ok(f64::INFINITY);
        }
        worst = worst.max(traj.cost);
    }
    Ok(worst)
}

#[cfg(test)]
mod test_fixtures {
    use super::*;
    use crate::{pi, plants};
    use overrun_linalg::Matrix;

    pub(super) fn sim() -> ClosedLoopSim {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = pi::design_adaptive(&plant, &hset).unwrap();
        ClosedLoopSim::new(&plant, &table).unwrap()
    }

    pub(super) fn scenario() -> SimScenario {
        SimScenario::step(2, Matrix::col_vec(&[1.0]))
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::{scenario, sim};
    use super::*;

    #[test]
    fn random_sequences_are_valid_modes() {
        let hset = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let modes = random_mode_sequence(&hset, 500, &mut rng, 0.05).unwrap();
        assert_eq!(modes.len(), 500);
        assert!(modes.iter().all(|&m| m < hset.len()));
        // With Rmax = 1.6T and uniform R, a healthy share must be overruns.
        let overruns = modes.iter().filter(|&&m| m > 0).count();
        assert!(overruns > 100, "only {overruns} overruns in 500 draws");
    }

    #[test]
    fn worst_case_exceeds_mean() {
        let report = evaluate_worst_case(
            &sim(),
            &scenario(),
            &WorstCaseOptions {
                num_sequences: 100,
                jobs_per_sequence: 50,
                seed: 7,
                rmin_fraction: 0.05,
            },
        )
        .unwrap();
        assert!(report.all_stable());
        assert!(report.worst_cost >= report.mean_cost);
        assert!(report.worst_cost.is_finite());
        assert_eq!(report.sequences, 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let opts = WorstCaseOptions {
            num_sequences: 30,
            seed: 11,
            ..WorstCaseOptions::default()
        };
        let a = evaluate_worst_case(&sim(), &scenario(), &opts).unwrap();
        let b = evaluate_worst_case(&sim(), &scenario(), &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn option_validation() {
        let s = sim();
        assert!(evaluate_worst_case(
            &s,
            &scenario(),
            &WorstCaseOptions {
                num_sequences: 0,
                ..WorstCaseOptions::default()
            }
        )
        .is_err());
        assert!(evaluate_worst_case(
            &s,
            &scenario(),
            &WorstCaseOptions {
                rmin_fraction: 2.0,
                ..WorstCaseOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn exhaustive_bounds_random() {
        let s = sim();
        let sc = scenario();
        // All 2^6 sequences of length 6.
        let exact = exhaustive_worst_case(&s, &sc, 6, 100).unwrap();
        // Random search over the same horizon can never beat the exhaustive
        // maximum.
        let report = evaluate_worst_case(
            &s,
            &sc,
            &WorstCaseOptions {
                num_sequences: 40,
                jobs_per_sequence: 6,
                seed: 3,
                rmin_fraction: 0.05,
            },
        )
        .unwrap();
        assert!(report.worst_cost <= exact + 1e-12);
    }

    #[test]
    fn exhaustive_cap_enforced() {
        let s = sim();
        assert!(exhaustive_worst_case(&s, &scenario(), 40, 1000).is_err());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let s = sim();
        let sc = scenario();
        let opts = WorstCaseOptions {
            num_sequences: 130, // spans three chunks, last one partial
            jobs_per_sequence: 40,
            seed: 19,
            rmin_fraction: 0.05,
        };
        overrun_par::set_thread_override(Some(1));
        let serial = evaluate_worst_case(&s, &sc, &opts).unwrap();
        overrun_par::set_thread_override(Some(4));
        let parallel = evaluate_worst_case(&s, &sc, &opts).unwrap();
        overrun_par::set_thread_override(None);
        assert_eq!(serial.worst_cost.to_bits(), parallel.worst_cost.to_bits());
        assert_eq!(serial.mean_cost.to_bits(), parallel.mean_cost.to_bits());
        assert_eq!(
            serial.worst_integral_cost.to_bits(),
            parallel.worst_integral_cost.to_bits()
        );
        assert_eq!(serial.diverged, parallel.diverged);
    }
}

#[cfg(test)]
mod model_tests {
    use super::test_fixtures::{scenario, sim};
    use super::*;

    fn bursty(max_ms: u64) -> ResponseTimeModel {
        ResponseTimeModel::Markov {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(max_ms),
            enter_prob: 0.05,
            leave_prob: 0.4,
        }
    }

    #[test]
    fn bursty_workload_stays_stable() {
        let report = evaluate_worst_case_with_model(
            &sim(),
            &scenario(),
            &bursty(13),
            &WorstCaseOptions {
                num_sequences: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.all_stable());
        assert!(report.worst_cost.is_finite());
        assert!(report.worst_cost >= report.mean_cost);
    }

    #[test]
    fn workload_beyond_design_rmax_rejected() {
        let res = evaluate_worst_case_with_model(
            &sim(),
            &scenario(),
            &bursty(20), // design Rmax is 13 ms
            &WorstCaseOptions::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let opts = WorstCaseOptions {
            num_sequences: 20,
            seed: 3,
            ..Default::default()
        };
        let a = evaluate_worst_case_with_model(&sim(), &scenario(), &bursty(13), &opts).unwrap();
        let b = evaluate_worst_case_with_model(&sim(), &scenario(), &bursty(13), &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sporadic_model_also_supported() {
        let model = ResponseTimeModel::Sporadic {
            min: Span::from_millis(1),
            period: Span::from_millis(10),
            max: Span::from_millis(13),
            overrun_prob: 0.15,
        };
        let report = evaluate_worst_case_with_model(
            &sim(),
            &scenario(),
            &model,
            &WorstCaseOptions {
                num_sequences: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.all_stable());
    }
}
