//! The four lint rules, implemented over the [`crate::lexer`] token
//! stream.
//!
//! Everything here is position-based pattern matching: forbidden
//! identifiers and `::`-joined paths (determinism), counted panic tokens
//! (panic-freedom ratchet), `unsafe` tokens missing a nearby `// SAFETY:`
//! comment (unsafe-hygiene), and allocation tokens inside brace-matched
//! bodies of registered functions (hotpath).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::baseline::{Baseline, Counts};
use crate::config::{Config, CrateConfig};
use crate::lexer::{Tok, Token};
use crate::{Diagnostic, Report, Rule};

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// Per-file state shared by the rules: the token stream plus the
/// suppression map extracted from `// lint: allow(<rule>)` comments.
pub(crate) struct FileContext<'a> {
    pub(crate) cfg: &'a Config,
    pub(crate) krate: &'a CrateConfig,
    pub(crate) file: &'a Path,
    pub(crate) tokens: &'a [Token],
    /// line → rules suppressed *on* that line (an `allow` comment covers
    /// its own line and the one below).
    suppressions: BTreeMap<usize, BTreeSet<String>>,
    /// Total `allow(…)` entries in the file — ratcheted like panic sites.
    allow_entries: u64,
}

impl<'a> FileContext<'a> {
    pub(crate) fn new(
        cfg: &'a Config,
        krate: &'a CrateConfig,
        file: &'a Path,
        tokens: &'a [Token],
    ) -> Self {
        let mut suppressions: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        let mut allow_entries = 0u64;
        for t in tokens {
            let Tok::Comment(text) = &t.tok else { continue };
            for rule in parse_allow(text) {
                allow_entries += 1;
                suppressions.entry(t.line).or_default().insert(rule.clone());
                suppressions.entry(t.line + 1).or_default().insert(rule);
            }
        }
        FileContext {
            cfg,
            krate,
            file,
            tokens,
            suppressions,
            allow_entries,
        }
    }

    pub(crate) fn suppression_count(&self) -> u64 {
        self.allow_entries
    }

    fn is_suppressed(&self, rule: Rule, line: usize) -> bool {
        self.suppressions
            .get(&line)
            .is_some_and(|set| set.contains(rule.name()))
    }

    fn emit(&self, report: &mut Report, rule: Rule, line: usize, token: &str, message: String) {
        let diag = Diagnostic {
            rule,
            file: self.file.to_path_buf(),
            line,
            token: token.to_string(),
            message,
        };
        if self.is_suppressed(rule, line) {
            report.suppressed.push(diag);
        } else {
            report.violations.push(diag);
        }
    }
}

/// Extracts rule names from `// lint: allow(rule1, rule2)` comments. The
/// directive must be the comment's *content* — `lint:` right after the
/// comment marker — so prose that merely mentions the syntax (docs, this
/// sentence) never registers. Unknown rule names are kept verbatim: they
/// suppress nothing but still count, so a stale suppression stays visible.
fn parse_allow(comment: &str) -> Vec<String> {
    let body = comment
        .trim_start_matches(['/', '*', '!'])
        .trim_start();
    let Some(rest) = body.strip_prefix("lint:") else {
        return Vec::new();
    };
    let Some(open) = rest.trim_start().strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = open.find(')') else {
        return Vec::new();
    };
    open[..close]
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(str::to_string)
        .collect()
}

/// Runs the per-file rules, updating `counts` (panic sites) and
/// `hotpath_seen` (function-name coverage for [`hotpath_coverage_check`]).
pub(crate) fn check_file(
    ctx: &FileContext<'_>,
    report: &mut Report,
    counts: &mut Counts,
    hotpath_seen: &mut BTreeMap<String, usize>,
) {
    if ctx.krate.determinism {
        determinism(ctx, report);
    }
    if ctx.krate.ratchet {
        counts.panic_sites += count_panic_sites(ctx);
    }
    unsafe_hygiene(ctx, report);
    hotpath(ctx, report, hotpath_seen);
}

/// Rule 1: forbidden identifiers and paths in determinism-critical crates.
fn determinism(ctx: &FileContext<'_>, report: &mut Report) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        if ctx.cfg.det_forbidden_idents.iter().any(|f| f == word) {
            ctx.emit(
                report,
                Rule::Determinism,
                t.line,
                word,
                format!("`{word}` is forbidden in determinism-critical crates (unordered iteration / wall-clock / env access breaks bitwise-reproducible certificates)"),
            );
            continue;
        }
        for path in &ctx.cfg.det_forbidden_paths {
            if path_matches_at(toks, i, path) {
                ctx.emit(
                    report,
                    Rule::Determinism,
                    t.line,
                    path,
                    format!("`{path}` is forbidden in determinism-critical crates"),
                );
                break;
            }
        }
    }
}

/// Does the `::`-joined `path` start at token index `i`?
fn path_matches_at(toks: &[Token], i: usize, path: &str) -> bool {
    let mut idx = i;
    for (seg_no, seg) in path.split("::").enumerate() {
        if seg_no > 0 {
            for _ in 0..2 {
                if !matches!(toks.get(idx), Some(t) if t.tok == Tok::Punct(':')) {
                    return false;
                }
                idx += 1;
            }
        }
        if !matches!(&toks.get(idx), Some(t) if t.tok == Tok::Ident(seg.to_string())) {
            return false;
        }
        idx += 1;
    }
    true
}

/// Rule 2 (counting half): `unwrap(` / `expect(` / `panic!` sites. The
/// comparison against the baseline happens in [`ratchet_check`].
fn count_panic_sites(ctx: &FileContext<'_>) -> u64 {
    let toks = ctx.tokens;
    let mut n = 0u64;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        if !ctx.cfg.ratchet_tokens.iter().any(|r| r == word) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| &t.tok);
        let is_site = match word.as_str() {
            // `.unwrap()` / `.expect(…)` — require the call parenthesis so
            // a local named `unwrap` doesn't count.
            "unwrap" | "expect" => next == Some(&Tok::Punct('(')),
            // `panic!(…)` — require the bang so `std::panic::…` paths and
            // `#[should_panic]` don't count.
            "panic" => next == Some(&Tok::Punct('!')),
            // Custom ratchet tokens from lint.toml: call or macro form.
            _ => matches!(next, Some(&Tok::Punct('(')) | Some(&Tok::Punct('!'))),
        };
        if is_site {
            n += 1;
        }
    }
    n
}

/// Rule 2 (ratchet half): compare a crate's counts against the committed
/// baseline. Regressions are violations; improvements are recorded so the
/// runner can suggest `--update-baseline`.
pub(crate) fn ratchet_check(
    _cfg: &Config,
    krate: &CrateConfig,
    counts: &Counts,
    baseline: &Baseline,
    report: &mut Report,
) {
    if !krate.ratchet {
        return;
    }
    let base = baseline.crates.get(&krate.name).copied().unwrap_or_default();
    let crate_file = Path::new(&krate.path);
    if counts.panic_sites > base.panic_sites {
        report.violations.push(Diagnostic {
            rule: Rule::PanicFreedom,
            file: crate_file.to_path_buf(),
            line: 0,
            token: format!("{} > {}", counts.panic_sites, base.panic_sites),
            message: format!(
                "crate `{}` has {} panic sites, baseline allows {} — the ratchet only goes down (convert to typed errors, or run --update-baseline only after a deliberate review)",
                krate.name, counts.panic_sites, base.panic_sites
            ),
        });
    }
    if counts.suppressions > base.suppressions {
        report.violations.push(Diagnostic {
            rule: Rule::PanicFreedom,
            file: crate_file.to_path_buf(),
            line: 0,
            token: format!("{} > {}", counts.suppressions, base.suppressions),
            message: format!(
                "crate `{}` has {} lint suppressions, baseline allows {} — suppressions are ratcheted too",
                krate.name, counts.suppressions, base.suppressions
            ),
        });
    }
    if counts.panic_sites < base.panic_sites || counts.suppressions < base.suppressions {
        report.improvements.push(format!(
            "crate `{}` improved: {} panic sites (baseline {}), {} suppressions (baseline {}) — run --update-baseline to lock it in",
            krate.name, counts.panic_sites, base.panic_sites, counts.suppressions, base.suppressions
        ));
    }
}

/// Rule 3: every `unsafe` token needs a `// SAFETY:` comment on the same
/// line or within [`SAFETY_WINDOW`] lines above, unless the `file:line`
/// site is allowlisted in `lint.toml`.
fn unsafe_hygiene(ctx: &FileContext<'_>, report: &mut Report) {
    let comment_lines: Vec<usize> = ctx
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Comment(c) if c.contains("SAFETY:") => Some(t.line),
            _ => None,
        })
        .collect();
    for t in ctx.tokens {
        if t.tok != Tok::Ident("unsafe".into()) {
            continue;
        }
        let site = format!("{}:{}", ctx.file.display(), t.line);
        if ctx.cfg.unsafe_allow.iter().any(|a| a == &site) {
            continue;
        }
        let documented = comment_lines
            .iter()
            .any(|&cl| cl <= t.line && t.line - cl <= SAFETY_WINDOW);
        if !documented {
            ctx.emit(
                report,
                Rule::UnsafeHygiene,
                t.line,
                "unsafe",
                "`unsafe` without a `// SAFETY:` comment on the same line or directly above".into(),
            );
        }
    }
}

/// Rule 4: registered hot-path functions may not allocate. Function bodies
/// are located by `fn <name>` followed by brace matching; forbidden
/// entries match as `A::b` paths, `name!` macros, or `.method` calls.
fn hotpath(
    ctx: &FileContext<'_>,
    report: &mut Report,
    hotpath_seen: &mut BTreeMap<String, usize>,
) {
    let registered: Vec<&str> = ctx
        .cfg
        .hotpath_functions
        .iter()
        .filter_map(|entry| match entry.split_once("::") {
            Some((krate, func)) if krate == ctx.krate.name => Some(func),
            Some(_) => None,
            None => Some(entry.as_str()),
        })
        .collect();
    if registered.is_empty() {
        return;
    }
    let toks = ctx.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_fn = toks[i].tok == Tok::Ident("fn".into());
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        let Tok::Ident(name) = &name_tok.tok else {
            i += 1;
            continue;
        };
        if !registered.iter().any(|r| r == name) {
            i += 1;
            continue;
        }
        // Track coverage under the function's *qualified* name so the
        // coverage check can report unmatched registry entries.
        for entry in &ctx.cfg.hotpath_functions {
            let matches = match entry.split_once("::") {
                Some((krate, func)) => krate == ctx.krate.name && func == name,
                None => entry == name,
            };
            if matches {
                *hotpath_seen.entry(entry.clone()).or_insert(0) += 1;
            }
        }
        // Find the opening brace of the body, then brace-match to its end.
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Punct('{') {
            j += 1;
        }
        let mut depth = 0usize;
        let body_start = j;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_end = j;
        for k in body_start..body_end {
            for forbidden in &ctx.cfg.hotpath_forbidden {
                let hit = if forbidden.contains("::") {
                    path_matches_at(toks, k, forbidden)
                } else if let Some(mac) = forbidden.strip_suffix('!') {
                    toks[k].tok == Tok::Ident(mac.into())
                        && matches!(toks.get(k + 1), Some(t) if t.tok == Tok::Punct('!'))
                } else {
                    toks[k].tok == Tok::Punct('.')
                        && matches!(&toks.get(k + 1), Some(t) if t.tok == Tok::Ident(forbidden.clone()))
                };
                if hit {
                    let line = toks[k].line;
                    ctx.emit(
                        report,
                        Rule::Hotpath,
                        line,
                        forbidden,
                        format!(
                            "`{forbidden}` allocates inside registered hot-path function `{name}` — hot paths must reuse caller-provided buffers"
                        ),
                    );
                }
            }
        }
        i = body_end + 1;
    }
}

/// Config-drift check: every `crate::fn`-qualified hot-path entry for this
/// crate must have matched at least one `fn` definition; a stale registry
/// entry is a violation (the protection it claims no longer exists).
pub(crate) fn hotpath_coverage_check(
    cfg: &Config,
    krate: &CrateConfig,
    hotpath_seen: &BTreeMap<String, usize>,
    report: &mut Report,
) {
    for entry in &cfg.hotpath_functions {
        let Some((entry_crate, func)) = entry.split_once("::") else {
            continue; // bare names may legitimately match nowhere in a given crate
        };
        if entry_crate != krate.name {
            continue;
        }
        let seen = hotpath_seen.get(entry.as_str()).copied().unwrap_or(0);
        if seen == 0 {
            report.violations.push(Diagnostic {
                rule: Rule::Hotpath,
                file: Path::new(&krate.path).to_path_buf(),
                line: 0,
                token: entry.clone(),
                message: format!(
                    "hot-path registry entry `{entry}` matched no `fn {func}` in crate `{}` — remove the stale entry or fix the name",
                    krate.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_cfg() -> Config {
        Config {
            root: std::path::PathBuf::from("."),
            crates: Vec::new(),
            det_forbidden_idents: vec!["HashMap".into(), "SystemTime".into()],
            det_forbidden_paths: vec!["Instant::now".into(), "std::env".into()],
            ratchet_tokens: vec!["unwrap".into(), "expect".into(), "panic".into()],
            baseline: "lint-baseline.toml".into(),
            unsafe_allow: Vec::new(),
            hotpath_functions: vec!["demo::hot".into()],
            hotpath_forbidden: vec![
                "Vec::new".into(),
                "vec!".into(),
                "to_vec".into(),
                "collect".into(),
                "clone".into(),
                "Box::new".into(),
            ],
        }
    }

    fn test_crate() -> CrateConfig {
        CrateConfig {
            name: "demo".into(),
            path: "src".into(),
            determinism: true,
            ratchet: true,
        }
    }

    fn run_on(src: &str) -> (Report, Counts) {
        let cfg = test_cfg();
        let krate = test_crate();
        let tokens = lex(src);
        let file = Path::new("src/lib.rs");
        let ctx = FileContext::new(&cfg, &krate, file, &tokens);
        let mut report = Report::default();
        let mut counts = Counts {
            suppressions: ctx.suppression_count(),
            ..Counts::default()
        };
        let mut seen = BTreeMap::new();
        check_file(&ctx, &mut report, &mut counts, &mut seen);
        (report, counts)
    }

    #[test]
    fn determinism_ident_fires() {
        let (report, _) = run_on("use std::collections::HashMap;");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, Rule::Determinism);
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn determinism_path_fires_but_not_prefix() {
        let (report, _) = run_on("let t = Instant::now();");
        assert_eq!(report.violations.len(), 1);
        // `Instant::elapsed` alone must NOT fire `Instant::now`.
        let (report, _) = run_on("let t = Instant::elapsed(&x);");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn determinism_in_comment_or_string_silent() {
        let (report, _) = run_on("// HashMap here\nlet s = \"Instant::now\";");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn suppression_moves_to_suppressed() {
        let (report, counts) =
            run_on("// lint: allow(determinism)\nuse std::collections::HashMap;");
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(counts.suppressions, 1);
    }

    #[test]
    fn suppression_wrong_rule_does_not_apply() {
        let (report, counts) = run_on("// lint: allow(hotpath)\nuse std::collections::HashMap;");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(counts.suppressions, 1); // still counted
    }

    #[test]
    fn panic_sites_counted() {
        let (_, counts) = run_on(
            "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); }\n\
             fn g() { let unwrap = 1; std::panic::catch_unwind(|| {}); }",
        );
        assert_eq!(counts.panic_sites, 3);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let (report, _) = run_on("fn f() { unsafe { work() } }");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, Rule::UnsafeHygiene);

        let (report, _) = run_on("// SAFETY: bounds checked above\nfn f() { unsafe { work() } }");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn unsafe_allowlist_site() {
        let mut cfg = test_cfg();
        cfg.unsafe_allow = vec!["src/lib.rs:1".into()];
        let krate = test_crate();
        let tokens = lex("fn f() { unsafe { work() } }");
        let ctx = FileContext::new(&cfg, &krate, Path::new("src/lib.rs"), &tokens);
        let mut report = Report::default();
        let mut counts = Counts::default();
        let mut seen = BTreeMap::new();
        check_file(&ctx, &mut report, &mut counts, &mut seen);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn hotpath_allocation_fires_only_in_registered_fn() {
        let src = "fn hot(out: &mut [f64]) { let v = Vec::new(); }\n\
                   fn cold() { let v = Vec::new(); }";
        let (report, _) = run_on(src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, Rule::Hotpath);
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn hotpath_method_and_macro_forms() {
        let src = "fn hot(xs: &[f64]) { let a = vec![0.0]; let b = xs.to_vec(); let c = xs.iter().collect::<Vec<_>>(); }";
        let (report, _) = run_on(src);
        let rules: Vec<_> = report.violations.iter().map(|d| &d.token).collect();
        assert_eq!(report.violations.len(), 3, "{rules:?}");
    }

    #[test]
    fn hotpath_coverage_reports_stale_entry() {
        let cfg = test_cfg();
        let krate = test_crate();
        let seen = BTreeMap::new(); // `demo::hot` never matched
        let mut report = Report::default();
        hotpath_coverage_check(&cfg, &krate, &seen, &mut report);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].token.contains("demo::hot"));
    }

    #[test]
    fn ratchet_regression_and_improvement() {
        let krate = test_crate();
        let mut baseline = Baseline::default();
        baseline.crates.insert(
            "demo".into(),
            Counts {
                panic_sites: 2,
                suppressions: 0,
            },
        );
        let cfg = test_cfg();

        let mut report = Report::default();
        let worse = Counts {
            panic_sites: 3,
            suppressions: 0,
        };
        ratchet_check(&cfg, &krate, &worse, &baseline, &mut report);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, Rule::PanicFreedom);

        let mut report = Report::default();
        let better = Counts {
            panic_sites: 1,
            suppressions: 0,
        };
        ratchet_check(&cfg, &krate, &better, &baseline, &mut report);
        assert!(report.violations.is_empty());
        assert_eq!(report.improvements.len(), 1);
    }

    #[test]
    fn allow_parse_variants() {
        assert_eq!(parse_allow("// lint: allow(determinism)"), vec!["determinism"]);
        assert_eq!(
            parse_allow("// lint: allow(hotpath, determinism)"),
            vec!["hotpath", "determinism"]
        );
        assert!(parse_allow("// just a comment").is_empty());
        assert!(parse_allow("// lint: deny(x)").is_empty());
        // Prose that mentions the syntax is not a directive.
        assert!(parse_allow("// docs: write `// lint: allow(rule)` above the line").is_empty());
        assert!(parse_allow("/* lint: allow(hotpath) */").len() == 1);
    }
}
