//! The lifted closed-loop dynamics `ξ(k+1) = Ω(h_k) ξ(k)` (paper Sec. V).
//!
//! With the auxiliary variables `z̃[k] = z[k+1]`, `ũ[k] = u[k+1]` and the
//! lifted state `ξ = [x; z̃; ũ; u] ∈ ℝ^{n+s+2r}`, the closed loop under the
//! overrun policy becomes a switching linear system whose dynamic matrix
//! depends on the *current* interval `h_k` only — the key trick that keeps
//! the stability analysis over `#H` matrices instead of `#H²`.

use overrun_linalg::Matrix;

use crate::{ContinuousSs, ControllerMode, ControllerTable, Error, Result};

/// Builds the lifted closed-loop matrix `Ω(h)` for a single interval and
/// controller mode (paper Sec. V, with the regulation convention
/// `e[k] = −C_m x[k]`, i.e. reference `r = 0`):
///
/// ```text
///        ⎡    Φ(h)        0    0     Γ(h)    ⎤
/// Ω(h) = ⎢ −Bc·Cm·Φ(h)    Ac   0  −Bc·Cm·Γ(h)⎥
///        ⎢ −Dc·Cm·Φ(h)    Cc   0  −Dc·Cm·Γ(h)⎥
///        ⎣     0          0    I      0      ⎦
/// ```
///
/// `measurement` is the matrix `C_m` the controller error is formed from —
/// the plant `C` for output feedback, or the identity for full-state
/// feedback (the paper's LQR case, `e[k] = x[k]`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on dimension mismatches and propagates
/// discretisation failures.
///
/// # Example
///
/// ```
/// use overrun_control::prelude::*;
/// use overrun_linalg::Matrix;
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::unstable_second_order();
/// let hset = IntervalSet::from_timing(0.010, 0.013, 2)?;
/// let table = pi::design_adaptive(&plant, &hset)?;
/// let omega = lifted::build_omega(&plant, table.mode(0), 0.010, &plant.c)?;
/// // n + s + 2r = 2 + 1 + 2 = 5
/// assert_eq!(omega.shape(), (5, 5));
/// # Ok(())
/// # }
/// ```
pub fn build_omega(
    plant: &ContinuousSs,
    mode: &ControllerMode,
    h: f64,
    measurement: &Matrix,
) -> Result<Matrix> {
    let n = plant.state_dim();
    let r = plant.input_dim();
    let s = mode.state_dim();
    if measurement.cols() != n {
        return Err(Error::InvalidConfig(format!(
            "measurement matrix has {} cols, plant has {n} states",
            measurement.cols()
        )));
    }
    if mode.error_dim() != measurement.rows() {
        return Err(Error::InvalidConfig(format!(
            "controller expects {}-dim error, measurement gives {}",
            mode.error_dim(),
            measurement.rows()
        )));
    }
    if mode.output_dim() != r {
        return Err(Error::InvalidConfig(format!(
            "controller emits {} commands, plant takes {r}",
            mode.output_dim()
        )));
    }

    let d = plant.discretize(h)?;
    let cm_phi = measurement.matmul(&d.phi)?;
    let cm_gamma = measurement.matmul(&d.gamma)?;

    let dim = n + s + 2 * r;
    let mut omega = Matrix::zeros(dim, dim);
    // Row block 1: x[k+1] = Φ x[k] + Γ u[k]
    omega.set_block(0, 0, &d.phi).map_err(Error::Linalg)?;
    omega
        .set_block(0, n + s + r, &d.gamma)
        .map_err(Error::Linalg)?;
    // Row block 2: z̃[k+1] = Ac z̃[k] − Bc Cm (Φ x[k] + Γ u[k])
    if s > 0 {
        omega
            .set_block(n, 0, &mode.bc.matmul(&cm_phi)?.scale(-1.0))
            .map_err(Error::Linalg)?;
        omega.set_block(n, n, &mode.ac).map_err(Error::Linalg)?;
        omega
            .set_block(n, n + s + r, &mode.bc.matmul(&cm_gamma)?.scale(-1.0))
            .map_err(Error::Linalg)?;
    }
    // Row block 3: ũ[k+1] = Cc z̃[k] − Dc Cm (Φ x[k] + Γ u[k])
    omega
        .set_block(n + s, 0, &mode.dc.matmul(&cm_phi)?.scale(-1.0))
        .map_err(Error::Linalg)?;
    if s > 0 {
        omega
            .set_block(n + s, n, &mode.cc)
            .map_err(Error::Linalg)?;
    }
    omega
        .set_block(n + s, n + s + r, &mode.dc.matmul(&cm_gamma)?.scale(-1.0))
        .map_err(Error::Linalg)?;
    // Row block 4: u[k+1] = ũ[k]
    omega
        .set_block(n + s + r, n + s, &Matrix::identity(r))
        .map_err(Error::Linalg)?;
    Ok(omega)
}

/// Builds the full set `{Ω(h) : h ∈ H}` — job `k`'s controller mode is the
/// table entry for the same index as `h_k`.
///
/// # Errors
///
/// Propagates [`build_omega`] errors.
pub fn build_omega_set(
    plant: &ContinuousSs,
    table: &ControllerTable,
    measurement: &Matrix,
) -> Result<Vec<Matrix>> {
    table
        .hset()
        .intervals()
        .iter()
        .enumerate()
        .map(|(i, &h)| build_omega(plant, table.mode(i), h, measurement))
        .collect()
}

/// Chooses the measurement matrix `C_m` a controller table acts on: the
/// plant output matrix when the table was designed for output feedback
/// (`error_dim == q`), or the identity for full-state feedback
/// (`error_dim == n`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when the table matches neither.
pub fn measurement_matrix(plant: &ContinuousSs, table: &ControllerTable) -> Result<Matrix> {
    let q = plant.output_dim();
    let n = plant.state_dim();
    let e = table.error_dim();
    if e == q {
        Ok(plant.c.clone())
    } else if e == n {
        Ok(Matrix::identity(n))
    } else {
        Err(Error::InvalidConfig(format!(
            "controller error dimension {e} matches neither outputs ({q}) nor states ({n})"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plants, ControllerMode, IntervalSet};
    use overrun_linalg::spectral_radius;

    fn pi_mode(kp: f64, ki: f64, h: f64) -> ControllerMode {
        ControllerMode::new(
            Matrix::identity(1),
            Matrix::from_rows(&[&[h]]).unwrap(),
            Matrix::from_rows(&[&[ki]]).unwrap(),
            Matrix::from_rows(&[&[kp]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn omega_dimensions() {
        let plant = plants::unstable_second_order();
        let mode = pi_mode(100.0, 10.0, 0.01);
        let omega = build_omega(&plant, &mode, 0.01, &plant.c).unwrap();
        assert_eq!(omega.shape(), (2 + 1 + 2, 2 + 1 + 2));
    }

    #[test]
    fn omega_static_gain_dimensions() {
        // s = 0: state feedback with e = x.
        let plant = plants::double_integrator();
        let mode = ControllerMode::static_gain(Matrix::row_vec(&[-1.0, -2.0])).unwrap();
        let eye = Matrix::identity(2);
        let omega = build_omega(&plant, &mode, 0.01, &eye).unwrap();
        assert_eq!(omega.shape(), (4, 4)); // n + s + 2r with s = 0
        // Last row block: u[k+1] = ũ[k].
        assert_eq!(omega[(3, 2)], 1.0);
    }

    #[test]
    fn omega_structure_matches_hand_unrolled_loop() {
        // Simulate ξ(k+1) = Ω ξ(k) and compare with the explicit recursion
        // of plant + controller + one-step actuation delay.
        let plant = plants::unstable_second_order();
        let h = 0.012;
        let mode = pi_mode(80.0, 5.0, h);
        let omega = build_omega(&plant, &mode, h, &plant.c).unwrap();
        let d = plant.discretize(h).unwrap();

        // Hand state.
        let mut x = Matrix::col_vec(&[1.0, 0.0]);
        let mut z = Matrix::col_vec(&[0.0]);
        let mut u_applied = Matrix::col_vec(&[0.0]);
        // Initialise: job 0 measures e0 and computes (z1, u1).
        let e0 = plant.c.matmul(&x).unwrap().scale(-1.0);
        let (mut z_next, mut u_next) = mode.step(&z, &e0).unwrap();

        // Lifted state ξ(0) = [x0, z̃0 = z1, ũ0 = u1, u0].
        let mut xi = Matrix::zeros(5, 1);
        xi.set_block(0, 0, &x).unwrap();
        xi.set_block(2, 0, &z_next).unwrap();
        xi.set_block(3, 0, &u_next).unwrap();
        xi.set_block(4, 0, &u_applied).unwrap();

        for _ in 0..6 {
            // Hand recursion: advance plant with u_applied, then job k+1
            // computes from the new measurement.
            x = d.step(&x, &u_applied).unwrap();
            u_applied = u_next.clone();
            z = z_next.clone();
            let e = plant.c.matmul(&x).unwrap().scale(-1.0);
            let (zn, un) = mode.step(&z, &e).unwrap();
            z_next = zn;
            u_next = un;

            // Lifted recursion.
            xi = omega.matmul(&xi).unwrap();

            assert!(
                (xi[(0, 0)] - x[(0, 0)]).abs() < 1e-9 * x.max_abs().max(1.0),
                "x mismatch"
            );
            assert!(
                (xi[(2, 0)] - z_next[(0, 0)]).abs() < 1e-9 * z_next.max_abs().max(1.0),
                "z̃ mismatch"
            );
            assert!(
                (xi[(3, 0)] - u_next[(0, 0)]).abs() < 1e-9 * u_next.max_abs().max(1.0),
                "ũ mismatch"
            );
            assert!(
                (xi[(4, 0)] - u_applied[(0, 0)]).abs() < 1e-9 * u_applied.max_abs().max(1.0),
                "u mismatch"
            );
        }
    }

    #[test]
    fn omega_set_size_matches_h() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.016, 5).unwrap();
        let modes: Vec<_> = hset
            .intervals()
            .iter()
            .map(|&h| pi_mode(80.0, 5.0, h))
            .collect();
        let table = crate::ControllerTable::new(modes, hset.clone()).unwrap();
        let omegas = build_omega_set(&plant, &table, &plant.c).unwrap();
        assert_eq!(omegas.len(), 4);
        for o in &omegas {
            assert_eq!(o.shape(), (5, 5));
            assert!(spectral_radius(o).unwrap().is_finite());
        }
    }

    #[test]
    fn measurement_selection() {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.010, 2).unwrap();
        // Output feedback table (error dim 1 = q).
        let t_out =
            crate::ControllerTable::fixed(pi_mode(1.0, 1.0, 0.01), hset.clone()).unwrap();
        assert_eq!(
            measurement_matrix(&plant, &t_out).unwrap(),
            plant.c.clone()
        );
        // State feedback table (error dim 2 = n).
        let t_state = crate::ControllerTable::fixed(
            ControllerMode::static_gain(Matrix::row_vec(&[1.0, 2.0])).unwrap(),
            hset,
        )
        .unwrap();
        assert_eq!(
            measurement_matrix(&plant, &t_state).unwrap(),
            Matrix::identity(2)
        );
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let plant = plants::unstable_second_order();
        let mode = pi_mode(1.0, 1.0, 0.01);
        // Wrong measurement width.
        assert!(build_omega(&plant, &mode, 0.01, &Matrix::identity(3)).is_err());
        // Controller with wrong command count.
        let bad = ControllerMode::new(
            Matrix::identity(1),
            Matrix::from_rows(&[&[0.01]]).unwrap(),
            Matrix::zeros(2, 1),
            Matrix::zeros(2, 1),
        )
        .unwrap();
        assert!(build_omega(&plant, &bad, 0.01, &plant.c).is_err());
    }
}
