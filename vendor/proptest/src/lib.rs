//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! resolved; a path dependency substitutes this one. It implements the
//! pieces the test suites rely on — the [`proptest!`] / [`prop_compose!`]
//! macros, range / tuple / vec strategies, `prop_map` / `prop_filter` /
//! `prop_filter_map` combinators and the `prop_assert*` family — as a plain
//! random-case runner. There is **no shrinking** and no failure
//! persistence: a failing case panics with the assertion message, and the
//! per-test RNG seed is derived deterministically from the test's module
//! path so failures reproduce run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (self-contained: xoshiro256++ over a SplitMix64-expanded seed)
// ---------------------------------------------------------------------------

/// Deterministic test-case RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates an RNG seeded from an arbitrary label (e.g. a test name).
    pub fn for_test(label: &str) -> Self {
        // FNV-1a over the label, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed_u64(h)
    }

    /// Creates an RNG from a numeric seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, span]` (Lemire with rejection).
    pub fn below_inclusive(&mut self, span: u64) -> u64 {
        if span == u64::MAX {
            return self.next_u64();
        }
        let s = span + 1;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (s as u128);
            let low = m as u64;
            if low < s {
                let threshold = s.wrapping_neg() % s;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a strategy could not produce a value for this case.
#[derive(Debug, Clone)]
pub struct Rejection(pub &'static str);

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// The case was rejected (`prop_assume!` or a filter) — retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl From<Rejection> for TestCaseError {
    fn from(r: Rejection) -> Self {
        TestCaseError::Reject(r.0.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is honoured by this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Upper bound on rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value, or rejects the attempt.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when a filter refuses every retry.
    fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, unwrapping them.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// How many times filtering strategies re-draw before rejecting the case.
const LOCAL_RETRIES: usize = 64;

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = (self.f)(self.inner.gen_value(rng)?) {
                return Ok(v);
            }
        }
        Err(Rejection(self.whence))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..LOCAL_RETRIES {
            let v = self.inner.gen_value(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.whence))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// A strategy backed by a generation closure — the building block of
/// [`prop_compose!`].
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> Result<T, Rejection>> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> Result<T, Rejection>> FnStrategy<T, F> {
    /// Wraps a generation closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> Result<T, Rejection>> Strategy for FnStrategy<T, F> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        (self.f)(rng)
    }
}

// Ranges as strategies -------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - 1).wrapping_sub(self.start) as u64;
                Ok(self.start.wrapping_add(rng.below_inclusive(span) as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                Ok(lo.wrapping_add(rng.below_inclusive(span) as $t))
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty as $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end - 1) as $u).wrapping_sub(self.start as $u) as u64;
                Ok(((self.start as $u).wrapping_add(rng.below_inclusive(span) as $u)) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                Ok(((lo as $u).wrapping_add(rng.below_inclusive(span) as $u)) as $t)
            }
        }
    )+};
}

impl_signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                Ok(if v >= self.end { self.start } else { v })
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                Ok(lo + (hi - lo) * u)
            }
        }
    )+};
}

impl_float_range_strategy!(f32, f64);

// Tuples of strategies -------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.gen_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// Collections ---------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rejection, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything convertible to a length range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below_inclusive(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $(
                        let $pat = {
                            let __strategy = $strat;
                            $crate::Strategy::gen_value(&__strategy, &mut rng)
                                .map_err($crate::TestCaseError::from)?
                        };
                    )+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: too many rejected cases ({rejected}) in {}",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (case {}): {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Declares a named strategy-returning function:
/// `fn name(outer args)(pat in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])*
      $vis:vis fn $name:ident ( $($outer:ident : $oty:ty),* $(,)? )
                              ( $($pat:pat in $strat:expr),+ $(,)? )
      -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer: $oty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(
                    let $pat = {
                        let __strategy = $strat;
                        $crate::Strategy::gen_value(&__strategy, rng)?
                    };
                )+
                ::core::result::Result::Ok($body)
            })
        }
    };
}

/// Asserts a condition inside a property test; failure fails the case with
/// the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
}

/// Rejects the current case unless the condition holds (retried, not
/// counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pairs (a, b) with a <= b.
        fn ordered_pair()(a in 0u64..1000, b in 0u64..1000) -> (u64, u64) {
            if a <= b { (a, b) } else { (b, a) }
        }
    }

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -1.5f64..1.5, n in 1usize..8) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn composed_and_mapped(p in ordered_pair(), e in small_even()) {
            prop_assert!(p.0 <= p.1, "unordered {p:?}");
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vectors_and_tuples(v in prop::collection::vec(0i32..5, 3..10),
                              t in (0u8..3, 0.0f64..1.0)) {
            prop_assert!((3..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
            prop_assert!(t.0 < 3 && t.1 < 1.0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filters_apply(x in (0i64..100).prop_filter("even", |v| v % 2 == 0),
                         y in (0i64..100).prop_filter_map("halved", |v| (v % 2 == 0).then_some(v / 2))) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(y < 50);
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
