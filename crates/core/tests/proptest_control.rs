//! Property-based tests for the control layer: discretisation laws, lifted
//! dynamics consistency, and simulator invariants.

use overrun_control::prelude::*;
use overrun_control::sim::{ClosedLoopSim, SimScenario};
use overrun_control::ControllerMode;
use overrun_linalg::{spectral_radius, Matrix};
use proptest::prelude::*;

/// Strategy: a Hurwitz-leaning 2x2 continuous plant (not necessarily
/// stable) with SISO structure.
fn siso_plant() -> impl Strategy<Value = ContinuousSs> {
    (prop::collection::vec(-5.0..5.0f64, 4)).prop_map(|v| {
        ContinuousSs::new(
            Matrix::from_vec(2, 2, v).expect("sized"),
            Matrix::col_vec(&[0.0, 1.0]),
            Matrix::row_vec(&[1.0, 0.0]),
        )
        .expect("valid dims")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ZOH discretisation semigroup law: Φ(a+b) = Φ(b)Φ(a).
    #[test]
    fn discretisation_semigroup(plant in siso_plant(), a in 0.001..0.05f64, b in 0.001..0.05f64) {
        let da = plant.discretize(a).unwrap();
        let db = plant.discretize(b).unwrap();
        let dab = plant.discretize(a + b).unwrap();
        let compose = db.phi.matmul(&da.phi).unwrap();
        prop_assert!(compose.approx_eq(&dab.phi, 1e-9 * dab.phi.max_abs().max(1.0), 1e-9));
    }

    /// The interval set always starts at T, is strictly increasing with
    /// step Ts, and the release rule maps into it.
    #[test]
    fn interval_set_structure(ts_us in 100u64..5000, ns in 1u32..8, factor in 1.01..2.5f64) {
        // Build the period as ns · Ts so the sensor grid is always exact.
        let t = ts_us as f64 * 1e-6 * ns as f64;
        let hset = IntervalSet::from_timing(t, factor * t, ns).unwrap();
        let h = hset.intervals();
        prop_assert!((h[0] - t).abs() < 1e-12);
        for w in h.windows(2) {
            prop_assert!((w[1] - w[0] - hset.sensor_period()).abs() < 1e-9);
        }
        prop_assert!(hset.max_interval() + 1e-12 >= hset.rmax());
        // Any response in (0, Rmax] maps to a valid mode.
        for frac in [0.1, 0.5, 0.9, 1.0] {
            let mode = hset.mode_for_response(frac * hset.rmax()).unwrap();
            prop_assert!(mode < hset.len());
        }
    }

    /// The lifted matrix Ω and the step-by-step simulator agree on the
    /// evolution of the plant state for arbitrary static output feedback.
    #[test]
    fn lifted_matches_simulator(plant in siso_plant(), kp in -5.0..5.0f64, ki in -2.0..2.0f64,
                                h_ms in 5u64..20) {
        let h = h_ms as f64 * 1e-3;
        let mode = pi::mode_for_gains(kp, ki, h).unwrap();
        let omega = lifted::build_omega(&plant, &mode, h, &plant.c).unwrap();
        // Simulate 8 steps both ways from x0 = [1, 0].
        let hset = IntervalSet::from_timing(h, h, 1).unwrap();
        let table = overrun_control::ControllerTable::fixed(mode.clone(), hset).unwrap();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        let traj = sim.run(&scenario, &[0; 8]).unwrap();
        prop_assume!(!traj.diverged);

        // Lifted state: [x; z̃; ũ; u] with job-0 outputs folded in.
        let e0 = Matrix::col_vec(&[-1.0]); // e = −C x0
        let (z1, u1) = mode.step(&Matrix::zeros(1, 1), &e0).unwrap();
        let mut xi = Matrix::zeros(5, 1);
        xi[(0, 0)] = 1.0;
        xi.set_block(2, 0, &z1).unwrap();
        xi.set_block(3, 0, &u1).unwrap();
        for k in 1..8usize {
            xi = omega.matmul(&xi).unwrap();
            let x_sim = &traj.states[k];
            let scale = x_sim.max_abs().max(1.0);
            prop_assert!((xi[(0, 0)] - x_sim[(0, 0)]).abs() < 1e-6 * scale,
                "state mismatch at job {k}: lifted {} vs sim {}", xi[(0, 0)], x_sim[(0, 0)]);
        }
    }

    /// Zero initial state + zero reference stays identically at rest for
    /// any controller table and any switching pattern.
    #[test]
    fn rest_is_invariant(plant in siso_plant(), seed_modes in prop::collection::vec(0usize..2, 1..30)) {
        let hset = IntervalSet::from_timing(0.01, 0.013, 2).unwrap();
        let mode = pi::mode_for_gains(1.0, 1.0, 0.01).unwrap();
        let table = overrun_control::ControllerTable::fixed(mode, hset).unwrap();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::zeros(2, 1), 1);
        let traj = sim.run(&scenario, &seed_modes).unwrap();
        prop_assert!(traj.cost.abs() < 1e-25);
        prop_assert!(!traj.diverged);
    }

    /// Static state-feedback modes built from any gain keep dimensional
    /// consistency through the lifted construction.
    #[test]
    fn lifted_dimensions_static_gain(k0 in -10.0..10.0f64, k1 in -10.0..10.0f64, h_ms in 1u64..50) {
        let plant = plants::double_integrator();
        let mode = ControllerMode::static_gain(Matrix::row_vec(&[k0, k1])).unwrap();
        let omega = lifted::build_omega(&plant, &mode, h_ms as f64 * 1e-3, &Matrix::identity(2)).unwrap();
        prop_assert_eq!(omega.shape(), (4, 4));
        prop_assert!(spectral_radius(&omega).unwrap().is_finite());
    }

    /// Simulation cost is monotone under sequence extension (costs only
    /// accumulate).
    #[test]
    fn cost_monotone_in_horizon(len in 2usize..40) {
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.01, 0.013, 2).unwrap();
        let mode = pi::mode_for_gains(80.0, 20.0, 0.01).unwrap();
        let table = overrun_control::ControllerTable::fixed(mode, hset).unwrap();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(Matrix::col_vec(&[1.0, 0.0]), 1);
        let modes: Vec<usize> = (0..len).map(|k| k % 2).collect();
        let full = sim.run(&scenario, &modes).unwrap();
        let half = sim.run(&scenario, &modes[..len / 2]).unwrap();
        prop_assume!(!full.diverged);
        prop_assert!(full.cost >= half.cost - 1e-12);
        prop_assert!(full.cost_integral >= half.cost_integral - 1e-12);
    }
}
