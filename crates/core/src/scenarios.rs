//! End-to-end experiment drivers reproducing the paper's evaluation
//! (Sec. VI, Tables I and II).
//!
//! These functions are used both by the `overrun-bench` binaries (full
//! paper-scale runs) and by the integration tests (reduced ensembles).

use overrun_jsr::{JsrBounds, ScreenStats};
use overrun_linalg::Matrix;

use crate::lqr::LqrWeights;
use crate::metrics::{evaluate_worst_case, WorstCaseOptions};
use crate::sim::{ClosedLoopSim, SimScenario};
use crate::stability::{certify, CertifyOptions, StabilityReport};
use crate::{pi, ContinuousSs, ControllerTable, IntervalSet, Result};

/// The certification hook of the `*_with` experiment drivers: same
/// signature as [`crate::stability::certify`]. The bench binaries inject a
/// cache-backed lookup here (`overrun-sweep`); the plain drivers pass the
/// real certifier. Implementations must be *observationally identical* to
/// `certify` for the tables the driver requests — the CSV outputs are
/// pinned byte-identical across both paths.
pub type CertifyFn<'a> =
    &'a dyn Fn(&ContinuousSs, &ControllerTable, &CertifyOptions) -> Result<StabilityReport>;

/// Shared experiment grid: `(Rmax factor, Ns)` combinations and ensemble
/// sizes. Matches the paper with
/// `rmax_factors = [1.1, 1.3, 1.6]`, `ns_values = [2, 5]`,
/// `num_sequences = 50_000`, `jobs_per_sequence = 50`.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// `Rmax = factor · T` values to sweep.
    pub rmax_factors: Vec<f64>,
    /// Oversampling factors `Ns` (`Ts = T / Ns`).
    pub ns_values: Vec<u32>,
    /// Random sequences per configuration.
    pub num_sequences: usize,
    /// Jobs per sequence.
    pub jobs_per_sequence: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            rmax_factors: vec![1.1, 1.3, 1.6],
            ns_values: vec![2, 5],
            num_sequences: 50_000,
            jobs_per_sequence: 50,
            seed: 2021,
        }
    }
}

impl ExperimentConfig {
    /// A small configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            num_sequences: 200,
            ..ExperimentConfig::default()
        }
    }

    /// The worst-case evaluation options every experiment cell uses.
    pub fn worst_case_options(&self) -> WorstCaseOptions {
        WorstCaseOptions {
            num_sequences: self.num_sequences,
            jobs_per_sequence: self.jobs_per_sequence,
            seed: self.seed,
            rmin_fraction: 0.05,
        }
    }
}

/// The canonical LQR weights of the Table II experiment on the
/// [`crate::plants::pmsm`] plant: `Q = I`, `R = 3·10⁻³·I`. Aggressive
/// enough that the fixed-`T` design loses stability at
/// `Rmax = 1.6 T, Ts = T/2` while the adaptive design stays certified —
/// the paper's headline contrast.
pub fn pmsm_table2_weights() -> LqrWeights {
    LqrWeights::identity(3, 2, 3e-3)
}

/// One row of Table I: worst-case PI cost under adaptive periods for the
/// three control strategies.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// `Rmax / T`.
    pub rmax_factor: f64,
    /// Oversampling factor (`Ts = T / ns`).
    pub ns: u32,
    /// `J_w` of the adaptive control (per-interval gains).
    pub jw_adaptive: f64,
    /// `J_w` of the fixed controller tuned for `T`.
    pub jw_fixed_t: f64,
    /// `J_w` of the fixed controller tuned for `Rmax`.
    pub jw_fixed_rmax: f64,
}

/// Runs the Table I experiment: a PI-controlled unstable system with
/// `T = 10 ms`, sweeping `Rmax ∈ factors·T` and `Ts ∈ {T/Ns}`; for each
/// cell the worst-case cost `J_w = max_σ Σ e[k]²` over random sequences
/// (paper: 50 000 sequences of 50 jobs).
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn table1(plant: &ContinuousSs, t: f64, cfg: &ExperimentConfig) -> Result<Vec<Table1Row>> {
    let mut rows = Vec::new();
    for &factor in &cfg.rmax_factors {
        for &ns in &cfg.ns_values {
            let rmax = factor * t;
            let hset = IntervalSet::from_timing(t, rmax, ns)?;
            let adaptive = pi::design_adaptive(plant, &hset)?;
            let fixed_t = pi::design_fixed(plant, &hset, t)?;
            let fixed_rmax = pi::design_fixed(plant, &hset, rmax)?;

            let scenario = SimScenario::step(plant.state_dim(), Matrix::col_vec(&[1.0]));
            let opts = cfg.worst_case_options();
            let jw = |table: &ControllerTable| -> Result<f64> {
                let sim = ClosedLoopSim::new(plant, table)?;
                Ok(evaluate_worst_case(&sim, &scenario, &opts)?.worst_cost)
            };
            rows.push(Table1Row {
                rmax_factor: factor,
                ns,
                jw_adaptive: jw(&adaptive)?,
                jw_fixed_t: jw(&fixed_t)?,
                jw_fixed_rmax: jw(&fixed_rmax)?,
            });
        }
    }
    Ok(rows)
}

/// One row of Table II: LQR on the PMSM under adaptive periods.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// `Rmax / T`.
    pub rmax_factor: f64,
    /// Oversampling factor.
    pub ns: u32,
    /// Certified JSR bounds of the adaptive design.
    pub jsr_adaptive: JsrBounds,
    /// Cost with no overruns (every job nominal).
    pub cost_no_overruns: f64,
    /// Worst-case cost, adaptive period + adaptive control.
    pub cost_adaptive: f64,
    /// Worst-case cost, adaptive period + fixed control designed for `T`
    /// (`None` when the closed loop is unstable — the paper's "unstable"
    /// cell).
    pub cost_fixed_t: Option<f64>,
    /// Worst-case cost, adaptive period + fixed control designed for `Rmax`.
    pub cost_fixed_rmax: Option<f64>,
    /// Cost of the ideal fixed-period baseline: designed **and executed**
    /// at period `Rmax` (no overruns by construction).
    pub cost_fixed_period_rmax: f64,
    /// Norm-screening statistics of the adaptive design's certification.
    pub screen_adaptive: ScreenStats,
}

/// Runs the Table II experiment: an LQR-controlled plant (the PMSM in the
/// paper) with period `t`, comparing the adaptive design against fixed-gain
/// and fixed-period baselines, and certifying the adaptive design's JSR.
///
/// Costs are the time-integrated `Σ‖e‖²·h_k` so that runs with different
/// sampling periods are comparable. Note that a fixed job count means
/// overrun-laden runs integrate over a somewhat longer physical horizon;
/// this is negligible here because the regulation error has decayed to
/// ~zero well within the 50-job window (see `EXPERIMENTS.md`, notes).
///
/// # Errors
///
/// Propagates design, certification and simulation failures.
pub fn table2(
    plant: &ContinuousSs,
    t: f64,
    weights: &LqrWeights,
    x0: &Matrix,
    cfg: &ExperimentConfig,
) -> Result<Vec<Table2Row>> {
    table2_with(plant, t, weights, x0, cfg, &|p, tb, o| certify(p, tb, o))
}

/// The three adaptively-executed controller tables of one Table II cell:
/// `(adaptive, fixed_t, fixed_rmax)`. Shared between [`table2_with`] and
/// [`table2_certifications`] so the declarative scenario list can never
/// drift from what the driver actually certifies.
fn table2_cell_tables(
    plant: &ContinuousSs,
    t: f64,
    weights: &LqrWeights,
    factor: f64,
    ns: u32,
) -> Result<(ControllerTable, ControllerTable, ControllerTable)> {
    let rmax = factor * t;
    let hset = IntervalSet::from_timing(t, rmax, ns)?;
    let adaptive = crate::lqr::design_adaptive(plant, &hset, weights)?;
    let fixed_t = crate::lqr::design_fixed(plant, &hset, weights, t)?;
    let fixed_rmax = crate::lqr::design_fixed(plant, &hset, weights, rmax)?;
    Ok((adaptive, fixed_t, fixed_rmax))
}

/// Enumerates every distinct certification [`table2_with`] will request
/// (three tables per `(Rmax, Ns)` cell, all at the default budget), with
/// human labels — the input of the `overrun-sweep` batch engine.
///
/// # Errors
///
/// Propagates design failures.
pub fn table2_certifications(
    plant: &ContinuousSs,
    t: f64,
    weights: &LqrWeights,
    cfg: &ExperimentConfig,
) -> Result<Vec<(String, ControllerTable)>> {
    let mut out = Vec::new();
    for &factor in &cfg.rmax_factors {
        for &ns in &cfg.ns_values {
            let (adaptive, fixed_t, fixed_rmax) =
                table2_cell_tables(plant, t, weights, factor, ns)?;
            out.push((format!("table2 r{factor} ns{ns} lqr-adaptive"), adaptive));
            out.push((format!("table2 r{factor} ns{ns} lqr-fixed-t"), fixed_t));
            out.push((format!("table2 r{factor} ns{ns} lqr-fixed-rmax"), fixed_rmax));
        }
    }
    Ok(out)
}

/// [`table2`] with an injected certifier (see [`CertifyFn`]).
///
/// # Errors
///
/// Propagates design, certification and simulation failures.
pub fn table2_with(
    plant: &ContinuousSs,
    t: f64,
    weights: &LqrWeights,
    x0: &Matrix,
    cfg: &ExperimentConfig,
    certify_fn: CertifyFn<'_>,
) -> Result<Vec<Table2Row>> {
    let mut rows = Vec::new();
    let n = plant.state_dim();
    let scenario = SimScenario::regulation(x0.clone(), n);
    for &factor in &cfg.rmax_factors {
        for &ns in &cfg.ns_values {
            let rmax = factor * t;
            let (adaptive, fixed_t, fixed_rmax) =
                table2_cell_tables(plant, t, weights, factor, ns)?;

            let report = certify_fn(plant, &adaptive, &CertifyOptions::default())?;

            let opts = cfg.worst_case_options();
            // A strategy's cell reads "unstable" when the JSR analysis
            // certifies instability (paper methodology) or any simulated
            // sequence diverges.
            let worst = |table: &ControllerTable| -> Result<Option<f64>> {
                let cert = certify_fn(plant, table, &CertifyOptions::default())?;
                if cert.bounds.certifies_unstable() {
                    return Ok(None);
                }
                let sim = ClosedLoopSim::new(plant, table)?;
                let rep = evaluate_worst_case(&sim, &scenario, &opts)?;
                Ok(if rep.all_stable() {
                    Some(rep.worst_integral_cost)
                } else {
                    None
                })
            };

            // Cost with no overruns: the adaptive design running nominally.
            let nominal_sim = ClosedLoopSim::new(plant, &adaptive)?;
            let nominal = nominal_sim
                .run(&scenario, &vec![0; cfg.jobs_per_sequence])?
                .cost_integral;

            // Ideal baseline: period Rmax, gain for Rmax, no overruns.
            let hset_rmax = IntervalSet::from_timing(rmax, rmax, ns)?;
            let table_rmax =
                crate::lqr::design_adaptive(plant, &hset_rmax, weights)?;
            let base_sim = ClosedLoopSim::new(plant, &table_rmax)?;
            let fixed_period_cost = base_sim
                .run(&scenario, &vec![0; cfg.jobs_per_sequence])?
                .cost_integral;

            rows.push(Table2Row {
                rmax_factor: factor,
                ns,
                jsr_adaptive: report.bounds,
                cost_no_overruns: nominal,
                cost_adaptive: worst(&adaptive)?.unwrap_or(f64::INFINITY),
                cost_fixed_t: worst(&fixed_t)?,
                cost_fixed_rmax: worst(&fixed_rmax)?,
                cost_fixed_period_rmax: fixed_period_cost,
                screen_adaptive: report.screen,
            });
        }
    }
    Ok(rows)
}

/// One row of the sensor-granularity trade-off sweep (paper Sec. V-B: the
/// choice of `Ts` balances analysis complexity, resource efficiency and
/// stability margin).
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Oversampling factor `Ns`.
    pub ns: u32,
    /// Cardinality of the interval set `#H`.
    pub h_count: usize,
    /// Certified JSR bounds of the adaptive design.
    pub jsr: JsrBounds,
    /// Worst-case cost of the adaptive design under adaptive periods.
    pub jw_adaptive: f64,
    /// Idle slack wasted per overrun in the worst case, in seconds:
    /// `Δmax − (Rmax − T)` (coarser grids park the processor longer).
    pub worst_idle_slack: f64,
}

/// Sweeps the sensor oversampling factor `Ns` at fixed `Rmax`, measuring
/// the three quantities the paper's Sec. V-B trades off: analysis size
/// (`#H`), stability margin (JSR upper bound) and performance (`J_w`),
/// plus the resource-efficiency proxy `Δmax − (Rmax − T)`.
///
/// # Errors
///
/// Propagates design, certification and simulation failures.
pub fn granularity_sweep(
    plant: &ContinuousSs,
    t: f64,
    rmax_factor: f64,
    ns_values: &[u32],
    cfg: &ExperimentConfig,
) -> Result<Vec<GranularityRow>> {
    granularity_sweep_with(plant, t, rmax_factor, ns_values, cfg, &|p, tb, o| {
        certify(p, tb, o)
    })
}

/// Enumerates every certification [`granularity_sweep_with`] will request
/// (one adaptive PI table per `Ns`, default budget), with human labels.
///
/// # Errors
///
/// Propagates design failures.
pub fn granularity_certifications(
    plant: &ContinuousSs,
    t: f64,
    rmax_factor: f64,
    ns_values: &[u32],
) -> Result<Vec<(String, ControllerTable)>> {
    let rmax = rmax_factor * t;
    let mut out = Vec::with_capacity(ns_values.len());
    for &ns in ns_values {
        let hset = IntervalSet::from_timing(t, rmax, ns)?;
        let table = pi::design_adaptive(plant, &hset)?;
        out.push((format!("granularity r{rmax_factor} ns{ns} pi-adaptive"), table));
    }
    Ok(out)
}

/// [`granularity_sweep`] with an injected certifier (see [`CertifyFn`]).
///
/// # Errors
///
/// Propagates design, certification and simulation failures.
pub fn granularity_sweep_with(
    plant: &ContinuousSs,
    t: f64,
    rmax_factor: f64,
    ns_values: &[u32],
    cfg: &ExperimentConfig,
    certify_fn: CertifyFn<'_>,
) -> Result<Vec<GranularityRow>> {
    let mut rows = Vec::with_capacity(ns_values.len());
    let rmax = rmax_factor * t;
    for &ns in ns_values {
        let hset = IntervalSet::from_timing(t, rmax, ns)?;
        let table = pi::design_adaptive(plant, &hset)?;
        let report = certify_fn(plant, &table, &CertifyOptions::default())?;
        let sim = ClosedLoopSim::new(plant, &table)?;
        let scenario = SimScenario::step(plant.state_dim(), Matrix::col_vec(&[1.0]));
        let jw = evaluate_worst_case(&sim, &scenario, &cfg.worst_case_options())?.worst_cost;
        rows.push(GranularityRow {
            ns,
            h_count: hset.len(),
            jsr: report.bounds,
            jw_adaptive: jw,
            worst_idle_slack: (hset.max_interval() - rmax).max(0.0),
        });
    }
    Ok(rows)
}

/// Formats granularity-sweep rows as an aligned text table.
pub fn format_granularity(rows: &[GranularityRow]) -> String {
    let mut s = String::new();
    s.push_str("Ns    #H   JSR [LB, UB]           Jw(adaptive)   idle slack
");
    for r in rows {
        s.push_str(&format!(
            "{:<4} {:>3}   [{:.6}, {:.6}]   {:>10.4}   {:>8.2e} s
",
            r.ns, r.h_count, r.jsr.lower, r.jsr.upper, r.jw_adaptive, r.worst_idle_slack
        ));
    }
    s
}

/// Formats Table 1 rows as an aligned text table (the bench binary's
/// output).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Rmax     Ts     Adaptive     Fixed(T)     Fixed(Rmax)\n");
    for r in rows {
        s.push_str(&format!(
            "{:.1}*T   T/{}   {:>10.4}   {:>10.4}   {:>11.4}\n",
            r.rmax_factor, r.ns, r.jw_adaptive, r.jw_fixed_t, r.jw_fixed_rmax
        ));
    }
    s
}

/// Formats Table 2 rows as an aligned text table.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let fmt_opt = |v: &Option<f64>| match v {
        Some(c) => format!("{c:>10.4}"),
        None => format!("{:>10}", "unstable"),
    };
    let mut s = String::new();
    s.push_str(
        "Rmax     Ts     JSR [LB, UB]             NoOvr      AdaptCtl   FixedCtl(T)  FixedCtl(Rmax)  FixedPeriod(Rmax)\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:.1}*T   T/{}   [{:.6}, {:.6}]   {:>8.4}   {:>8.4}   {}   {}   {:>10.4}\n",
            r.rmax_factor,
            r.ns,
            r.jsr_adaptive.lower,
            r.jsr_adaptive.upper,
            r.cost_no_overruns,
            r.cost_adaptive,
            fmt_opt(&r.cost_fixed_t),
            fmt_opt(&r.cost_fixed_rmax),
            r.cost_fixed_period_rmax
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    #[test]
    fn table1_smoke_has_expected_shape() {
        let plant = plants::unstable_second_order();
        let cfg = ExperimentConfig {
            rmax_factors: vec![1.3],
            ns_values: vec![2],
            num_sequences: 50,
            jobs_per_sequence: 50,
            seed: 1,
        };
        let rows = table1(&plant, 0.010, &cfg).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.jw_adaptive.is_finite());
        // The paper's headline: adaptive beats both fixed variants.
        assert!(r.jw_adaptive <= r.jw_fixed_t + 1e-9, "{r:?}");
        assert!(r.jw_adaptive <= r.jw_fixed_rmax + 1e-9, "{r:?}");
        let formatted = format_table1(&rows);
        assert!(formatted.contains("Adaptive"));
    }

    #[test]
    fn table2_smoke_has_expected_shape() {
        let plant = plants::pmsm();
        let weights = LqrWeights::identity(3, 2, 0.1);
        let x0 = Matrix::col_vec(&[1.0, 1.0, 1.0]);
        let cfg = ExperimentConfig {
            rmax_factors: vec![1.3],
            ns_values: vec![5],
            num_sequences: 50,
            jobs_per_sequence: 50,
            seed: 1,
        };
        let rows = table2(&plant, 50e-6, &weights, &x0, &cfg).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // The adaptive design must be certified stable.
        assert!(r.jsr_adaptive.certifies_stable(), "{:?}", r.jsr_adaptive);
        // Cost ordering: no-overrun ≤ adaptive worst case.
        assert!(r.cost_no_overruns <= r.cost_adaptive + 1e-12);
        assert!(r.cost_adaptive.is_finite());
        let formatted = format_table2(&rows);
        assert!(formatted.contains("JSR"));
    }
}
