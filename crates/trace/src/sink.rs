//! The process-wide event sink (feature `trace`) and its inert stubs.
//!
//! Design: recording threads append to a thread-local buffer (no lock on
//! the hot path) which drains into one global `Mutex<Vec<Event>>` when it
//! grows past a threshold, when [`flush_thread`] is called (the parallel
//! runner calls it as each worker finishes), or when the thread exits.
//! [`install`] starts a new epoch — stale thread-local buffers from an
//! earlier epoch self-clear on their next record — and [`finish`] swaps
//! the sink off and returns everything collected as a [`Trace`].
//!
//! With the `trace` feature off this module shrinks to a handful of inert
//! functions so callers (the bench harness, `overrun-par`) compile
//! unchanged while instrumented code costs nothing.

#[cfg(not(feature = "trace"))]
use crate::clock::Clock;
#[cfg(not(feature = "trace"))]
use crate::report::Trace;

/// RAII guard returned by `span!`; dropping it closes the span.
///
/// Always bind it (`let _sp = span!("phase");`) — an unbound guard drops
/// immediately and records a zero-length span.
#[must_use = "bind the guard (`let _sp = span!(...)`); dropping it closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "trace")]
    id: Option<u64>,
}

impl SpanGuard {
    /// A guard that records nothing on drop.
    pub const fn noop() -> Self {
        Self {
            #[cfg(feature = "trace")]
            id: None,
        }
    }
}

#[cfg(feature = "trace")]
pub use active::{__counter, __histogram, __progress, __span_open, finish, flush_thread, install, is_active};

#[cfg(feature = "trace")]
mod active {
    use super::SpanGuard;
    use crate::clock::Clock;
    use crate::event::{Event, Hist, Name};
    use crate::report::Trace;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard};

    /// Thread-local buffers drain to the global sink past this many events.
    const FLUSH_THRESHOLD: usize = 4096;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
    static GLOBAL: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    static CLOCK: Mutex<Option<Arc<dyn Clock>>> = Mutex::new(None);

    fn lock_global() -> MutexGuard<'static, Vec<Event>> {
        match GLOBAL.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_clock() -> MutexGuard<'static, Option<Arc<dyn Clock>>> {
        match CLOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    struct LocalBuf {
        epoch: u64,
        clock: Option<Arc<dyn Clock>>,
        events: Vec<Event>,
        stack: Vec<u64>,
        hists: Vec<(&'static str, Hist)>,
    }

    impl LocalBuf {
        const fn empty() -> Self {
            Self {
                epoch: 0,
                clock: None,
                events: Vec::new(),
                stack: Vec::new(),
                hists: Vec::new(),
            }
        }

        /// Re-arms the buffer when `install` started a new epoch since the
        /// last record: stale events are discarded, the clock re-fetched.
        fn sync(&mut self) {
            let current = EPOCH.load(Ordering::Acquire);
            if self.epoch != current {
                self.events.clear();
                self.stack.clear();
                self.hists.clear();
                self.clock = lock_clock().clone();
                self.epoch = current;
            }
        }

        fn now(&self) -> u64 {
            match &self.clock {
                Some(c) => c.now_ns(),
                None => 0,
            }
        }

        fn flush(&mut self) {
            if self.epoch != EPOCH.load(Ordering::Acquire) {
                // Stale epoch: the run these events belonged to is gone.
                self.events.clear();
                self.hists.clear();
                return;
            }
            if self.events.is_empty() && self.hists.is_empty() {
                return;
            }
            let mut global = lock_global();
            global.append(&mut self.events);
            for (name, hist) in self.hists.drain(..) {
                global.push(Event::Hist {
                    name: Name::Borrowed(name),
                    hist: Box::new(hist),
                });
            }
        }

        fn maybe_flush(&mut self) {
            if self.events.len() >= FLUSH_THRESHOLD {
                self.flush();
            }
        }
    }

    impl Drop for LocalBuf {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static TLS: RefCell<LocalBuf> = const { RefCell::new(LocalBuf::empty()) };
    }

    /// Whether a sink is currently installed. Cheap (one relaxed load);
    /// use it to guard event construction that is itself non-trivial.
    #[inline]
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Installs the global sink with the given clock and starts a new
    /// epoch. Returns `false` (and changes nothing) if a sink is already
    /// active. Call from the thread that owns the run, before spawning
    /// workers.
    pub fn install<C: Clock + 'static>(clock: C) -> bool {
        let mut slot = lock_clock();
        if ACTIVE.load(Ordering::SeqCst) {
            return false;
        }
        *slot = Some(Arc::new(clock));
        lock_global().clear();
        EPOCH.fetch_add(1, Ordering::Release);
        ACTIVE.store(true, Ordering::SeqCst);
        true
    }

    /// Deactivates the sink and returns everything recorded this epoch.
    /// Flushes the calling thread's buffer first; worker threads must
    /// already be joined (the parallel runner flushes each worker as it
    /// finishes). Returns `None` if no sink was active.
    pub fn finish() -> Option<Trace> {
        let _slot = lock_clock(); // serialize against concurrent install()
        if !ACTIVE.swap(false, Ordering::SeqCst) {
            return None;
        }
        flush_thread();
        let events = std::mem::take(&mut *lock_global());
        Some(Trace::from_events(events))
    }

    /// Drains the calling thread's buffer into the global sink. The
    /// parallel runner calls this as each worker closure returns so
    /// worker-side events survive the join.
    pub fn flush_thread() {
        let _ = TLS.try_with(|cell| cell.borrow_mut().flush());
    }

    #[doc(hidden)]
    pub fn __span_open(name: &'static str, fields: &[(&'static str, f64)]) -> SpanGuard {
        if !is_active() {
            return SpanGuard::noop();
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let recorded = TLS.try_with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.sync();
            let t_ns = buf.now();
            let parent = match buf.stack.last() {
                Some(&p) => p,
                None => 0,
            };
            buf.events.push(Event::SpanOpen {
                id,
                parent,
                name: Name::Borrowed(name),
                t_ns,
                fields: fields
                    .iter()
                    .map(|&(k, v)| (Name::Borrowed(k), v))
                    .collect(),
            });
            buf.stack.push(id);
            buf.maybe_flush();
        });
        match recorded {
            Ok(()) => SpanGuard { id: Some(id) },
            Err(_) => SpanGuard::noop(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(id) = self.id else { return };
            if !is_active() {
                return;
            }
            let _ = TLS.try_with(|cell| {
                let mut buf = cell.borrow_mut();
                buf.sync();
                let t_ns = buf.now();
                // Scoped guards close LIFO, so `id` is normally the top of
                // the stack; a stray out-of-order drop abandons anything
                // opened above it.
                if let Some(pos) = buf.stack.iter().rposition(|&s| s == id) {
                    buf.stack.truncate(pos);
                }
                buf.events.push(Event::SpanClose { id, t_ns });
                buf.maybe_flush();
            });
        }
    }

    #[doc(hidden)]
    pub fn __counter(name: &'static str, delta: u64) {
        if !is_active() || delta == 0 {
            return;
        }
        let _ = TLS.try_with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.sync();
            buf.events.push(Event::Counter {
                name: Name::Borrowed(name),
                delta,
            });
            buf.maybe_flush();
        });
    }

    #[doc(hidden)]
    pub fn __histogram(name: &'static str, value: f64) {
        if !is_active() {
            return;
        }
        let _ = TLS.try_with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.sync();
            match buf.hists.iter_mut().find(|(n, _)| *n == name) {
                Some((_, hist)) => hist.record(value),
                None => {
                    let mut hist = Hist::new();
                    hist.record(value);
                    buf.hists.push((name, hist));
                }
            }
        });
    }

    #[doc(hidden)]
    pub fn __progress(name: &'static str, value: f64) {
        if !is_active() {
            return;
        }
        let _ = TLS.try_with(|cell| {
            let mut buf = cell.borrow_mut();
            buf.sync();
            let t_ns = buf.now();
            buf.events.push(Event::Progress {
                name: Name::Borrowed(name),
                value,
                t_ns,
            });
            buf.maybe_flush();
        });
    }
}

// ── Inert stubs (feature off) ───────────────────────────────────────────

/// Stub: no sink exists without the `trace` feature; always `false`.
#[cfg(not(feature = "trace"))]
#[inline]
pub fn is_active() -> bool {
    false
}

/// Stub: installing is impossible without the `trace` feature; always
/// returns `false`.
#[cfg(not(feature = "trace"))]
pub fn install<C: Clock + 'static>(_clock: C) -> bool {
    false
}

/// Stub: nothing is ever recorded without the `trace` feature; always
/// `None`.
#[cfg(not(feature = "trace"))]
pub fn finish() -> Option<Trace> {
    None
}

/// Stub: no-op without the `trace` feature.
#[cfg(not(feature = "trace"))]
#[inline]
pub fn flush_thread() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NoopClock;

    #[test]
    fn noop_guard_is_inert() {
        let g = SpanGuard::noop();
        drop(g);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn stubs_are_inert() {
        assert!(!is_active());
        assert!(!install(NoopClock));
        assert!(finish().is_none());
        flush_thread();
    }

    // Feature-on lifecycle tests live in tests/sink_lifecycle.rs where a
    // process-wide mutex serializes access to the global sink.
    #[cfg(feature = "trace")]
    #[test]
    fn install_finish_round_trip_smoke() {
        // Serialized by being the only global-sink test in the unit-test
        // binary (integration tests run in a separate process).
        assert!(install(NoopClock));
        assert!(is_active());
        assert!(!install(NoopClock));
        crate::__counter("unit.smoke", 3);
        let tr = match finish() {
            Some(t) => t,
            None => unreachable!("finish returned None with an active sink"),
        };
        assert!(!is_active());
        assert_eq!(tr.counter_totals().get("unit.smoke"), Some(&3));
    }
}
