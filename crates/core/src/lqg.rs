//! Adaptive output-feedback LQG design (paper Sec. IV-B, observer variant).
//!
//! The paper's LQR case assumes the full state is measurable
//! (`e[k] = x[k]`). "If the state is not measurable, an observer is added,
//! and the controller state and matrix reflect the observer behavior" —
//! this module implements that path: one steady-state Kalman observer plus
//! delayed-LQR gain per interval `h ∈ H`, realised as a controller mode
//! with internal state `z = [x̂; u_prev]`:
//!
//! ```text
//! x̂[k+1] = Φ(h) x̂[k] + Γ(h) u[k] + L(h) (y[k] − C x̂[k])
//! u[k+1] = −K_x(h) x̂[k] − K_u(h) u[k]
//! ```
//!
//! With the regulation convention `e[k] = −y[k]`, the innovation term
//! `L·y` enters through `Bc = [−L; 0]`.

use overrun_linalg::{dkalman_solution, Matrix};

use crate::lqr::LqrWeights;
use crate::{ContinuousSs, ControllerMode, ControllerTable, Error, IntervalSet, Result};

/// Process / measurement noise covariances for the Kalman observer.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Process noise covariance `W ⪰ 0` (`n × n`).
    pub process: Matrix,
    /// Measurement noise covariance `V ≻ 0` (`q × q`).
    pub measurement: Matrix,
}

impl NoiseModel {
    /// Isotropic noise: `W = w·I`, `V = v·I`.
    pub fn isotropic(state_dim: usize, output_dim: usize, w: f64, v: f64) -> Self {
        NoiseModel {
            process: Matrix::identity(state_dim) * w,
            measurement: Matrix::identity(output_dim) * v,
        }
    }
}

/// Designs the output-feedback LQG mode for one interval: a delayed LQR
/// gain (as in [`crate::lqr::mode_for_interval`]) acting on the estimate of
/// a per-interval steady-state Kalman observer.
///
/// The resulting mode has `s = n + r` internal states (`[x̂; u_prev]`) and
/// consumes the plant *output* error (`q`-dimensional), so the lifted
/// analysis and the simulator automatically use `C_m = C`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] on shape mismatches and
/// [`Error::Design`] when either Riccati equation fails.
///
/// # Example
///
/// ```
/// use overrun_control::{lqg, lqr, plants};
///
/// # fn main() -> Result<(), overrun_control::Error> {
/// let plant = plants::dc_motor();
/// let mode = lqg::mode_for_interval(
///     &plant,
///     0.05,
///     &lqr::LqrWeights::identity(2, 1, 0.1),
///     &lqg::NoiseModel::isotropic(2, 1, 1e-3, 1e-2),
/// )?;
/// assert_eq!(mode.state_dim(), 3); // x̂ (2) + u_prev (1)
/// # Ok(())
/// # }
/// ```
pub fn mode_for_interval(
    plant: &ContinuousSs,
    h: f64,
    weights: &LqrWeights,
    noise: &NoiseModel,
) -> Result<ControllerMode> {
    let n = plant.state_dim();
    let r = plant.input_dim();
    let q = plant.output_dim();
    if noise.process.shape() != (n, n) {
        return Err(Error::InvalidConfig(format!(
            "process noise must be {n}x{n}, got {}x{}",
            noise.process.rows(),
            noise.process.cols()
        )));
    }
    if noise.measurement.shape() != (q, q) {
        return Err(Error::InvalidConfig(format!(
            "measurement noise must be {q}x{q}, got {}x{}",
            noise.measurement.rows(),
            noise.measurement.cols()
        )));
    }

    // Delayed LQR gain K = [K_x, K_u] from the state-feedback design.
    let state_mode = mode_for_interval_gains(plant, h, weights)?;
    let (kx, ku) = state_mode;

    // Steady-state predictor Kalman gain for the h-discretised plant.
    let _sp = overrun_trace::span!("lqg.mode", h_us = h * 1e6);
    let d = plant.discretize(h)?;
    let (l, _m, sol) = dkalman_solution(&d.phi, &d.c, &noise.process, &noise.measurement)
        .map_err(|e| Error::Design(format!("Kalman design failed at h = {h}: {e}")))?;
    overrun_trace::counter!("lqg.kalman_iters", sol.iterations as u64);
    overrun_trace::histogram!("lqg.kalman_residual", sol.residual);

    // z = [x̂; u_prev]:
    //   x̂' = (Φ − LC) x̂ + Γ u_prev − L e      (e = −y)
    //   u'  = −K_x x̂ − K_u u_prev
    let s = n + r;
    let mut ac = Matrix::zeros(s, s);
    let phi_lc = d.phi.sub_mat(&l.matmul(&d.c)?)?;
    ac.set_block(0, 0, &phi_lc).map_err(Error::Linalg)?;
    ac.set_block(0, n, &d.gamma).map_err(Error::Linalg)?;
    ac.set_block(n, 0, &kx.scale(-1.0)).map_err(Error::Linalg)?;
    ac.set_block(n, n, &ku.scale(-1.0)).map_err(Error::Linalg)?;

    let mut bc = Matrix::zeros(s, q);
    bc.set_block(0, 0, &l.scale(-1.0)).map_err(Error::Linalg)?;

    let mut cc = Matrix::zeros(r, s);
    cc.set_block(0, 0, &kx.scale(-1.0)).map_err(Error::Linalg)?;
    cc.set_block(0, n, &ku.scale(-1.0)).map_err(Error::Linalg)?;

    let dc = Matrix::zeros(r, q);
    ControllerMode::new(ac, bc, cc, dc)
}

/// Extracts the raw `(K_x, K_u)` pair of the delayed-LQR design (shared
/// with the state-feedback path).
fn mode_for_interval_gains(
    plant: &ContinuousSs,
    h: f64,
    weights: &LqrWeights,
) -> Result<(Matrix, Matrix)> {
    let n = plant.state_dim();
    let r = plant.input_dim();
    let mode = crate::lqr::mode_for_interval(plant, h, weights)?;
    // In the state-feedback realisation Dc = K_x and Cc = −K_u.
    let kx = mode.dc.clone();
    let ku = mode.cc.scale(-1.0);
    debug_assert_eq!(kx.shape(), (r, n));
    debug_assert_eq!(ku.shape(), (r, r));
    Ok((kx, ku))
}

/// Designs the adaptive output-feedback LQG table: one observer + gain per
/// interval in `H`.
///
/// # Errors
///
/// Propagates [`mode_for_interval`] failures.
pub fn design_adaptive(
    plant: &ContinuousSs,
    hset: &IntervalSet,
    weights: &LqrWeights,
    noise: &NoiseModel,
) -> Result<ControllerTable> {
    let _sp = overrun_trace::span!("table.lqg", modes = hset.len());
    // One Riccati + Kalman solve per interval, all independent — fan the
    // table out across threads (serial when only one is available).
    let modes = overrun_par::try_parallel_map(hset.intervals(), |_, &h| {
        mode_for_interval(plant, h, weights, noise)
    })?;
    ControllerTable::new(modes, hset.clone())
}

/// Designs a fixed output-feedback LQG table (observer and gain for
/// `h_design` replicated over `H`).
///
/// # Errors
///
/// Propagates [`mode_for_interval`] failures.
pub fn design_fixed(
    plant: &ContinuousSs,
    hset: &IntervalSet,
    weights: &LqrWeights,
    noise: &NoiseModel,
    h_design: f64,
) -> Result<ControllerTable> {
    let mode = mode_for_interval(plant, h_design, weights, noise)?;
    ControllerTable::fixed(mode, hset.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lifted, plants, stability};
    use overrun_linalg::spectral_radius;

    fn weights() -> LqrWeights {
        LqrWeights::identity(2, 1, 0.1)
    }

    fn noise() -> NoiseModel {
        NoiseModel::isotropic(2, 1, 1e-3, 1e-2)
    }

    #[test]
    fn lqg_mode_dimensions() {
        let plant = plants::dc_motor();
        let mode = mode_for_interval(&plant, 0.05, &weights(), &noise()).unwrap();
        assert_eq!(mode.state_dim(), 3);
        assert_eq!(mode.error_dim(), 1); // plant output
        assert_eq!(mode.output_dim(), 1);
    }

    #[test]
    fn lqg_stabilizes_unstable_plant_from_output() {
        let plant = plants::unstable_second_order();
        let h = 0.010;
        let mode = mode_for_interval(&plant, h, &weights(), &noise()).unwrap();
        let omega = lifted::build_omega(&plant, &mode, h, &plant.c).unwrap();
        let rho = spectral_radius(&omega).unwrap();
        assert!(rho < 1.0, "ρ = {rho}");
    }

    #[test]
    fn adaptive_lqg_certifies_on_dc_motor() {
        let plant = plants::dc_motor();
        let hset = IntervalSet::from_timing(0.05, 0.065, 2).unwrap();
        let table = design_adaptive(&plant, &hset, &weights(), &noise()).unwrap();
        assert_eq!(table.len(), hset.len());
        // Output feedback ⇒ the lifted analysis uses C automatically.
        let report = stability::certify(&plant, &table, &Default::default()).unwrap();
        assert!(report.bounds.certifies_stable(), "{:?}", report.bounds);
    }

    #[test]
    fn lqg_estimate_converges_in_simulation() {
        use crate::sim::{ClosedLoopSim, SimScenario};
        let plant = plants::unstable_second_order();
        let hset = IntervalSet::from_timing(0.010, 0.013, 2).unwrap();
        let table = design_adaptive(&plant, &hset, &weights(), &noise()).unwrap();
        let sim = ClosedLoopSim::new(&plant, &table).unwrap();
        let scenario = SimScenario::regulation(
            overrun_linalg::Matrix::col_vec(&[1.0, 0.0]),
            1,
        );
        let traj = sim.run(&scenario, &vec![0; 400]).unwrap();
        assert!(!traj.diverged);
        let first = traj.errors[0].max_abs();
        let last = traj.errors.last().unwrap().max_abs();
        assert!(last < 0.05 * first, "first {first}, last {last}");
    }

    #[test]
    fn noise_shape_validation() {
        let plant = plants::dc_motor();
        let bad_w = NoiseModel {
            process: Matrix::identity(3),
            measurement: Matrix::identity(1),
        };
        assert!(mode_for_interval(&plant, 0.05, &weights(), &bad_w).is_err());
        let bad_v = NoiseModel {
            process: Matrix::identity(2),
            measurement: Matrix::identity(2),
        };
        assert!(mode_for_interval(&plant, 0.05, &weights(), &bad_v).is_err());
    }

    #[test]
    fn fixed_lqg_replicates() {
        let plant = plants::dc_motor();
        let hset = IntervalSet::from_timing(0.05, 0.065, 2).unwrap();
        let table = design_fixed(&plant, &hset, &weights(), &noise(), 0.05).unwrap();
        assert_eq!(table.mode(0), table.mode(1));
    }
}
